"""Exception hierarchy for the FracDRAM reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A device, group, or experiment was configured inconsistently."""


class AddressError(ReproError, IndexError):
    """A bank, row, or column address is out of range for the device."""


class TimingViolationError(ReproError):
    """A command sequence violates JEDEC timing while strict mode is on.

    The memory controller raises this only in ``strict`` mode; FracDRAM
    primitives intentionally violate timing and therefore run with the
    checker in permissive mode.
    """

    def __init__(self, message: str, *, constraint: str | None = None,
                 required_cycles: int | None = None,
                 actual_cycles: int | None = None) -> None:
        super().__init__(message)
        self.constraint = constraint
        self.required_cycles = required_cycles
        self.actual_cycles = actual_cycles


class CommandSequenceError(ReproError):
    """A command sequence is structurally invalid (ordering, duplicates)."""


class UnsupportedOperationError(ReproError):
    """The target DRAM group cannot perform the requested operation.

    Mirrors the capability matrix of Table I: e.g. requesting a
    three-row-activation MAJ3 on a group C module raises this error.
    """


class RefreshViolationError(ReproError):
    """A refresh was issued to a row currently holding a fractional value."""


class InsufficientDataError(ReproError):
    """A statistical routine was given fewer samples than it requires."""
