"""Structured event tracing: one JSON object per line.

The trace is the software analogue of DRAM Bender / SoftMC's command-bus
visibility: every command the controller issues (with its JEDEC-violation
flags) and every electrical event the DRAM model resolves (sense-amp
firings, fractional freezes, decoder glitches, drops, faults, leakage
steps) lands in one append-only JSON-lines file.

Determinism contract: events carry a monotonically increasing ``seq``
number and **no wall-clock timestamps**, so two serial runs of the same
(experiment, config, seed) produce byte-identical traces.  The file
starts with a ``trace_start`` header and ends with a ``trace_end`` footer
recording the event count, which doubles as a truncation check.

The format is documented in ``docs/telemetry.md`` and validated by
:mod:`repro.telemetry.schema`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

__all__ = ["SCHEMA_VERSION", "TraceWriter", "read_trace"]

#: Bumped whenever an event kind or field changes incompatibly.
SCHEMA_VERSION = "repro-trace/1"


class TraceWriter:
    """Append-only JSON-lines trace file with deterministic encoding."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("w", encoding="utf-8")
        self._seq = 0
        self._closed = False
        self._write({"kind": "trace_start", "schema": SCHEMA_VERSION})

    @property
    def n_events(self) -> int:
        """Events written so far (header and footer included)."""
        return self._seq

    def _write(self, event: dict[str, Any]) -> None:
        event["seq"] = self._seq
        self._file.write(json.dumps(event, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        self._seq += 1

    def emit(self, kind: str, fields: Mapping[str, Any]) -> None:
        if self._closed:
            raise ValueError(f"trace {self.path} already closed")
        event = dict(fields)
        event["kind"] = kind
        self._write(event)

    def close(self) -> None:
        if self._closed:
            return
        self._write({"kind": "trace_end", "events": self._seq + 1})
        self._file.close()
        self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSON-lines trace file into a list of event dicts."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number + 1}: not valid JSON: {error}"
                ) from error
            events.append(event)
    return events
