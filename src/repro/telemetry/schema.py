"""Trace-format schema and validator (``repro-trace/1``).

The schema is expressed as a Python table (:data:`EVENT_SPECS`) instead of
an external JSON-Schema dependency; `docs/telemetry.md` carries the prose
version.  Validation enforces:

* every line is a JSON object with a known ``kind`` and an exact ``seq``
  (0, 1, 2, ... — gaps or reordering fail),
* required fields present, no unknown fields, field types correct,
* enumerated fields (``cmd``, ``phase.event``, ``fault_kind``) in range,
* ``violations`` entries are well-formed constraint records,
* the file starts with ``trace_start`` (matching schema version), ends
  with ``trace_end``, and the footer's event count matches reality.

Run directly to validate a file::

    python -m repro.telemetry.schema trace.jsonl
    python -m repro validate-trace trace.jsonl     # same thing
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, Mapping

from ..errors import ReproError
from .tracer import SCHEMA_VERSION, read_trace

__all__ = ["COMMAND_KINDS", "EVENT_SPECS", "TraceSchemaError",
           "validate_event", "validate_trace", "validate_trace_file", "main"]


class TraceSchemaError(ReproError):
    """A trace event (or file) does not conform to ``repro-trace/1``."""


#: Bus-command mnemonics a ``command`` event may carry.
COMMAND_KINDS = ("ACT", "PRE", "PREA", "RD", "WR")

#: JEDEC constraint identifiers a violation record may name.
VIOLATION_CONSTRAINTS = ("tRP", "tRAS", "tRC", "tRCD",
                         "one-row-per-bank", "row-open")

_INT = (int,)
_NUM = (int, float)
_STR = (str,)
_BOOL = (bool,)
_OPT_INT = (int, type(None))
_LIST = (list,)

#: kind -> {field: (allowed types, required)}.  ``kind`` and ``seq`` are
#: common to every event and checked separately.
EVENT_SPECS: dict[str, dict[str, tuple[tuple[type, ...], bool]]] = {
    "trace_start": {"schema": (_STR, True)},
    "trace_end": {"events": (_INT, True)},
    "sequence": {
        "label": (_STR, True),
        "op": (_STR, True),
        "start_cycle": (_INT, True),
        "duration": (_INT, True),
        "n_commands": (_INT, True),
    },
    "command": {
        "cmd": (_STR, True),
        "bank": (_OPT_INT, True),
        "row": (_OPT_INT, True),
        "cycle": (_INT, True),
        "violations": (_LIST, True),
    },
    "sense": {
        "bank": (_INT, True),
        "subarray": (_INT, True),
        "rows": (_LIST, True),
        "ones": (_INT, True),
        "flips": (_INT, True),
    },
    "partial_amplify": {
        "bank": (_INT, True),
        "subarray": (_INT, True),
        "rows": (_LIST, True),
        "steps": (_INT, True),
    },
    "frac_freeze": {
        "bank": (_INT, True),
        "subarray": (_INT, True),
        "rows": (_LIST, True),
    },
    "glitch": {
        "bank": (_INT, True),
        "subarray": (_INT, True),
        "previous": (_LIST, True),
        "requested": (_INT, True),
        "opened": (_LIST, True),
        "overwrite": (_BOOL, True),
    },
    "drop": {"bank": (_INT, True), "cycle": (_INT, True)},
    "leak": {"dt_s": (_NUM, True), "time_s": (_NUM, True)},
    "fault": {
        "fault_kind": (_STR, True),
        "bank": (_INT, True),
        "row": (_INT, True),
        "column": (_INT, True),
    },
    "phase": {"name": (_STR, True), "event": (_STR, True)},
}

_ENUMS: dict[tuple[str, str], tuple[str, ...]] = {
    ("command", "cmd"): COMMAND_KINDS,
    ("phase", "event"): ("begin", "end"),
    ("fault", "fault_kind"): ("stuck-at-0", "stuck-at-1", "leaky", "offset"),
}

_VIOLATION_FIELDS = {
    "constraint": _STR,
    "required_cycles": _OPT_INT,
    "actual_cycles": _OPT_INT,
}


def _type_name(types: tuple[type, ...]) -> str:
    return " | ".join("null" if t is type(None) else t.__name__
                      for t in types)


def _check_type(where: str, field: str, value: Any,
                types: tuple[type, ...]) -> None:
    # bool is an int subclass; don't let True slip into int-typed fields.
    if isinstance(value, bool) and bool not in types:
        raise TraceSchemaError(
            f"{where}: field {field!r} must be {_type_name(types)}, "
            f"got bool")
    if not isinstance(value, types):
        raise TraceSchemaError(
            f"{where}: field {field!r} must be {_type_name(types)}, "
            f"got {type(value).__name__}")


def _check_int_list(where: str, field: str, value: list[object]) -> None:
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise TraceSchemaError(
                f"{where}: field {field!r} must contain only integers, "
                f"got {item!r}")


def _check_violations(where: str, value: list[object]) -> None:
    for record in value:
        if not isinstance(record, Mapping):
            raise TraceSchemaError(
                f"{where}: violations entries must be objects, got "
                f"{record!r}")
        unknown = set(record) - set(_VIOLATION_FIELDS)
        if unknown:
            raise TraceSchemaError(
                f"{where}: violation record has unknown fields "
                f"{sorted(unknown)}")
        for field, types in _VIOLATION_FIELDS.items():
            if field not in record:
                raise TraceSchemaError(
                    f"{where}: violation record missing {field!r}")
            _check_type(where, f"violations.{field}", record[field], types)
        if record["constraint"] not in VIOLATION_CONSTRAINTS:
            raise TraceSchemaError(
                f"{where}: unknown JEDEC constraint "
                f"{record['constraint']!r}")


def validate_event(event: Any, index: int) -> str:
    """Validate one parsed event; returns its kind."""
    where = f"event {index}"
    if not isinstance(event, Mapping):
        raise TraceSchemaError(f"{where}: not a JSON object")
    kind = event.get("kind")
    if kind not in EVENT_SPECS:
        raise TraceSchemaError(
            f"{where}: unknown kind {kind!r}; expected one of "
            f"{', '.join(sorted(EVENT_SPECS))}")
    seq = event.get("seq")
    if isinstance(seq, bool) or not isinstance(seq, int) or seq != index:
        raise TraceSchemaError(
            f"{where}: seq must be {index}, got {seq!r}")
    spec = EVENT_SPECS[kind]
    unknown = set(event) - set(spec) - {"kind", "seq"}
    if unknown:
        raise TraceSchemaError(
            f"{where} ({kind}): unknown fields {sorted(unknown)}")
    for field, (types, required) in spec.items():
        if field not in event:
            if required:
                raise TraceSchemaError(
                    f"{where} ({kind}): missing required field {field!r}")
            continue
        value = event[field]
        _check_type(f"{where} ({kind})", field, value, types)
        if types is _LIST and field != "violations":
            _check_int_list(f"{where} ({kind})", field, value)
    if kind == "command":
        _check_violations(f"{where} (command)", event["violations"])
    enum_key_fields = [(k, f) for (k, f) in _ENUMS if k == kind]
    for _, field in enum_key_fields:
        allowed = _ENUMS[(kind, field)]
        if event[field] not in allowed:
            raise TraceSchemaError(
                f"{where} ({kind}): {field}={event[field]!r} not in "
                f"{allowed}")
    return kind


def validate_trace(events: list[Any]) -> dict[str, int]:
    """Validate a full parsed trace; returns event counts by kind."""
    if not events:
        raise TraceSchemaError("empty trace (missing trace_start header)")
    by_kind: dict[str, int] = {}
    for index, event in enumerate(events):
        kind = validate_event(event, index)
        by_kind[kind] = by_kind.get(kind, 0) + 1
    if events[0]["kind"] != "trace_start":
        raise TraceSchemaError("first event must be trace_start")
    if events[0]["schema"] != SCHEMA_VERSION:
        raise TraceSchemaError(
            f"schema version {events[0]['schema']!r} != {SCHEMA_VERSION!r}")
    if events[-1]["kind"] != "trace_end":
        raise TraceSchemaError(
            "last event must be trace_end (truncated trace?)")
    if events[-1]["events"] != len(events):
        raise TraceSchemaError(
            f"trace_end claims {events[-1]['events']} events, file has "
            f"{len(events)}")
    return by_kind


def validate_trace_file(path: str | Path) -> dict[str, int]:
    """Parse and validate a JSON-lines trace file; returns counts by kind."""
    try:
        events = read_trace(path)
    except ValueError as error:
        raise TraceSchemaError(str(error)) from error
    return validate_trace(events)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: validate trace files, print event summaries."""
    import argparse

    parser = argparse.ArgumentParser(
        description=f"validate {SCHEMA_VERSION} JSON-lines trace files")
    parser.add_argument("paths", nargs="+", metavar="TRACE")
    arguments = parser.parse_args(argv)
    status = 0
    for path in arguments.paths:
        try:
            by_kind = validate_trace_file(path)
        except (TraceSchemaError, OSError) as error:
            print(f"{path}: INVALID: {error}", file=sys.stderr)
            status = 1
            continue
        total = sum(by_kind.values())
        summary = ", ".join(f"{kind}={count}"
                            for kind, count in sorted(by_kind.items()))
        print(f"{path}: ok ({total} events: {summary})")
    return status


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
