"""Process-wide telemetry registry: counters, histograms, phase timers.

The registry is the single sink for every metric the simulator produces —
controller command counts, DRAM sense/charge events, experiment phase
timings, fleet shard accounting.  Design rules:

* **Null sink by default.** Nothing is recorded unless a
  :class:`Telemetry` instance has been activated (via :func:`activate` or
  the :func:`session` context manager).  Instrumented call sites guard
  with ``tel = active()`` / ``if tel is not None``, so a disabled run pays
  one function call and one ``is None`` test per *event* (not per column
  or per cycle) — unmeasurable next to the NumPy work each event wraps.

* **Deterministic vs. execution-shape metrics.** ``counters`` measure
  *work done* and are a pure function of (experiment, config, seed): a
  serial run and an N-worker fleet run of the same experiment produce
  identical counter snapshots.  Wall-clock data (``histograms``,
  ``phases``) and execution-shape metadata (``notes`` — worker counts,
  shard plans, PIDs) are intentionally kept out of the deterministic
  snapshot so byte-identity guarantees (golden reports, result caching)
  are never polluted by timing noise.

* **Mergeable.** :meth:`Telemetry.snapshot` produces a plain-dict,
  picklable view and :meth:`Telemetry.merge_snapshot` folds one registry
  into another; this is how fleet worker processes ship their metrics
  back to the parent (see :mod:`repro.fleet.executor`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

__all__ = [
    "Counter",
    "Histogram",
    "PhaseStats",
    "Telemetry",
    "activate",
    "active",
    "deactivate",
    "session",
]

#: Default histogram bucket upper bounds (seconds-flavored, but any unit
#: works; the final bucket is the implicit +inf overflow).
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a histogram for "
                             "signed observations")
        self.value += int(n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """Bucketed summary of a stream of observations (count/sum/min/max)."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = 0
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            index = len(self.bounds)
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def state(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        if tuple(state["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge differing bucket "
                f"bounds {state['bounds']} into {list(self.bounds)}")
        self.bucket_counts = [
            mine + int(theirs)
            for mine, theirs in zip(self.bucket_counts, state["bucket_counts"])]
        self.count += int(state["count"])
        self.total += float(state["total"])
        for extreme, pick in (("min", min), ("max", max)):
            theirs = state[extreme]
            if theirs is None:
                continue
            mine = getattr(self, extreme)
            setattr(self, extreme,
                    float(theirs) if mine is None else pick(mine, float(theirs)))


class PhaseStats:
    """Accumulated wall time for one named phase."""

    __slots__ = ("name", "count", "total_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0

    def record(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += float(elapsed_s)


class Telemetry:
    """One registry of counters, histograms, phase timers, and a tracer."""

    def __init__(self, tracer: Any | None = None) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}
        self.phases: dict[str, PhaseStats] = {}
        self.notes: dict[str, Any] = {}
        self.tracer = tracer

    # -- counters -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            counter = self.counters[name] = Counter(name)
            return counter

    def count(self, name: str, n: int = 1) -> None:
        self.counter(name).add(n)

    # -- histograms -----------------------------------------------------

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS
                  ) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            histogram = self.histograms[name] = Histogram(name, bounds)
            return histogram

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS) -> None:
        self.histogram(name, bounds).observe(value)

    # -- execution-shape metadata --------------------------------------

    def note(self, name: str, value: Any) -> None:
        """Record execution metadata (workers, shard plan, ...).

        Notes never enter the deterministic snapshot: they describe *how*
        the run executed, not *what* it computed.
        """
        self.notes[name] = value

    # -- phase timers ---------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named stage; the trace (if any) gets begin/end markers.

        Trace markers deliberately carry no duration so traces stay
        byte-identical across serial runs of the same seed; durations
        accumulate in :attr:`phases` (the non-deterministic section).
        """
        if self.tracer is not None:
            self.tracer.emit("phase", {"name": name, "event": "begin"})
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            stats = self.phases.get(name)
            if stats is None:
                stats = self.phases[name] = PhaseStats(name)
            stats.record(elapsed)
            if self.tracer is not None:
                self.tracer.emit("phase", {"name": name, "event": "end"})

    # -- tracing --------------------------------------------------------

    def emit(self, kind: str, fields: Mapping[str, Any]) -> None:
        """Forward a structured event to the tracer, if one is attached."""
        if self.tracer is not None:
            self.tracer.emit(kind, fields)

    # -- snapshots ------------------------------------------------------

    def snapshot(self, *, deterministic: bool = False) -> dict[str, Any]:
        """A plain-dict view of the registry (picklable, JSON-safe).

        ``deterministic=True`` restricts the view to counters — the part
        that is identical between serial, re-sharded, and N-worker runs
        of the same (experiment, config, seed).
        """
        counters = {name: self.counters[name].value
                    for name in sorted(self.counters)}
        if deterministic:
            return {"counters": counters}
        return {
            "counters": counters,
            "histograms": {name: self.histograms[name].state()
                           for name in sorted(self.histograms)},
            "phases": {name: {"count": stats.count, "total_s": stats.total_s}
                       for name, stats in sorted(self.phases.items())},
            "notes": {name: self.notes[name] for name in sorted(self.notes)},
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry: counters and histograms add, phases accumulate, notes
        fill in only where absent."""
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, state in snapshot.get("histograms", {}).items():
            self.histogram(name, tuple(state["bounds"])).merge_state(state)
        for name, data in snapshot.get("phases", {}).items():
            stats = self.phases.get(name)
            if stats is None:
                stats = self.phases[name] = PhaseStats(name)
            stats.count += int(data["count"])
            stats.total_s += float(data["total_s"])
        for name, value in snapshot.get("notes", {}).items():
            self.notes.setdefault(name, value)

    # -- rendering ------------------------------------------------------

    def format_summary(self, *, deterministic: bool = False) -> str:
        """Human-readable summary; deterministic mode prints counters only
        (sorted keys, no wall-clock data) and is safe to golden-compare."""
        lines = ["telemetry summary", "  counters:"]
        for name in sorted(self.counters):
            lines.append(f"    {name} = {self.counters[name].value}")
        if len(lines) == 2:
            lines.append("    (none)")
        if deterministic:
            return "\n".join(lines)
        if self.phases:
            lines.append("  phases:")
            for name, stats in sorted(self.phases.items()):
                lines.append(f"    {name}: {stats.count} x, "
                             f"{stats.total_s:.3f}s total")
        if self.histograms:
            lines.append("  histograms:")
            for name in sorted(self.histograms):
                h = self.histograms[name]
                lines.append(
                    f"    {name}: n={h.count} mean={h.mean:.4g} "
                    f"min={h.min if h.min is not None else '-'} "
                    f"max={h.max if h.max is not None else '-'}")
        if self.notes:
            lines.append("  notes:")
            for name in sorted(self.notes):
                lines.append(f"    {name} = {self.notes[name]}")
        return "\n".join(lines)

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()


# ----------------------------------------------------------------------
# process-wide activation
# ----------------------------------------------------------------------

_ACTIVE: Telemetry | None = None


def active() -> Telemetry | None:
    """The currently activated registry, or None (the null sink)."""
    return _ACTIVE


def activate(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as the process-wide registry."""
    global _ACTIVE
    _ACTIVE = telemetry
    return telemetry


def deactivate() -> None:
    """Return to the null sink (instrumentation becomes no-ops)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def session(trace_path: Any | None = None) -> Iterator[Telemetry]:
    """Activate a fresh registry for the duration of a ``with`` block.

    ``trace_path`` attaches a JSON-lines :class:`~repro.telemetry.tracer.
    TraceWriter`.  Nesting is supported: the previous registry (if any)
    is restored on exit, and the trace file is flushed and footered.
    """
    from .tracer import TraceWriter

    tracer = TraceWriter(trace_path) if trace_path is not None else None
    telemetry = Telemetry(tracer=tracer)
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
        telemetry.close()
