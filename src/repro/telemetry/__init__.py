"""``repro.telemetry`` — unified tracing and metrics for the simulator.

Three pieces, one activation switch:

* :mod:`repro.telemetry.registry` — a process-wide registry of counters
  (deterministic work metrics), histograms and phase timers (wall-clock),
  and notes (execution-shape metadata), with a zero-overhead null sink
  when nothing is activated;
* :mod:`repro.telemetry.tracer` — a deterministic JSON-lines event trace
  of everything the controller puts on the bus (with JEDEC-violation
  flags) and everything the DRAM model resolves electrically;
* :mod:`repro.telemetry.schema` — the ``repro-trace/1`` event schema and
  a strict validator (also ``python -m repro validate-trace``).

Quickstart::

    from repro.telemetry import session

    with session(trace_path="trace.jsonl") as tel:
        fd.frac(bank=0, row=1, n_frac=5)        # instrumented call sites
        print(tel.counters["controller.act"].value)
        print(tel.format_summary(deterministic=True))

Instrumented modules (controller, DRAM model, experiments, fleet) guard
every emission with ``active()``; with no session active the entire
subsystem costs one predicate per event.  The counter catalog and trace
format live in ``docs/telemetry.md``.
"""

from .registry import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Histogram,
    PhaseStats,
    Telemetry,
    activate,
    active,
    deactivate,
    session,
)
from .schema import (
    EVENT_SPECS,
    TraceSchemaError,
    validate_event,
    validate_trace,
    validate_trace_file,
)
from .tracer import SCHEMA_VERSION, TraceWriter, read_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKET_BOUNDS",
    "EVENT_SPECS",
    "Histogram",
    "PhaseStats",
    "SCHEMA_VERSION",
    "Telemetry",
    "TraceSchemaError",
    "TraceWriter",
    "activate",
    "active",
    "deactivate",
    "read_trace",
    "session",
    "validate_event",
    "validate_trace",
    "validate_trace_file",
]
