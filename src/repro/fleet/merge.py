"""Shard-result aggregation protocol and the shardable-experiment registry.

A **shardable experiment** is a module exposing three functions on top of
its classic ``run(config) -> Result``:

* ``shard_units(config, **kwargs) -> Sequence[unit]`` — the ordered list
  of independent work-unit keys (hashable tuples/strings of primitives);
* ``run_shard(config, units, **kwargs) -> list[payload]`` — execute a
  contiguous slice of units and return one picklable payload per unit,
  in the same order;
* ``merge(config, payloads, **kwargs) -> Result`` — combine the payloads
  of *all* units (in serial unit order) into the experiment's result
  object.

The contract that makes parallel runs byte-identical to serial ones:
``run(config)`` must equal ``merge(config, run_shard(config,
shard_units(config)))``, and every unit's payload must depend only on
``(config, unit key)`` — never on shard boundaries.  Retrofitted
experiments achieve this by deriving a dedicated RNG stream per unit via
:func:`repro.dram.rng.derive_rng`.
"""

from __future__ import annotations

import importlib
from types import ModuleType
from typing import Iterable, Sequence

from ..errors import ConfigurationError

__all__ = ["SHARDABLE_EXPERIMENTS", "UnshardableExperimentError",
           "is_shardable", "get_shardable", "merge_payloads", "run_serial"]

#: Experiment name -> module path.  Every experiment in the suite speaks
#: the protocol; modules are imported lazily so worker processes only pay
#: for what their shard touches.
SHARDABLE_EXPERIMENTS: dict[str, str] = {
    "table1": "repro.experiments.table1",
    "fig6": "repro.experiments.fig6_retention",
    "fig7": "repro.experiments.fig7_maj3",
    "fig8": "repro.experiments.fig8_half_m",
    "fig9": "repro.experiments.fig9_fmaj_coverage",
    "fig10": "repro.experiments.fig10_fmaj_stability",
    "fig11": "repro.experiments.fig11_puf_hd",
    "fig12": "repro.experiments.fig12_puf_env",
    "nist": "repro.experiments.nist_randomness",
    "latency": "repro.experiments.latency",
    "timing": "repro.experiments.timing_sweep",
    "ddr4": "repro.experiments.ddr4_outlook",
}

_PROTOCOL = ("shard_units", "run_shard", "merge")


class UnshardableExperimentError(ConfigurationError):
    """The named experiment does not implement the shard protocol."""


def is_shardable(name: str) -> bool:
    """True if ``name`` is registered for fleet execution."""
    return name in SHARDABLE_EXPERIMENTS


def get_shardable(name: str) -> ModuleType:
    """Import and validate the shardable module behind ``name``."""
    try:
        path = SHARDABLE_EXPERIMENTS[name]
    except KeyError:
        raise UnshardableExperimentError(
            f"experiment {name!r} has no shard protocol; shardable: "
            f"{', '.join(SHARDABLE_EXPERIMENTS)}") from None
    module = importlib.import_module(path)
    missing = [hook for hook in _PROTOCOL if not hasattr(module, hook)]
    if missing:
        raise UnshardableExperimentError(
            f"module {path} registered for {name!r} lacks "
            f"{', '.join(missing)}")
    return module


def merge_payloads(name: str, config,
                   payload_lists: Iterable[Sequence], **kwargs):
    """Flatten per-shard payload lists (in shard order) and merge them."""
    module = get_shardable(name)
    flattened: list = []
    for payloads in payload_lists:
        flattened.extend(payloads)
    return module.merge(config, flattened, **kwargs)


def run_serial(name: str, config, **kwargs):
    """Reference serial path through the shard protocol (single shard)."""
    module = get_shardable(name)
    units = tuple(module.shard_units(config, **kwargs))
    payloads = module.run_shard(config, units, **kwargs)
    return module.merge(config, payloads, **kwargs)
