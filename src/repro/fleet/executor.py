"""Process-pool execution engine for sharded experiments.

``FleetExecutor`` fans an experiment's work units out across worker
processes (``concurrent.futures.ProcessPoolExecutor``) and merges the
per-shard payloads back in deterministic order.  Key properties:

* **serial fallback** — ``workers=0`` (the default, also settable via
  ``$REPRO_FLEET_WORKERS``) runs every unit in-process through the exact
  same shard/merge code path, so serial and parallel runs are
  byte-identical by construction;
* **chunked dispatch** — units are grouped into ~2 shards per worker
  (see :func:`repro.fleet.sharding.default_shard_count`) to amortize
  dispatch overhead while keeping the pool load-balanced;
* **nothing stateful crosses the process boundary** — a worker receives
  ``(module path, config, unit keys)`` and rebuilds its shard's devices
  locally from the deterministic fabrication streams;
* **crash surfacing** — a worker exception is re-raised in the parent as
  :class:`FleetWorkerError` naming the shard and its units, with the
  original exception chained.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ReproError
from . import merge as merge_mod
from .sharding import Shard, default_shard_count, plan_shards

__all__ = ["ENV_WORKERS", "FleetExecutor", "FleetOutcome", "FleetWorkerError",
           "ShardStats", "resolve_workers"]

#: Environment variable supplying the default worker count.
ENV_WORKERS = "REPRO_FLEET_WORKERS"


def resolve_workers(value: int | None = None) -> int:
    """Resolve a worker count: explicit value > environment > serial.

    ``0`` means run serially in-process; a negative value means "one
    worker per CPU".
    """
    if value is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if not raw:
            return 0
        try:
            value = int(raw)
        except ValueError:
            raise ReproError(
                f"${ENV_WORKERS} must be an integer, got {raw!r}") from None
    if value < 0:
        return os.cpu_count() or 1
    return value


class FleetWorkerError(ReproError):
    """A worker process failed while executing a shard."""

    def __init__(self, shard: Shard, cause: BaseException) -> None:
        super().__init__(
            f"shard {shard.index + 1}/{shard.total} of experiment "
            f"{shard.experiment!r} failed on units {list(shard.units)!r}: "
            f"{type(cause).__name__}: {cause}")
        self.shard = shard


@dataclass(frozen=True)
class ShardStats:
    """Wall-time accounting for one executed shard."""

    index: int
    n_units: int
    wall_s: float
    worker_pid: int


@dataclass(frozen=True)
class FleetOutcome:
    """A merged experiment result plus per-shard execution metrics."""

    experiment: str
    result: Any
    workers: int
    n_units: int
    shard_stats: tuple[ShardStats, ...] = field(default_factory=tuple)
    wall_s: float = 0.0

    @property
    def n_shards(self) -> int:
        return len(self.shard_stats)

    @property
    def busy_s(self) -> float:
        """Summed worker wall time (the serial-equivalent cost)."""
        return sum(stats.wall_s for stats in self.shard_stats)

    def describe(self) -> str:
        mode = (f"{self.workers} workers" if self.workers else "serial")
        return (f"{self.experiment}: {self.n_units} units in "
                f"{self.n_shards} shards on {mode}; wall {self.wall_s:.2f}s, "
                f"worker-busy {self.busy_s:.2f}s")


def _apply_backend(config: Any, backend: str | None) -> Any:
    """Stamp a shard's backend name onto its config, when supported.

    Shards carry the execution-backend name (see
    :class:`repro.fleet.sharding.Shard`), so a worker process dispatches
    through the same conformance-gated engine the parent planned with.
    Configs without the ``backend`` knob (or ``scaled``) pass through
    untouched.
    """
    if backend is None:
        return config
    if hasattr(config, "scaled") and hasattr(config, "backend"):
        return config.scaled(backend=backend)
    return config


def _execute_shard(module_path: str, config: Any, units: tuple,
                   kwargs: Mapping[str, Any], collect_telemetry: bool = False,
                   backend: str | None = None,
                   ) -> tuple[list, float, int, dict | None]:
    """Worker entry point: rebuild devices locally and run one shard.

    Must stay a module-level function so the pool can pickle a reference
    to it; receives only primitives, a frozen config, and unit keys.
    When the parent runs with telemetry, the worker activates a local
    registry and ships its snapshot back for merging, so an N-worker run
    reports the same deterministic counters as a serial one.
    """
    import importlib

    module = importlib.import_module(module_path)
    config = _apply_backend(config, backend)
    snapshot = None
    started = time.perf_counter()
    if collect_telemetry:
        from ..telemetry.registry import Telemetry, activate, deactivate

        local = activate(Telemetry())
        try:
            payloads = module.run_shard(config, units, **dict(kwargs))
        finally:
            deactivate()
        snapshot = local.snapshot()
    else:
        payloads = module.run_shard(config, units, **dict(kwargs))
    return payloads, time.perf_counter() - started, os.getpid(), snapshot


class FleetExecutor:
    """Run shardable experiments over a pool of worker processes."""

    def __init__(self, workers: int | None = None, *,
                 chunks_per_worker: int = 2) -> None:
        self.workers = resolve_workers(workers)
        self.chunks_per_worker = chunks_per_worker

    def run(self, name: str, config: Any, *, n_shards: int | None = None,
            **kwargs: Any) -> FleetOutcome:
        """Execute experiment ``name`` and merge shard payloads.

        Extra keyword arguments are forwarded to the experiment's
        ``shard_units`` / ``run_shard`` / ``merge`` hooks (e.g. fig10's
        ``trials``); they must be picklable primitives.
        """
        from ..telemetry.registry import active as telemetry_active

        module = merge_mod.get_shardable(name)
        units = tuple(module.shard_units(config, **kwargs))
        started = time.perf_counter()
        if n_shards is None:
            n_shards = default_shard_count(len(units), self.workers,
                                           self.chunks_per_worker)
        backend = getattr(config, "backend", None)
        shards = plan_shards(name, units, n_shards, backend=backend)
        telemetry = telemetry_active()
        if telemetry is not None:
            # Everything here is execution shape (a serial run_experiment
            # never routes through the executor), so notes/histograms
            # only — counters must stay identical serial vs. parallel.
            telemetry.note(f"fleet.{name}.workers", self.workers)
            telemetry.note(f"fleet.{name}.shards", len(shards))
            telemetry.note(f"fleet.{name}.units", len(units))
            if shards:
                telemetry.note(f"fleet.{name}.backend", shards[0].backend)
        if self.workers == 0 or len(shards) <= 1:
            payload_lists, stats = self._run_serial(module, config, shards,
                                                    kwargs)
        else:
            payload_lists, stats = self._run_pool(module, config, shards,
                                                  kwargs, telemetry)
        if telemetry is not None:
            for shard_stats in stats:
                telemetry.observe("fleet.shard_wall_s", shard_stats.wall_s)
            merge_context = telemetry.phase("fleet.merge")
        else:
            from contextlib import nullcontext

            merge_context = nullcontext()
        with merge_context:
            result = merge_mod.merge_payloads(name, config, payload_lists,
                                              **kwargs)
        return FleetOutcome(
            experiment=name, result=result, workers=self.workers,
            n_units=len(units), shard_stats=tuple(stats),
            wall_s=time.perf_counter() - started)

    def _run_serial(self, module, config, shards, kwargs):
        payload_lists, stats = [], []
        for shard in shards:
            shard_started = time.perf_counter()
            try:
                payloads = module.run_shard(
                    _apply_backend(config, shard.backend), shard.units,
                    **kwargs)
            except Exception as error:
                raise FleetWorkerError(shard, error) from error
            payload_lists.append(payloads)
            stats.append(ShardStats(shard.index, shard.n_units,
                                    time.perf_counter() - shard_started,
                                    os.getpid()))
        return payload_lists, stats

    def _run_pool(self, module, config, shards, kwargs, telemetry=None):
        payload_lists: list = [None] * len(shards)
        stats: list = [None] * len(shards)
        module_path = module.__name__
        collect = telemetry is not None
        with ProcessPoolExecutor(max_workers=min(self.workers,
                                                 len(shards))) as pool:
            futures = {
                pool.submit(_execute_shard, module_path, config, shard.units,
                            kwargs, collect, shard.backend): shard
                for shard in shards
            }
            for future, shard in futures.items():
                try:
                    payloads, wall_s, pid, snapshot = future.result()
                except BrokenProcessPool as error:
                    raise FleetWorkerError(shard, error) from error
                except Exception as error:
                    raise FleetWorkerError(shard, error) from error
                payload_lists[shard.index] = payloads
                stats[shard.index] = ShardStats(shard.index, shard.n_units,
                                                wall_s, pid)
                if telemetry is not None and snapshot is not None:
                    telemetry.merge_snapshot(snapshot)
        return payload_lists, stats
