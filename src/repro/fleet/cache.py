"""Content-addressed on-disk cache for experiment results.

Every simulation in this package is deterministic: a result is a pure
function of ``(experiment name, configuration, code version)``.  That
makes caching trivially sound — there is no invalidation problem beyond
hashing the inputs.  The cache key is a BLAKE2b digest over:

* the experiment name,
* a canonical JSON rendering of the :class:`ExperimentConfig` dataclass
  (plus any extra keyword arguments the experiment was run with),
* the installed package version (``repro.__version__``), so upgrading
  the simulator invalidates every entry at once.

Entries are stored as ``<name>-<digest>.pkl`` (pickled result object)
next to a ``.json`` sidecar with human-readable metadata.  Corrupt or
unreadable entries are treated as misses and overwritten — the cache is
an accelerator, never a source of truth.

The default directory is ``$REPRO_FLEET_CACHE`` if set, else
``$XDG_CACHE_HOME/repro-fleet``, else ``~/.cache/repro-fleet``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Mapping

__all__ = ["ResultCache", "cache_key", "config_fingerprint",
           "default_cache_dir", "ENV_CACHE_DIR"]

#: Environment variable overriding the cache directory.
ENV_CACHE_DIR = "REPRO_FLEET_CACHE"

_DIGEST_CHARS = 24  # 96 bits rendered in the file name: ample for a cache


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-fleet"


def _canonical(value: Any) -> Any:
    """Reduce a value to JSON-stable primitives for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _canonical(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, Mapping):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_fingerprint(config: Any, extra: Mapping[str, Any] | None = None) -> str:
    """Canonical JSON for a config dataclass plus extra run arguments."""
    document = {"config": _canonical(config), "extra": _canonical(extra or {})}
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def cache_key(experiment: str, config: Any,
              extra: Mapping[str, Any] | None = None,
              version: str | None = None) -> str:
    """Content-addressed key: ``<experiment>-<digest>``."""
    if version is None:
        from .. import __version__ as version
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(experiment.encode())
    hasher.update(b"\0")
    hasher.update(str(version).encode())
    hasher.update(b"\0")
    hasher.update(config_fingerprint(config, extra).encode())
    return f"{experiment}-{hasher.hexdigest()[:_DIGEST_CHARS]}"


class ResultCache:
    """Pickle-backed result store addressed by :func:`cache_key`.

    ``hits``/``misses``/``stores`` counters let callers report whether a
    result came from disk or a fresh run.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _entry(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def _meta(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def fetch(self, key: str) -> tuple[bool, Any]:
        """``(True, result)`` on a hit, ``(False, None)`` on a miss.

        Any I/O or unpickling failure counts as a miss: a damaged entry
        must never poison a run.
        """
        path = self._entry(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, result

    def store(self, key: str, result: Any,
              meta: Mapping[str, Any] | None = None) -> Path:
        """Persist ``result`` under ``key``; returns the entry path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._entry(key)
        temporary = path.with_suffix(".pkl.tmp")
        with temporary.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temporary.replace(path)  # atomic within a directory
        # Sidecar metadata only — never read back into results, so the
        # wall-clock timestamp cannot leak into the byte-identity contract.
        sidecar = {"key": key,
                   "created": time.time(),  # repro: lint-ok[DET002]
                   "result_type": type(result).__name__}
        if meta:
            sidecar.update({str(k): v for k, v in meta.items()})
        self._meta(key).write_text(json.dumps(sidecar, indent=2,
                                              sort_keys=True, default=repr)
                                   + "\n")
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")
