"""Deterministic work decomposition for the device fleet.

The simulator's chip fabrication is a pure function of ``(master_seed,
group, serial)`` (see :mod:`repro.dram.rng`), so an experiment over many
devices decomposes into independent **work units** — small hashable keys
such as ``("B", 3)`` or ``("stability", "C", "f-maj", 1)`` — that any
worker process can execute locally by rebuilding its shard's devices from
the unit key.  Nothing stateful is ever pickled across the process
boundary: a shard carries only the experiment name and the unit keys.

Two invariants make fleet results reproducible:

* **shard invariance** — a unit's computation depends only on
  ``(config, unit key)``, never on which shard it landed in or which
  units ran before it (retrofitted experiments derive a dedicated RNG
  stream per unit);
* **deterministic partitioning** — :func:`partition` splits a unit list
  into contiguous, balanced chunks, so the same ``(units, n_shards)``
  always yields the same plan and merged payloads arrive in serial
  order regardless of worker scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence, TypeVar

from ..errors import ConfigurationError

__all__ = ["Shard", "partition", "plan_shards", "default_shard_count"]

#: Mirrors :data:`repro.backends.registry.DEFAULT_BACKEND`.  Kept as a
#: literal so the typed sharding core stays import-light (a conformance
#: test pins the two in sync).
_DEFAULT_BACKEND = "batched"

#: A work-unit key: any hashable value (strings, ints, tuples of both).
U = TypeVar("U", bound=Hashable)


@dataclass(frozen=True)
class Shard:
    """One worker's slice of an experiment: unit keys only, no state.

    ``index``/``total`` identify the shard within its plan; ``units`` is
    the contiguous run of unit keys this shard executes, in serial order.
    ``backend`` names the execution engine (see :mod:`repro.backends`)
    the worker must dispatch through — conformance-gated, so the choice
    never changes the merged result.
    """

    experiment: str
    index: int
    total: int
    units: tuple[Hashable, ...]
    backend: str = _DEFAULT_BACKEND

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.total:
            raise ConfigurationError(
                f"shard index {self.index} out of range for {self.total} shards")
        if not self.units:
            raise ConfigurationError("a shard must carry at least one unit")

    @property
    def n_units(self) -> int:
        return len(self.units)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Shard({self.experiment!r}, {self.index + 1}/{self.total}, "
                f"{self.n_units} units)")


def partition(units: Sequence[U], n_shards: int) -> list[tuple[U, ...]]:
    """Split ``units`` into at most ``n_shards`` contiguous balanced chunks.

    Chunk sizes differ by at most one and concatenating the chunks
    reproduces ``units`` exactly, so a merge that walks chunks in order
    sees the serial unit order.  ``n_shards`` is clamped to ``len(units)``
    (no empty shards).

    >>> partition(list("abcde"), 2)
    [('a', 'b', 'c'), ('d', 'e')]
    >>> partition(list("ab"), 5)
    [('a',), ('b',)]
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    frozen = tuple(units)
    if not frozen:
        return []
    n_shards = min(n_shards, len(frozen))
    base, extra = divmod(len(frozen), n_shards)
    chunks: list[tuple[U, ...]] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        chunks.append(frozen[start:start + size])
        start += size
    return chunks


def plan_shards(experiment: str, units: Sequence[Hashable],
                n_shards: int, *,
                backend: str | None = None) -> tuple[Shard, ...]:
    """Deterministic shard plan for ``experiment`` over ``units``."""
    chunks = partition(units, n_shards)
    return tuple(
        Shard(experiment=experiment, index=index, total=len(chunks),
              units=chunk, backend=backend or _DEFAULT_BACKEND)
        for index, chunk in enumerate(chunks))


def default_shard_count(n_units: int, workers: int,
                        chunks_per_worker: int = 2) -> int:
    """Shards to create for ``workers`` processes (chunked dispatch).

    Oversubscribing each worker by ``chunks_per_worker`` keeps the pool
    busy when unit costs are uneven, without paying per-unit dispatch
    overhead.  Never exceeds the unit count.
    """
    if workers < 1:
        return 1
    return max(1, min(n_units, workers * chunks_per_worker))
