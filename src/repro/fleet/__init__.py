"""``repro.fleet`` — parallel device-fleet orchestration.

The paper's evaluation spans hundreds of chips; the simulator's
embarrassingly parallel structure (chip fabrication is a pure function
of ``(master_seed, group, serial)``) lets a fleet of worker processes
rebuild disjoint device shards locally and run them concurrently.  This
package provides:

* :mod:`repro.fleet.sharding` — deterministic work decomposition,
* :mod:`repro.fleet.executor` — a process-pool engine with a serial
  fallback, chunked dispatch, per-shard metrics, and crash surfacing,
* :mod:`repro.fleet.cache` — a content-addressed on-disk result cache,
* :mod:`repro.fleet.merge` — the shard-result aggregation protocol and
  the registry of shard-capable experiments.

Quickstart::

    from repro.fleet import FleetExecutor
    from repro.experiments import DEFAULT_CONFIG

    outcome = FleetExecutor(workers=4).run("fig6", DEFAULT_CONFIG)
    print(outcome.result.format_table())
    print(outcome.describe())          # per-shard wall-time accounting

Serial and parallel runs are byte-identical for a fixed seed: see
:mod:`repro.fleet.merge` for the contract that guarantees it.
"""

from .cache import ENV_CACHE_DIR, ResultCache, cache_key, default_cache_dir
from .executor import (
    ENV_WORKERS,
    FleetExecutor,
    FleetOutcome,
    FleetWorkerError,
    ShardStats,
    resolve_workers,
)
from .merge import (
    SHARDABLE_EXPERIMENTS,
    UnshardableExperimentError,
    get_shardable,
    is_shardable,
    run_serial,
)
from .sharding import Shard, default_shard_count, partition, plan_shards

__all__ = [
    "ENV_CACHE_DIR",
    "ENV_WORKERS",
    "FleetExecutor",
    "FleetOutcome",
    "FleetWorkerError",
    "ResultCache",
    "SHARDABLE_EXPERIMENTS",
    "Shard",
    "ShardStats",
    "UnshardableExperimentError",
    "cache_key",
    "default_cache_dir",
    "default_shard_count",
    "get_shardable",
    "is_shardable",
    "partition",
    "plan_shards",
    "resolve_workers",
    "run_serial",
]
