"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``experiments`` — run paper experiments (delegates to the runner),
* ``report`` — run experiments and write RESULTS.md + JSON exports,
* ``run-program`` — execute a SoftMC assembly program file on any
  registered execution backend (see ``docs/backends.md``),
* ``trng`` — generate random bits from a simulated device,
* ``puf`` — print a device's PUF response to a challenge,
* ``assemble`` / ``disassemble`` — SoftMC program tooling,
* ``validate-trace`` — check JSON-lines telemetry traces against the
  ``repro-trace/1`` schema,
* ``lint`` — determinism & fork-safety static analysis over the source
  tree (see ``docs/linting.md``),
* ``serve`` — run the PUF-authentication service over a JSON-lines TCP
  transport (see ``docs/service.md``),
* ``bench-service`` — replay a seeded verification workload against the
  service, scripted (deterministic transcript) or live (asyncio
  coalescing, throughput + latency percentiles).

``experiments`` and ``report`` accept ``--telemetry`` / ``--trace-out
PATH`` to record counters, phase timers, and a structured event trace
(see ``docs/telemetry.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_experiments(arguments: argparse.Namespace) -> int:
    from .experiments.runner import main as runner_main

    forwarded = []
    if arguments.only:
        forwarded.extend(["--only", *arguments.only])
    if arguments.list:
        forwarded.append("--list")
    forwarded.extend(["--seed", str(arguments.seed)])
    forwarded.extend(["--columns", str(arguments.columns)])
    if arguments.workers is not None:
        forwarded.extend(["--workers", str(arguments.workers)])
    if arguments.batch is not None:
        forwarded.extend(["--batch", str(arguments.batch)])
    if arguments.backend is not None:
        forwarded.extend(["--backend", arguments.backend])
    if arguments.no_cache:
        forwarded.append("--no-cache")
    if arguments.cache_dir:
        forwarded.extend(["--cache-dir", arguments.cache_dir])
    if arguments.telemetry:
        forwarded.append("--telemetry")
    if arguments.trace_out:
        forwarded.extend(["--trace-out", arguments.trace_out])
    if arguments.cache_stats:
        forwarded.append("--cache-stats")
    return runner_main(forwarded)


def _cmd_report(arguments: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from .experiments.base import DEFAULT_CONFIG
    from .experiments.report import generate_report
    from .fleet import ResultCache, resolve_workers
    from .telemetry import session as telemetry_session

    if arguments.backend is not None:
        from .backends import BackendError, get_backend

        try:
            get_backend(arguments.backend)  # fail fast on unknown names
        except BackendError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    config = DEFAULT_CONFIG.scaled(master_seed=arguments.seed,
                                   columns=arguments.columns,
                                   batch=arguments.batch,
                                   backend=arguments.backend)
    workers = resolve_workers(arguments.workers)
    cache = None if arguments.no_cache else ResultCache(arguments.cache_dir)
    use_telemetry = arguments.telemetry or arguments.trace_out is not None
    context = (telemetry_session(trace_path=arguments.trace_out)
               if use_telemetry else nullcontext(None))
    with context:
        path = generate_report(arguments.output, config,
                               arguments.only or None,
                               workers=workers, cache=cache)
    print(f"report written to {path}")
    if arguments.trace_out:
        print(f"trace written to {arguments.trace_out}")
    if cache is not None and cache.hits:
        print(f"({cache.hits} experiment(s) served from cache "
              f"{cache.directory})")
    return 0


def _cmd_validate_trace(arguments: argparse.Namespace) -> int:
    from .telemetry.schema import main as schema_main

    return schema_main(arguments.paths)


def _cmd_trng(arguments: argparse.Namespace) -> int:
    from .dram.chip import DramChip
    from .dram.parameters import GeometryParams
    from .trng import QuacTrng

    geometry = GeometryParams(n_banks=1, subarrays_per_bank=1,
                              rows_per_subarray=16,
                              columns=arguments.columns)
    chip = DramChip(arguments.group, geometry=geometry,
                    master_seed=arguments.seed)
    trng = QuacTrng(chip)
    bits, stats = trng.generate(arguments.bits)
    print("".join(str(int(bit)) for bit in bits))
    print(f"# {stats.whitened_bits} whitened bits from {stats.raw_bits} raw "
          f"({stats.throughput_mbps:.1f} Mbit/s modeled)", file=sys.stderr)
    return 0


def _cmd_puf(arguments: argparse.Namespace) -> int:
    from .dram.chip import DramChip
    from .puf import Challenge, FracPuf

    chip = DramChip(arguments.group, serial=arguments.serial,
                    master_seed=arguments.seed)
    puf = FracPuf(chip)
    response = puf.evaluate(Challenge(arguments.bank, arguments.row))
    print("".join(str(int(bit)) for bit in response))
    print(f"# group {arguments.group} serial {arguments.serial} "
          f"bank {arguments.bank} row {arguments.row} "
          f"weight {response.mean():.3f}", file=sys.stderr)
    return 0


def _cmd_assemble(arguments: argparse.Namespace) -> int:
    from .controller import assemble

    source = Path(arguments.program).read_text()
    sequence = assemble(source, label=arguments.program)
    print(sequence.describe())
    return 0


def _cmd_disassemble(arguments: argparse.Namespace) -> int:
    from .controller import disassemble
    from .controller import sequences as seq

    builders = {
        "frac": lambda: seq.frac_sequence(0, arguments.row, arguments.n),
        "maj3": lambda: seq.multi_row_sequence(0, 1, 2),
        "half-m": lambda: seq.half_m_sequence(0, 8, 1),
        "row-copy": lambda: seq.row_copy_sequence(0, arguments.row,
                                                  arguments.row + 1),
    }
    print(disassemble(builders[arguments.primitive]()), end="")
    return 0


def _service_db(arguments: argparse.Namespace):
    from .service import (EnrollmentStore, ServiceConfig, build_enrollment,
                          frac_capable_groups)

    config = ServiceConfig(
        master_seed=arguments.seed,
        columns=arguments.columns,
        n_challenges=arguments.challenges,
        groups=(tuple(arguments.groups) if arguments.groups
                else frac_capable_groups()))
    if arguments.no_store:
        return build_enrollment(config, arguments.modules)
    store = EnrollmentStore(arguments.store_dir)
    db = store.load_or_build(config, arguments.modules)
    if store.hits:
        print(f"# enrollment served from {store.directory}", file=sys.stderr)
    return db


def _add_service_fleet_arguments(parser: argparse.ArgumentParser,
                                 default_modules: int) -> None:
    parser.add_argument("--modules", type=int, default=default_modules,
                        help="fleet size to enroll")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--columns", type=int, default=64,
                        help="response width in bits")
    parser.add_argument("--challenges", type=int, default=2,
                        help="private challenge set size")
    parser.add_argument("--groups", nargs="*", default=None,
                        help="vendor groups to enroll (default: all "
                             "Frac-capable groups)")
    parser.add_argument("--store-dir", default=None,
                        help="enrollment store directory")
    parser.add_argument("--no-store", action="store_true",
                        help="re-enroll instead of using the store")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="verification engine backend (fused/batched; "
                             "default fused; replies byte-identical)")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print plan/xir compile-cache statistics "
                             "after the run")


def _cmd_serve(arguments: argparse.Namespace) -> int:
    import asyncio

    from .errors import ConfigurationError
    from .service import CoalescePolicy, PufAuthService

    db = _service_db(arguments)
    policy = CoalescePolicy(max_lanes=arguments.max_lanes,
                            max_wait_s=arguments.max_wait_ms / 1e3)

    async def run() -> None:
        service = PufAuthService(db, policy=policy,
                                 backend=arguments.backend)
        await service.start()
        host, port = await service.serve_tcp(arguments.host, arguments.port)
        print(f"serving {db.n_modules} enrolled module(s) "
              f"on {host}:{port} via {service.engine.backend} engine "
              f"(JSON lines; Ctrl-C to stop)")
        try:
            await asyncio.Event().wait()
        finally:
            await service.stop()

    try:
        asyncio.run(run())
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("stopped")
    if arguments.cache_stats:
        from .experiments.runner import format_cache_stats

        print(format_cache_stats())
    return 0


def _cmd_bench_service(arguments: argparse.Namespace) -> int:
    import asyncio
    from contextlib import nullcontext

    from .errors import ConfigurationError
    from .service import (CoalescePolicy, PufAuthService, VerificationEngine,
                          WorkloadSpec, generate_schedule, percentile,
                          replay_scripted)
    from .telemetry import session as telemetry_session

    db = _service_db(arguments)
    try:
        engine = VerificationEngine(db, backend=arguments.backend)
    except ConfigurationError as error:  # fail fast on unknown backends
        print(f"error: {error}", file=sys.stderr)
        return 2
    spec = WorkloadSpec(seed=arguments.workload_seed,
                        n_requests=arguments.requests,
                        rate_rps=arguments.rate,
                        impostor_fraction=arguments.impostors)
    schedule = generate_schedule(db, spec)
    policy = CoalescePolicy(max_lanes=arguments.max_lanes,
                            max_wait_s=arguments.max_wait_ms / 1e3)
    use_telemetry = arguments.telemetry or arguments.trace_out is not None
    context = (telemetry_session(trace_path=arguments.trace_out)
               if use_telemetry else nullcontext(None))
    with context as telemetry:
        if arguments.live:
            from .service import SystemClock, drive_open_loop

            wall = SystemClock()

            async def run() -> tuple[list, float]:
                service = PufAuthService(db, policy=policy,
                                         backend=arguments.backend)
                await service.start()
                # Live mode reports real throughput to a human; the
                # elapsed wall time never reaches deterministic output.
                started = wall.now()  # repro: lint-ok[DET002]
                replies = await drive_open_loop(
                    service.batcher, schedule, pace=not arguments.no_pace)
                elapsed = wall.now() - started  # repro: lint-ok[DET002]
                latencies = list(service.batcher.latencies)
                await service.stop()
                return latencies, elapsed

            latencies, elapsed = asyncio.run(run())
            rate = len(schedule) / elapsed if elapsed > 0 else float("inf")
            print(f"live: {len(schedule)} verifications in {elapsed:.3f} s "
                  f"({rate:.0f}/s)")
            print(f"latency p50 {percentile(latencies, 0.5)*1e3:.2f} ms, "
                  f"p99 {percentile(latencies, 0.99)*1e3:.2f} ms")
        else:
            summary = replay_scripted(db, schedule, policy,
                                      transcript_path=arguments.transcript,
                                      engine=engine)
            print(summary.format_summary())
            if summary.transcript_path is not None:
                # stderr, so stdout stays byte-identical across replays
                # that only differ in where the transcript landed.
                print(f"transcript written to {summary.transcript_path}",
                      file=sys.stderr)
    if use_telemetry and telemetry is not None:
        print(telemetry.format_summary(deterministic=not arguments.live))
    if arguments.cache_stats:
        from .experiments.runner import format_cache_stats

        print(format_cache_stats())
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments_in = list(sys.argv[1:] if argv is None else argv)
    if arguments_in and arguments_in[0] == "lint":
        # Dispatched before argparse: the lint CLI owns its own flags
        # (argparse.REMAINDER cannot forward leading ``--options``).
        from .lint.cli import main as lint_main

        return lint_main(arguments_in[1:])
    if arguments_in and arguments_in[0] == "run-program":
        # Also pre-dispatched: the frontend owns its flags (its --backend
        # choices come from the registry, which should only be imported
        # when the command actually runs).
        from .backends.frontend import main as run_program_main

        return run_program_main(arguments_in[1:])

    parser = argparse.ArgumentParser(
        prog="repro", description="FracDRAM reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="run paper experiments")
    experiments.add_argument("--only", nargs="*")
    experiments.add_argument("--list", action="store_true")
    experiments.add_argument("--seed", type=int, default=2022)
    experiments.add_argument("--columns", type=int, default=1024)
    experiments.add_argument("--workers", type=int, default=None,
                             help="worker processes to shard experiments "
                                  "over (0 = serial)")
    experiments.add_argument("--batch", type=int, default=None,
                             help="batched-engine lane width (trials or "
                                  "modules; default auto; 1 = scalar; "
                                  "results byte-identical)")
    experiments.add_argument("--backend", default=None, metavar="NAME",
                             help="execution backend (scalar/batched/plan/fused; "
                                  "default batched; results byte-identical)")
    experiments.add_argument("--no-cache", action="store_true",
                             help="recompute results even if cached")
    experiments.add_argument("--cache-dir", default=None)
    experiments.add_argument("--telemetry", action="store_true",
                             help="collect and print telemetry counters")
    experiments.add_argument("--cache-stats", action="store_true",
                             help="print plan/xir compile-cache "
                                  "statistics after the run")
    experiments.add_argument("--trace-out", default=None, metavar="PATH",
                             help="write a JSON-lines event trace "
                                  "(implies --telemetry)")
    experiments.set_defaults(handler=_cmd_experiments)

    report = subparsers.add_parser(
        "report", help="write RESULTS.md + JSON exports")
    report.add_argument("--output", default="results")
    report.add_argument("--only", nargs="*")
    report.add_argument("--seed", type=int, default=2022)
    report.add_argument("--columns", type=int, default=1024)
    report.add_argument("--workers", type=int, default=None,
                        help="worker processes to shard experiments "
                             "over (0 = serial)")
    report.add_argument("--batch", type=int, default=None,
                        help="batched-engine lane width (trials or "
                             "modules; default auto; 1 = scalar; "
                             "results byte-identical)")
    report.add_argument("--backend", default=None, metavar="NAME",
                        help="execution backend (scalar/batched/plan/fused; "
                             "default batched; results byte-identical)")
    report.add_argument("--no-cache", action="store_true",
                        help="recompute results even if cached")
    report.add_argument("--cache-dir", default=None)
    report.add_argument("--telemetry", action="store_true",
                        help="collect telemetry; adds a deterministic "
                             "summary section to RESULTS.md")
    report.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a JSON-lines event trace "
                             "(implies --telemetry)")
    report.set_defaults(handler=_cmd_report)

    trng = subparsers.add_parser("trng", help="generate random bits")
    trng.add_argument("--bits", type=int, default=1024)
    trng.add_argument("--group", default="B")
    trng.add_argument("--columns", type=int, default=4096)
    trng.add_argument("--seed", type=int, default=2022)
    trng.set_defaults(handler=_cmd_trng)

    puf = subparsers.add_parser("puf", help="evaluate a PUF challenge")
    puf.add_argument("--group", default="B")
    puf.add_argument("--serial", type=int, default=0)
    puf.add_argument("--bank", type=int, default=0)
    puf.add_argument("--row", type=int, default=1)
    puf.add_argument("--seed", type=int, default=2022)
    puf.set_defaults(handler=_cmd_puf)

    assemble = subparsers.add_parser(
        "assemble", help="assemble a SoftMC program file")
    assemble.add_argument("program")
    assemble.set_defaults(handler=_cmd_assemble)

    validate_trace = subparsers.add_parser(
        "validate-trace",
        help="validate repro-trace/1 JSON-lines trace files")
    validate_trace.add_argument("paths", nargs="+", metavar="TRACE")
    validate_trace.set_defaults(handler=_cmd_validate_trace)

    # ``lint`` and ``run-program`` are dispatched above; registered here
    # so ``repro -h`` lists them alongside the other subcommands.
    subparsers.add_parser(
        "lint", add_help=False,
        help="determinism & fork-safety static analysis "
             "(see docs/linting.md)")
    subparsers.add_parser(
        "run-program", add_help=False,
        help="execute a SoftMC program file on any registered backend "
             "(see docs/backends.md)")

    serve = subparsers.add_parser(
        "serve", help="serve PUF authentication over JSON-lines TCP")
    _add_service_fleet_arguments(serve, default_modules=256)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral)")
    serve.add_argument("--max-lanes", type=int, default=32,
                       help="coalesced batch capacity")
    serve.add_argument("--max-wait-ms", type=float, default=5.0,
                       help="coalescing window (milliseconds)")
    serve.set_defaults(handler=_cmd_serve)

    bench_service = subparsers.add_parser(
        "bench-service",
        help="replay a seeded verification workload against the service")
    _add_service_fleet_arguments(bench_service, default_modules=256)
    bench_service.add_argument("--requests", type=int, default=512)
    bench_service.add_argument("--rate", type=float, default=2000.0,
                               help="open-loop arrival rate (req/s)")
    bench_service.add_argument("--impostors", type=float, default=0.125,
                               help="fraction of impostor requests")
    bench_service.add_argument("--workload-seed", type=int, default=0)
    bench_service.add_argument("--max-lanes", type=int, default=32)
    bench_service.add_argument("--max-wait-ms", type=float, default=5.0)
    bench_service.add_argument("--live", action="store_true",
                               help="drive the asyncio coalescer in real "
                                    "time instead of scripted replay")
    bench_service.add_argument("--no-pace", action="store_true",
                               help="with --live: submit back-to-back "
                                    "instead of honoring arrival times")
    bench_service.add_argument("--transcript", default=None, metavar="PATH",
                               help="scripted mode: write the JSON-lines "
                                    "transcript here")
    bench_service.add_argument("--telemetry", action="store_true")
    bench_service.add_argument("--trace-out", default=None, metavar="PATH",
                               help="write a JSON-lines event trace "
                                    "(implies --telemetry)")
    bench_service.set_defaults(handler=_cmd_bench_service)

    disassemble = subparsers.add_parser(
        "disassemble", help="print a primitive as SoftMC program text")
    disassemble.add_argument("primitive",
                             choices=("frac", "maj3", "half-m", "row-copy"))
    disassemble.add_argument("--row", type=int, default=1)
    disassemble.add_argument("--n", type=int, default=1)
    disassemble.set_defaults(handler=_cmd_disassemble)

    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        # Redirect stdout to devnull so the interpreter's shutdown flush
        # does not raise a second time.
        import os

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
