"""Seeded open-loop traffic and reproducible load replay.

:func:`generate_schedule` turns a :class:`WorkloadSpec` into a virtual-
time arrival schedule: Poisson arrivals (exponential inter-arrival
gaps) over the enrolled fleet, with a configurable fraction of
impostors — requests presenting un-enrolled silicon while claiming an
enrolled identity.  Every draw comes from a stream derived from the
service master seed, so a spec names one exact traffic trace forever.

The schedule feeds two drivers:

* :func:`replay_scripted` — the deterministic path: virtual time only
  (a :class:`~repro.service.clock.ManualClock` advanced to each batch's
  flush time, never the host clock), batches formed by the pure
  :func:`~repro.service.batcher.coalesce_schedule`, and an optional
  JSON-lines transcript whose bytes are identical across reruns of the
  same spec — the service's golden-file equivalent.

* :func:`drive_open_loop` — the live asyncio path: requests are
  submitted open-loop (arrival times are honored regardless of
  completions, or fired back-to-back with ``pace=False``) against a
  running :class:`~repro.service.batcher.RequestBatcher`, for wall-
  clock throughput and latency measurements.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..dram.rng import derive_rng
from ..errors import ConfigurationError
from ..telemetry.registry import active as _telemetry_active
from .batcher import (LATENCY_BUCKET_BOUNDS, RequestBatcher,
                      VerificationEngine, VerifyReply, VerifyRequest,
                      coalesce_schedule)
from .clock import ManualClock
from .config import CoalescePolicy
from .enrollment import EnrollmentDb

__all__ = [
    "ReplaySummary",
    "TRANSCRIPT_FORMAT",
    "WorkloadSpec",
    "drive_open_loop",
    "generate_schedule",
    "percentile",
    "replay_scripted",
]

#: Transcript format tag written in the header line.
TRANSCRIPT_FORMAT = "repro-service-transcript/1"


@dataclass(frozen=True)
class WorkloadSpec:
    """One reproducible traffic trace, named by its parameters."""

    seed: int = 0
    n_requests: int = 256
    #: Open-loop arrival rate (requests per virtual second).
    rate_rps: float = 2000.0
    #: Fraction of requests presenting un-enrolled silicon.
    impostor_fraction: float = 0.125
    #: Genuine requests re-measure at a noise epoch drawn uniformly
    #: from ``[1, max_epoch]`` (enrollment used epoch 0).
    max_epoch: int = 4

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigurationError("n_requests must be >= 1")
        if self.rate_rps <= 0:
            raise ConfigurationError("rate_rps must be > 0")
        if not 0.0 <= self.impostor_fraction <= 1.0:
            raise ConfigurationError("impostor_fraction must be in [0, 1]")
        if self.max_epoch < 1:
            raise ConfigurationError("max_epoch must be >= 1")


def generate_schedule(db: EnrollmentDb, spec: WorkloadSpec,
                      ) -> list[tuple[float, VerifyRequest]]:
    """The spec's arrival schedule: nondecreasing ``(t, request)`` pairs.

    Impostors present a serial one fleet beyond the enrolled range of a
    random group (distinct silicon, never enrolled) while claiming a
    random enrolled identity — the spoof attempt the inter-HD margin
    (paper: >= 0.27) rejects.
    """
    rng = derive_rng(db.config.master_seed, "service", "workload",
                     spec.seed)
    groups = db.config.groups
    serials_per_group = (db.n_modules + len(groups) - 1) // len(groups)
    schedule: list[tuple[float, VerifyRequest]] = []
    now = 0.0
    for sequence in range(spec.n_requests):
        now += float(rng.exponential(1.0 / spec.rate_rps))
        claim_index = int(rng.integers(db.n_modules))
        claimed_id = db.ids[claim_index]
        epoch = int(rng.integers(1, spec.max_epoch + 1))
        if float(rng.random()) < spec.impostor_fraction:
            group_id = groups[int(rng.integers(len(groups)))]
            serial = serials_per_group + int(rng.integers(serials_per_group))
        else:
            group_id, serial = db.specs[claim_index]
        schedule.append((now, VerifyRequest(
            request_id=f"r{sequence:06d}", group_id=group_id,
            serial=serial, epoch=epoch, claimed_id=claimed_id)))
    return schedule


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample."""
    if not values:
        raise ConfigurationError("cannot take a percentile of no samples")
    ordered = sorted(float(value) for value in values)
    rank = min(len(ordered) - 1,
               max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class ReplaySummary:
    """What one scripted replay did (deterministic under a fixed spec)."""

    n_requests: int = 0
    accepted: int = 0
    rejected: int = 0
    claims_held: int = 0
    attest_failures: int = 0
    batches: int = 0
    flush_causes: dict[str, int] = field(default_factory=dict)
    #: Virtual coalesce waits (seconds), in completion order.
    waits: list[float] = field(default_factory=list)
    transcript_path: Path | None = None

    @property
    def mean_batch_lanes(self) -> float:
        return self.n_requests / self.batches if self.batches else 0.0

    def format_summary(self) -> str:
        lines = [
            f"requests {self.n_requests}: {self.accepted} accepted, "
            f"{self.rejected} rejected, {self.claims_held} claims held, "
            f"{self.attest_failures} attestation failure(s)",
            f"batches {self.batches} (mean {self.mean_batch_lanes:.1f} "
            f"lanes): " + ", ".join(
                f"{cause} x{count}"
                for cause, count in sorted(self.flush_causes.items())),
        ]
        if self.waits:
            lines.append(
                f"virtual coalesce wait: p50 {percentile(self.waits, 0.5)*1e3:.3f} ms, "
                f"p99 {percentile(self.waits, 0.99)*1e3:.3f} ms")
        return "\n".join(lines)


def _transcript_record(sequence: int, arrival: float,
                       request: VerifyRequest, reply: VerifyReply,
                       flushed_at: float, cause: str) -> dict[str, Any]:
    record = reply.to_json_dict()
    record.update({
        "seq": sequence,
        "t_arrival": float(arrival),
        "t_served": float(flushed_at),
        "flush_cause": cause,
        "presented_id": request.presented_id,
        "epoch": int(request.epoch),
        "claimed_id": request.claimed_id,
    })
    return record


def _dump(document: dict[str, Any]) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def replay_scripted(
    db: EnrollmentDb,
    schedule: Sequence[tuple[float, VerifyRequest]],
    policy: CoalescePolicy | None = None,
    *,
    transcript_path: str | Path | None = None,
    engine: VerificationEngine | None = None,
) -> ReplaySummary:
    """Replay a schedule deterministically, in virtual time.

    Batches come from :func:`coalesce_schedule`; a
    :class:`~repro.service.clock.ManualClock` advances to each flush, so
    the replay never reads the host clock and two replays of the same
    ``(db, schedule, policy)`` triple produce byte-identical transcripts
    (and equal summaries).
    """
    if policy is None:
        policy = db.config.coalesce
    if engine is None:
        engine = VerificationEngine(db)
    clock = ManualClock()
    telemetry = _telemetry_active()
    summary = ReplaySummary()
    lines: list[str] = [_dump({
        "format": TRANSCRIPT_FORMAT,
        "master_seed": db.config.master_seed,
        "n_modules": db.n_modules,
        "n_requests": len(schedule),
        "policy": {"max_lanes": policy.max_lanes,
                   "max_wait_s": policy.max_wait_s},
    })]
    sequence = 0
    for batch in coalesce_schedule(schedule, policy):
        clock.advance_to(batch.flushed_at)
        replies = engine.execute([request for _, request in batch.arrivals],
                                 batch.index)
        summary.batches += 1
        summary.flush_causes[batch.cause] = (
            summary.flush_causes.get(batch.cause, 0) + 1)
        if telemetry is not None:
            telemetry.count("service.batches")
            telemetry.count("service.lanes", batch.lanes)
            telemetry.count(f"service.flush.{batch.cause}")
        for (arrival, request), reply in zip(batch.arrivals, replies):
            wait = clock.now() - arrival
            summary.n_requests += 1
            summary.accepted += int(reply.accepted)
            summary.rejected += int(not reply.accepted)
            summary.claims_held += int(bool(reply.claim_ok))
            summary.attest_failures += int(reply.attested is False)
            summary.waits.append(wait)
            if telemetry is not None:
                telemetry.observe("service.wait_s", wait,
                                  bounds=LATENCY_BUCKET_BOUNDS)
            lines.append(_dump(_transcript_record(
                sequence, arrival, request, reply, batch.flushed_at,
                batch.cause)))
            sequence += 1
    lines.append(_dump({"records": sequence, "batches": summary.batches}))
    if transcript_path is not None:
        path = Path(transcript_path)
        path.write_text("\n".join(lines) + "\n")
        summary.transcript_path = path
    return summary


async def drive_open_loop(
    batcher: RequestBatcher,
    schedule: Sequence[tuple[float, VerifyRequest]],
    *,
    pace: bool = True,
) -> list[VerifyReply]:
    """Submit a schedule against a live batcher; replies in request order.

    Open-loop means submission times ignore completions: with ``pace``
    the driver sleeps out each virtual inter-arrival gap (so the
    schedule's rate is imposed in real time); without it, requests fire
    back-to-back for a max-throughput run.
    """
    tasks: list[asyncio.Task[VerifyReply]] = []
    previous = 0.0
    for timestamp, request in schedule:
        if pace:
            gap = timestamp - previous
            previous = timestamp
            if gap > 0:
                await asyncio.sleep(gap)
        tasks.append(asyncio.ensure_future(batcher.submit(request)))
    return list(await asyncio.gather(*tasks))
