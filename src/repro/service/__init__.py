"""PUF-authentication-as-a-service over the device-batched engine.

The serving layer turns the paper's Section VI PUF into a product: a
simulated fleet of DRAM modules is enrolled into a persistent database
of golden responses, and a long-lived service answers challenge–
response verification requests, coalescing concurrent traffic into
fused passes on the device-batched engine.  See ``docs/service.md``.
"""

from .batcher import (CoalescedBatch, RequestBatcher, VerificationEngine,
                      VerifyReply, VerifyRequest, coalesce_schedule)
from .clock import Clock, ManualClock, SystemClock
from .config import (CoalescePolicy, ServiceConfig, frac_capable_groups,
                     module_id, parse_module_id)
from .enrollment import EnrollmentDb, EnrollmentStore, build_enrollment
from .server import PufAuthService, parse_request_line
from .workload import (ReplaySummary, WorkloadSpec, drive_open_loop,
                       generate_schedule, percentile, replay_scripted)

__all__ = [
    "Clock",
    "CoalescePolicy",
    "CoalescedBatch",
    "EnrollmentDb",
    "EnrollmentStore",
    "ManualClock",
    "PufAuthService",
    "ReplaySummary",
    "RequestBatcher",
    "ServiceConfig",
    "SystemClock",
    "VerificationEngine",
    "VerifyReply",
    "VerifyRequest",
    "WorkloadSpec",
    "build_enrollment",
    "coalesce_schedule",
    "drive_open_loop",
    "frac_capable_groups",
    "generate_schedule",
    "module_id",
    "parse_module_id",
    "parse_request_line",
    "percentile",
    "replay_scripted",
]
