"""PUF-authentication-as-a-service: in-process API + TCP transport.

:class:`PufAuthService` is the long-lived serving object ROADMAP item 1
asks for: it owns an enrollment database, a verification engine, and a
request coalescer, and exposes

* an **in-process async API** — ``await service.verify(request)`` from
  any task; concurrent callers are coalesced into fused device-batched
  engine passes, and

* an optional **JSON-lines TCP transport** — one request object per
  line, one reply object per line, ids echoed so clients may pipeline.
  The off-chip-memory-as-async-endpoint idiom (assassyn, PAPERS.md):
  a verification is a request/response exchange, never a blocking call
  into the simulator.

Requests are validated *before* they reach the batcher, so a malformed
or Frac-incapable module spec is refused immediately and can never
poison the batch it would have shared.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from ..dram.vendor import GROUPS
from ..errors import ConfigurationError
from ..telemetry.registry import active as _telemetry_active
from .batcher import RequestBatcher, VerificationEngine, VerifyReply, VerifyRequest
from .clock import Clock
from .config import CoalescePolicy, parse_module_id
from .enrollment import EnrollmentDb

__all__ = ["PufAuthService", "parse_request_line"]


def parse_request_line(line: str) -> VerifyRequest:
    """Decode one JSON-lines transport request.

    Accepts either a canonical ``"module": "<group>-<serial>"`` id or
    explicit ``"group"``/``"serial"`` fields, plus optional ``"epoch"``
    and ``"claim"``.  Raises :class:`ConfigurationError` on malformed
    input — the transport turns that into an error reply.
    """
    try:
        document = json.loads(line)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"malformed JSON request: {error}") from None
    if not isinstance(document, dict):
        raise ConfigurationError("request must be a JSON object")
    if "module" in document:
        group_id, serial = parse_module_id(str(document["module"]))
    else:
        try:
            group_id = str(document["group"])
            serial = int(document["serial"])
        except (KeyError, TypeError, ValueError):
            raise ConfigurationError(
                "request needs 'module' or 'group'+'serial'") from None
    claim = document.get("claim")
    return VerifyRequest(
        request_id=str(document.get("id", "")),
        group_id=group_id,
        serial=serial,
        epoch=int(document.get("epoch", 1)),
        claimed_id=None if claim is None else str(claim))


class PufAuthService:
    """Long-lived authentication service over an enrolled fleet."""

    def __init__(self, db: EnrollmentDb, *,
                 policy: CoalescePolicy | None = None,
                 clock: Clock | None = None,
                 backend: str | None = None) -> None:
        self.db = db
        self.engine = VerificationEngine(db, backend=backend)
        self.batcher = RequestBatcher(
            self.engine, policy or db.config.coalesce, clock)
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task[None]] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await self.batcher.start()

    async def stop(self) -> None:
        """Stop the transport (if any), drain the batcher, shut down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for connection in list(self._connections):
            connection.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        await self.batcher.stop()

    # ------------------------------------------------------------------
    # in-process API
    # ------------------------------------------------------------------

    def validate(self, request: VerifyRequest) -> None:
        """Refuse requests the engine could not serve.

        Validation happens before coalescing so one bad request cannot
        take down the fused pass its batch-mates ride on.
        """
        profile = GROUPS.get(request.group_id)
        if profile is None:
            raise ConfigurationError(
                f"unknown vendor group {request.group_id!r}")
        if profile.decoder.enforces_command_spacing:
            raise ConfigurationError(
                f"group {request.group_id!r} drops out-of-spec commands; "
                f"its modules cannot host a Frac PUF (Table I)")

    async def verify(self, request: VerifyRequest) -> VerifyReply:
        """Authenticate one presented module (coalesced under load)."""
        self.validate(request)
        return await self.batcher.submit(request)

    # ------------------------------------------------------------------
    # JSON-lines TCP transport
    # ------------------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> tuple[str, int]:
        """Start the transport; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise ConfigurationError("transport already serving")
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        bound = self._server.sockets[0].getsockname()
        return str(bound[0]), int(bound[1])

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        write_lock = asyncio.Lock()
        in_flight: set[asyncio.Task[None]] = set()

        async def serve_line(line: str) -> None:
            reply = await self._reply_for_line(line)
            async with write_lock:
                writer.write((json.dumps(reply, sort_keys=True) + "\n")
                             .encode())
                await writer.drain()

        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode().strip()
                if not line:
                    continue
                # One task per line: a pipelined client's requests
                # coalesce into shared batches instead of serializing.
                line_task = asyncio.ensure_future(serve_line(line))
                in_flight.add(line_task)
                line_task.add_done_callback(in_flight.discard)
            if in_flight:
                await asyncio.gather(*in_flight, return_exceptions=True)
        except asyncio.CancelledError:
            for line_task in list(in_flight):
                line_task.cancel()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
            if task is not None:
                self._connections.discard(task)

    async def _reply_for_line(self, line: str) -> dict[str, Any]:
        telemetry = _telemetry_active()
        try:
            request = parse_request_line(line)
            reply = await self.verify(request)
        except ConfigurationError as error:
            if telemetry is not None:
                telemetry.count("service.transport_errors")
            return {"error": str(error)}
        document = reply.to_json_dict()
        document["id"] = request.request_id
        return document
