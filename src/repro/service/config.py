"""Shared configuration for the PUF-authentication service.

A :class:`ServiceConfig` pins everything a served fleet's behaviour is a
function of: the per-module geometry, the private challenge set, the
Frac depth, the acceptance threshold, and the coalescing policy.  Two
services built from equal configs (and the same ``master_seed``) enroll
byte-identical golden responses and make identical decisions — the
property the enrollment store's content-addressed keys and the scripted
transcript diffs rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.parameters import GeometryParams
from ..dram.vendor import GROUPS
from ..errors import ConfigurationError
from ..puf.auth import DEFAULT_THRESHOLD
from ..puf.frac_puf import PUF_N_FRAC, Challenge

__all__ = [
    "CoalescePolicy",
    "ServiceConfig",
    "frac_capable_groups",
    "module_id",
    "parse_module_id",
]


def frac_capable_groups() -> tuple[str, ...]:
    """Vendor groups a Frac PUF can be built on (Table I), sorted."""
    return tuple(sorted(
        group_id for group_id, profile in GROUPS.items()
        if not profile.decoder.enforces_command_spacing))


def module_id(group_id: str, serial: int) -> str:
    """Canonical enrolled identity: ``<group>-<serial:05d>``."""
    return f"{group_id}-{serial:05d}"


def parse_module_id(identity: str) -> tuple[str, int]:
    """Inverse of :func:`module_id`."""
    group_id, _, serial = identity.rpartition("-")
    if not group_id or not serial.isdigit():
        raise ConfigurationError(f"malformed module id {identity!r}")
    return group_id, int(serial)


@dataclass(frozen=True)
class CoalescePolicy:
    """When the request batcher closes a coalesced batch.

    A batch opens when a request arrives at an empty queue and closes —
    flushing onto the device-batched engine — when it holds
    ``max_lanes`` requests (a *capacity* flush) or when ``max_wait_s``
    seconds have passed since the batch opened (a *window* flush),
    whichever comes first.  An arrival stamped at or after the window
    deadline flushes the open batch before joining a new one.
    """

    max_lanes: int = 32
    max_wait_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_lanes < 1:
            raise ConfigurationError("max_lanes must be >= 1")
        if self.max_wait_s < 0:
            raise ConfigurationError("max_wait_s must be >= 0")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one PUF-authentication deployment."""

    master_seed: int = 2022
    #: Per-module geometry: one bank/sub-array keeps fabrication cheap
    #: enough to enroll 10k+ simulated modules; ``columns`` is the
    #: response width in bits.
    columns: int = 64
    rows_per_subarray: int = 16
    subarrays_per_bank: int = 1
    n_banks: int = 1
    #: Size of the private challenge set each module answers.
    n_challenges: int = 2
    n_frac: int = PUF_N_FRAC
    threshold: float = DEFAULT_THRESHOLD
    #: Vendor groups the enrolled fleet cycles through.
    groups: tuple[str, ...] = field(default_factory=frac_capable_groups)
    #: Run the MAJ3 fractional-value attestation (Section IV-B2) on
    #: every served batch; reported per request, never part of the
    #: accept/reject decision (which stays pure Authenticator matching).
    #: Only lanes of three-row-capable groups (Table I: B) attest —
    #: other groups report ``attested=None``.
    attest_maj3: bool = True
    #: Minimum verified fraction for a lane to count as attested.
    maj3_floor: float = 0.5
    #: Cohort width for enrollment passes over the batched engine.
    enroll_batch: int = 128
    coalesce: CoalescePolicy = field(default_factory=CoalescePolicy)

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("need at least one vendor group")
        capable = set(frac_capable_groups())
        bad = sorted(set(self.groups) - capable)
        if bad:
            raise ConfigurationError(
                f"groups {bad} drop out-of-spec commands; a Frac PUF "
                f"service cannot enroll them (Table I)")
        if self.n_challenges < 1:
            raise ConfigurationError("n_challenges must be >= 1")
        if not 0.0 < self.threshold < 0.5:
            raise ConfigurationError("threshold must be in (0, 0.5)")
        if self.enroll_batch < 1:
            raise ConfigurationError("enroll_batch must be >= 1")
        if len(self.challenges()) < self.n_challenges:
            raise ConfigurationError(
                f"geometry provides only {len(self.challenges())} "
                f"challenge rows, need {self.n_challenges}")

    def geometry(self) -> GeometryParams:
        return GeometryParams(
            n_banks=self.n_banks,
            subarrays_per_bank=self.subarrays_per_bank,
            rows_per_subarray=self.rows_per_subarray,
            columns=self.columns,
        )

    def challenges(self) -> list[Challenge]:
        """The deployment's private challenge set.

        Challenges sweep banks/rows in address order, skipping each
        sub-array's reserved all-ones initialization row — the same
        layout the Figure 11 HD studies use.
        """
        geometry = self.geometry()
        picked: list[Challenge] = []
        for bank in range(geometry.n_banks):
            for row in range(geometry.rows_per_bank):
                if (row + 1) % geometry.rows_per_subarray == 0:
                    continue  # reserved all-ones row
                picked.append(Challenge(bank, row))
        return picked[:self.n_challenges]

    def fleet_specs(self, n_modules: int) -> list[tuple[str, int]]:
        """``(group_id, serial)`` for each of ``n_modules`` modules.

        Modules cycle through the configured vendor groups round-robin,
        so a fleet of any size mixes vendors the way the paper's 582
        tested chips did.
        """
        if n_modules < 1:
            raise ConfigurationError("fleet needs at least one module")
        n_groups = len(self.groups)
        return [(self.groups[index % n_groups], index // n_groups)
                for index in range(n_modules)]
