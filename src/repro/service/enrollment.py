"""Persistent enrollment database of golden PUF responses.

Enrollment is the service's write path: every module of the simulated
fleet answers the deployment's private challenge set once at noise
epoch 0, and the stacked responses become the golden references the
read path matches probes against.  The whole fleet is enrolled as
cohorts of :meth:`~repro.dram.batched.BatchedChip.from_fleet` lanes, so
a 10k-module enrollment is a few hundred fused engine passes instead of
10k scalar ones — and each lane is byte-identical to the scalar
``FracPuf`` enrollment of that module.

Because a golden response is a pure function of ``(package version,
service config, fleet size)``, the on-disk :class:`EnrollmentStore` is
content-addressed exactly like the fleet result cache
(:mod:`repro.fleet.cache`): a BLAKE2b digest of those inputs names the
entry, corrupt entries read as misses and are rebuilt, and writes go
through an atomic same-directory replace.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path

import numpy as np

from ..dram.batched import BatchedChip
from ..errors import ConfigurationError, InsufficientDataError
from ..fleet.cache import config_fingerprint, default_cache_dir
from ..puf.auth import Authenticator
from ..puf.batched_puf import BatchedFracPuf
from ..telemetry.registry import active as _telemetry_active
from .config import ServiceConfig, module_id

__all__ = ["EnrollmentDb", "EnrollmentStore", "build_enrollment"]

_DIGEST_CHARS = 24  # 96 bits in the entry name, matching the fleet cache


class EnrollmentDb:
    """Golden responses for an enrolled fleet, stacked for matching."""

    def __init__(self, config: ServiceConfig,
                 specs: list[tuple[str, int]],
                 references: np.ndarray) -> None:
        references = np.asarray(references, dtype=bool)
        if references.ndim != 3 or references.shape[0] != len(specs):
            raise ConfigurationError(
                f"references must be (n_modules, n_challenges, bits), got "
                f"shape {references.shape} for {len(specs)} modules")
        self.config = config
        self.specs = [(str(group), int(serial)) for group, serial in specs]
        self.references = references
        self.ids = tuple(module_id(group, serial)
                         for group, serial in self.specs)
        self._index = {identity: index
                       for index, identity in enumerate(self.ids)}

    @property
    def n_modules(self) -> int:
        return len(self.specs)

    def index_of(self, identity: str) -> int:
        try:
            return self._index[identity]
        except KeyError:
            raise InsufficientDataError(
                f"module {identity!r} is not enrolled") from None

    def identity(self, index: int) -> str:
        return self.ids[index]

    def authenticator(self) -> Authenticator:
        """A scalar :class:`Authenticator` twin of this database.

        The service's batched matching and the scalar authenticator are
        built from the same reference rows, so their decisions are
        identical — the equivalence the service tests and benchmark
        assert.
        """
        auth = Authenticator(self.config.challenges(),
                             threshold=self.config.threshold)
        for identity, reference in zip(self.ids, self.references):
            auth.enroll_response(identity, reference)
        return auth


def build_enrollment(config: ServiceConfig, n_modules: int) -> EnrollmentDb:
    """Enroll ``n_modules`` simulated modules at noise epoch 0.

    Runs in ``enroll_batch``-wide cohorts on the device-batched engine;
    lane ``i`` of each cohort produces the same bytes the scalar
    ``FracPuf(make_chip(...)).evaluate_many`` enrollment would.
    """
    specs = config.fleet_specs(n_modules)
    challenges = config.challenges()
    geometry = config.geometry()
    telemetry = _telemetry_active()
    blocks: list[np.ndarray] = []
    for start in range(0, len(specs), config.enroll_batch):
        cohort = specs[start:start + config.enroll_batch]
        device = BatchedChip.from_fleet(
            cohort, geometry=geometry, master_seed=config.master_seed,
            epochs=[0] * len(cohort))
        puf = BatchedFracPuf(device, n_frac=config.n_frac)
        blocks.append(puf.evaluate_many(challenges))
        if telemetry is not None:
            telemetry.count("service.enroll.batches")
            telemetry.count("service.enroll.modules", len(cohort))
    return EnrollmentDb(config, specs, np.concatenate(blocks, axis=0))


class EnrollmentStore:
    """Content-addressed on-disk store for :class:`EnrollmentDb` entries.

    Entries are ``enroll-<digest>.npz`` (the reference matrix) with a
    ``.json`` sidecar holding human-readable metadata.  The digest
    covers the package version, the canonical config fingerprint and the
    fleet size, so a simulator upgrade or any config change misses and
    rebuilds.  Damaged entries are treated as misses — the store is an
    accelerator, never a source of truth.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = (Path(directory) if directory
                          else default_cache_dir() / "enrollments")
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @staticmethod
    def key(config: ServiceConfig, n_modules: int) -> str:
        from .. import __version__

        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(str(__version__).encode())
        hasher.update(b"\0")
        hasher.update(config_fingerprint(
            config, {"n_modules": int(n_modules)}).encode())
        return f"enroll-{hasher.hexdigest()[:_DIGEST_CHARS]}"

    def _entry(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def _meta(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def fetch(self, config: ServiceConfig,
              n_modules: int) -> EnrollmentDb | None:
        """The stored database, or ``None`` on a miss/damaged entry."""
        key = self.key(config, n_modules)
        try:
            with np.load(self._entry(key)) as archive:
                references = archive["references"]
            db = EnrollmentDb(config, config.fleet_specs(n_modules),
                              references)
        except (OSError, KeyError, ValueError, ConfigurationError):
            self.misses += 1
            return None
        if db.references.shape[1:] != (config.n_challenges, config.columns):
            self.misses += 1  # stale entry from a different layout
            return None
        self.hits += 1
        telemetry = _telemetry_active()
        if telemetry is not None:
            telemetry.count("service.enroll.store_hits")
        return db

    def store(self, db: EnrollmentDb) -> Path:
        """Persist ``db``; returns the entry path."""
        key = self.key(db.config, db.n_modules)
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._entry(key)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, references=db.references)
        temporary = path.with_suffix(".npz.tmp")
        temporary.write_bytes(buffer.getvalue())
        temporary.replace(path)  # atomic within a directory
        sidecar = {
            "key": key,
            "n_modules": db.n_modules,
            "n_challenges": int(db.references.shape[1]),
            "response_bits": int(db.references.shape[2]),
            "groups": sorted({group for group, _ in db.specs}),
        }
        self._meta(key).write_text(
            json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
        self.stores += 1
        return path

    def load_or_build(self, config: ServiceConfig,
                      n_modules: int) -> EnrollmentDb:
        """Fetch the enrollment, building and persisting it on a miss."""
        db = self.fetch(config, n_modules)
        if db is not None:
            return db
        db = build_enrollment(config, n_modules)
        self.store(db)
        return db

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EnrollmentStore({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")
