"""Injectable time source for the serving layer.

Every timing decision in :mod:`repro.service` — coalesce-window expiry,
arrival stamps, latency measurements — goes through a :class:`Clock`
instance instead of reading :mod:`time` directly.  That split is what
makes the scripted serving mode byte-deterministic:

* :class:`SystemClock` is the *real-time path*: the asyncio server and
  the live benchmarks run on it.  This module is the only place in
  ``repro.service`` allowed to read the host clock, and it is listed on
  the ``repro lint`` DET002 allowlist explicitly (see
  ``docs/linting.md``) — the rest of the package must stay clock-free
  so the deterministic replay contract is checkable statically.

* :class:`ManualClock` is the deterministic path: time only moves when
  the driver advances it.  The scripted replay in
  :mod:`repro.service.workload` drives it from the seeded virtual
  arrival times, so two replays of the same trace see identical clocks
  and produce byte-identical transcripts.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "ManualClock", "SystemClock"]


class Clock(Protocol):
    """Minimal time source: a monotonic ``now()`` in seconds."""

    def now(self) -> float:  # pragma: no cover - protocol signature
        ...


class SystemClock:
    """Host monotonic clock — the service's real-time path."""

    def now(self) -> float:
        return time.perf_counter()


class ManualClock:
    """A clock that only moves when told to.

    ``advance`` refuses to move backwards: the serving layer assumes a
    monotonic time base, and a scripted trace with out-of-order stamps
    is a driver bug worth failing loudly on.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta_s: float) -> float:
        """Move time forward by ``delta_s`` seconds; returns the new now."""
        if delta_s < 0:
            raise ValueError(f"cannot advance by {delta_s} (< 0) seconds")
        self._now += float(delta_s)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot rewind the clock from {self._now} to {timestamp}")
        self._now = float(timestamp)
        return self._now
