"""Request coalescing onto the device-batched verification engine.

The serving read path has two halves:

* :class:`VerificationEngine` — executes one coalesced batch as fused
  device-batched passes: every request's module becomes a lane of one
  :meth:`~repro.dram.batched.BatchedChip.from_fleet` cohort (fabricated
  at the request's noise epoch), the whole cohort answers the private
  challenge set in one :class:`~repro.puf.batched_puf.BatchedFracPuf`
  pass, optional per-vendor-group MAJ3 attestation sub-passes run via
  :func:`~repro.core.verify.batched_verify_frac_by_maj3` on lane
  subsets, and each lane's probe is matched against the enrollment
  matrix with the same :func:`~repro.puf.auth.match_probe` the scalar
  :class:`~repro.puf.auth.Authenticator` uses.  A request's reply is
  therefore independent of which other requests shared its batch — the
  batched engine's byte-identity contract, surfaced as a serving
  guarantee.

* :class:`RequestBatcher` — the asyncio coalescer: concurrent
  ``submit`` calls queue; a batch opens at the first queued request and
  flushes on capacity (``max_lanes``) or window expiry (``max_wait_s``),
  per :class:`~repro.service.config.CoalescePolicy`.  While a batch
  computes, new arrivals keep queueing, so sustained load coalesces
  adaptively.  All timing goes through the injected
  :class:`~repro.service.clock.Clock`.

:func:`coalesce_schedule` is the policy's deterministic twin: it folds
a virtual-time arrival schedule into the exact batches the live
coalescer would form, and drives the scripted replay mode
(:mod:`repro.service.workload`).

Telemetry: decision counters (``service.requests``, ``service.accepted``,
``service.rejected``, ``service.attest_failed``) are deterministic —
replies do not depend on batch composition.  Coalescing-shape counters
(``service.batches``, ``service.flush.*``, ``service.lanes``) are
deterministic under scripted replay but reflect real arrival timing
under the live clock.  Latency only ever enters the wall-clock-exempt
histogram channels (``service.wait_s``, ``service.latency_s``).
"""

from __future__ import annotations

import asyncio
import functools
from collections import deque
from dataclasses import dataclass
from typing import Any, Sequence

from ..core.ops import FracDram, MultiRowPlan
from ..core.verify import batched_verify_frac_by_maj3
from ..dram.batched import BatchedChip
from ..dram.chip import DramChip
from ..dram.vendor import GROUPS
from ..errors import ConfigurationError
from ..puf.auth import match_probe
from ..puf.batched_puf import BatchedFracPuf
from ..telemetry.registry import active as _telemetry_active
from .clock import Clock, SystemClock
from .config import CoalescePolicy, ServiceConfig, module_id
from .enrollment import EnrollmentDb

__all__ = [
    "CoalescedBatch",
    "RequestBatcher",
    "VerificationEngine",
    "VerifyReply",
    "VerifyRequest",
    "coalesce_schedule",
]

#: Histogram bounds for sub-second serving latencies.
LATENCY_BUCKET_BOUNDS: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0)


@dataclass(frozen=True)
class VerifyRequest:
    """One challenge–response verification request.

    The requester presents a physical module (``group_id``, ``serial``)
    measured at noise epoch ``epoch`` — enrollment used epoch 0, so a
    genuine re-measurement arrives at a later epoch.  ``claimed_id`` is
    the optional identity the requester asserts; the service always
    *identifies* (best enrolled match, Authenticator semantics) and
    additionally reports whether the claim held.
    """

    request_id: str
    group_id: str
    serial: int
    epoch: int = 1
    claimed_id: str | None = None

    def __post_init__(self) -> None:
        if self.serial < 0:
            raise ConfigurationError("serial must be >= 0")
        if self.epoch < 0:
            raise ConfigurationError("epoch must be >= 0")

    @property
    def presented_id(self) -> str:
        """Identity of the silicon actually presented."""
        return module_id(self.group_id, self.serial)


@dataclass(frozen=True)
class VerifyReply:
    """Outcome of one verification request."""

    request_id: str
    accepted: bool
    device_id: str | None
    mean_distance: float
    #: Whether the identified device matches ``claimed_id`` (None when
    #: the request made no claim).
    claim_ok: bool | None
    #: MAJ3 fractional-value attestation (None when disabled): the
    #: fraction of columns proving a genuine fractional value, and
    #: whether it cleared the configured floor.
    frac_fraction: float | None
    attested: bool | None
    #: Serving batch this request was coalesced into.
    batch_index: int
    batch_lanes: int

    def to_json_dict(self) -> dict[str, Any]:
        """A JSON-safe rendering (stable key set, plain types)."""
        return {
            "request_id": self.request_id,
            "accepted": bool(self.accepted),
            "device_id": self.device_id,
            "mean_distance": float(self.mean_distance),
            "claim_ok": self.claim_ok,
            "frac_fraction": self.frac_fraction,
            "attested": self.attested,
            "batch_index": int(self.batch_index),
            "batch_lanes": int(self.batch_lanes),
        }


class VerificationEngine:
    """Executes coalesced request batches as fused engine passes.

    ``backend`` picks the device engine a batch rides on: ``"fused"``
    (default) evaluates the challenge set through
    :class:`~repro.xir.FusedFracPuf`, ``"batched"`` keeps the plain
    :class:`~repro.puf.batched_puf.BatchedFracPuf`.  Replies are
    byte-identical either way (the fused path's conformance contract);
    the knob exists for fallback and for benchmarking the delta.
    """

    def __init__(self, db: EnrollmentDb, *,
                 backend: str | None = None) -> None:
        backend = "fused" if backend is None else backend
        if backend not in ("fused", "batched"):
            raise ConfigurationError(
                f"unknown service backend {backend!r} "
                "(expected 'fused' or 'batched')")
        self.db = db
        self.backend = backend
        self.config: ServiceConfig = db.config
        self._challenges = self.config.challenges()
        self._geometry = self.config.geometry()
        self._plans: dict[str, MultiRowPlan] = {}

    def _attestation_plan(self, group_id: str) -> MultiRowPlan:
        """The group's MAJ3 triple plan (bank 0, sub-array 0).

        Plans depend only on the vendor decoder profile, the row map and
        the geometry — none of which vary with the serial — so one
        scalar donor per group serves every lane of that group.
        """
        plan = self._plans.get(group_id)
        if plan is None:
            donor = FracDram(DramChip(
                group_id, geometry=self._geometry, serial=0,
                master_seed=self.config.master_seed))
            plan = donor.triple_plan(0, 0)
            self._plans[group_id] = plan
        return plan

    def execute(self, requests: Sequence[VerifyRequest],
                batch_index: int = 0) -> list[VerifyReply]:
        """Serve one batch; reply ``i`` answers request ``i``.

        Each lane's response bits — and therefore its reply — equal what
        a dedicated scalar pass over that module would produce: batching
        only changes throughput, never decisions.
        """
        if not requests:
            return []
        config = self.config
        telemetry = _telemetry_active()
        specs = [(request.group_id, request.serial) for request in requests]
        epochs = [request.epoch for request in requests]
        device = BatchedChip.from_fleet(
            specs, geometry=self._geometry, master_seed=config.master_seed,
            epochs=epochs)
        if self.backend == "fused":
            from ..xir import FusedFracPuf
            puf = FusedFracPuf(device, n_frac=config.n_frac)
        else:
            puf = BatchedFracPuf(device, n_frac=config.n_frac)
        probes = puf.evaluate_many(self._challenges)

        fractions: list[float | None] = [None] * len(requests)
        if config.attest_maj3:
            # Attestation runs *after* the response reads, so it cannot
            # perturb decisions; groups resolve different multi-row
            # plans, so a mixed cohort attests in per-group sub-passes.
            # MAJ3 needs three-row activation, which only a subset of
            # Frac-capable groups supports (Table I: group B) — lanes of
            # other groups stay un-attested rather than failing.
            by_group: dict[str, list[int]] = {}
            for lane, request in enumerate(requests):
                if GROUPS[request.group_id].decoder.supports_three_row:
                    by_group.setdefault(request.group_id, []).append(lane)
            for group_id in sorted(by_group):
                lanes = by_group[group_id]
                results = batched_verify_frac_by_maj3(
                    puf.bfd, self._attestation_plan(group_id),
                    n_frac=1, lanes=lanes)
                for lane, result in zip(lanes, results):
                    fractions[lane] = result.verified_fraction

        replies: list[VerifyReply] = []
        references = self.db.references
        for lane, request in enumerate(requests):
            index, distance = match_probe(references, probes[lane])
            accepted = distance <= config.threshold
            device_id = self.db.identity(index) if accepted else None
            claim_ok = (None if request.claimed_id is None
                        else device_id == request.claimed_id)
            fraction = fractions[lane]
            attested = (None if fraction is None
                        else fraction >= config.maj3_floor)
            replies.append(VerifyReply(
                request_id=request.request_id,
                accepted=accepted,
                device_id=device_id,
                mean_distance=distance,
                claim_ok=claim_ok,
                frac_fraction=fraction,
                attested=attested,
                batch_index=batch_index,
                batch_lanes=len(requests)))

        if telemetry is not None:
            telemetry.count("service.requests", len(replies))
            accepted_n = sum(1 for reply in replies if reply.accepted)
            telemetry.count("service.accepted", accepted_n)
            telemetry.count("service.rejected", len(replies) - accepted_n)
            telemetry.count("service.attest_failed",
                            sum(1 for reply in replies
                                if reply.attested is False))
        return replies


# ----------------------------------------------------------------------
# deterministic coalescing (scripted replay)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CoalescedBatch:
    """One batch the coalescing policy would form from a schedule."""

    index: int
    opened_at: float
    flushed_at: float
    cause: str  # "capacity" | "window" | "drain"
    arrivals: tuple[tuple[float, VerifyRequest], ...]

    @property
    def lanes(self) -> int:
        return len(self.arrivals)


def coalesce_schedule(
    schedule: Sequence[tuple[float, VerifyRequest]],
    policy: CoalescePolicy,
) -> list[CoalescedBatch]:
    """Fold a virtual-time arrival schedule into coalesced batches.

    This is the pure, deterministic statement of the live coalescer's
    policy: a batch opens at its first arrival and flushes when it holds
    ``max_lanes`` requests (at the filling arrival's timestamp) or when
    an arrival lands at/after the window deadline (at the deadline).
    The final batch drains at its window deadline.  Identical schedules
    therefore fold into identical batches — the property the scripted
    transcript diffs pin.
    """
    batches: list[CoalescedBatch] = []
    pending: list[tuple[float, VerifyRequest]] = []

    def flush(flushed_at: float, cause: str) -> None:
        batches.append(CoalescedBatch(
            index=len(batches), opened_at=pending[0][0],
            flushed_at=flushed_at, cause=cause, arrivals=tuple(pending)))
        pending.clear()

    previous = float("-inf")
    for timestamp, request in schedule:
        if timestamp < previous:
            raise ConfigurationError(
                f"schedule timestamps must be nondecreasing "
                f"({timestamp} after {previous})")
        previous = timestamp
        if pending and timestamp >= pending[0][0] + policy.max_wait_s:
            flush(pending[0][0] + policy.max_wait_s, "window")
        pending.append((timestamp, request))
        if len(pending) >= policy.max_lanes:
            flush(timestamp, "capacity")
    if pending:
        flush(pending[0][0] + policy.max_wait_s, "drain")
    return batches


# ----------------------------------------------------------------------
# live coalescing (asyncio)
# ----------------------------------------------------------------------

class RequestBatcher:
    """Asyncio request coalescer over a :class:`VerificationEngine`.

    Concurrent ``submit`` awaiters share fused engine passes.  Batches
    execute in the event loop's default executor, so arrivals keep
    queueing (and coalescing) while a batch computes.
    """

    def __init__(self, engine: VerificationEngine,
                 policy: CoalescePolicy | None = None,
                 clock: Clock | None = None,
                 record_latencies: bool = True) -> None:
        self.engine = engine
        self.policy = policy or engine.config.coalesce
        self.clock = clock or SystemClock()
        #: Per-request completion latencies (seconds), in completion
        #: order — the benchmark's p50/p99 source.  Never serialized
        #: into transcripts.
        self.latencies: list[float] = []
        self._record = record_latencies
        self._pending: deque[
            tuple[float, VerifyRequest, asyncio.Future[VerifyReply]]]
        self._pending = deque()
        self._wakeup: asyncio.Event | None = None
        self._task: asyncio.Task[None] | None = None
        self._closing = False
        self._batch_index = 0

    @property
    def batches_served(self) -> int:
        return self._batch_index

    async def start(self) -> None:
        if self._task is not None:
            raise ConfigurationError("batcher already started")
        self._closing = False
        self._wakeup = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain pending requests, then stop the flush loop."""
        if self._task is None:
            return
        self._closing = True
        assert self._wakeup is not None
        self._wakeup.set()
        await self._task
        self._task = None
        self._wakeup = None

    async def submit(self, request: VerifyRequest) -> VerifyReply:
        """Queue a request; resolves when its batch has been served."""
        if self._task is None or self._closing:
            raise ConfigurationError("batcher is not running")
        assert self._wakeup is not None
        loop = asyncio.get_running_loop()
        future: asyncio.Future[VerifyReply] = loop.create_future()
        self._pending.append((self.clock.now(), request, future))
        self._wakeup.set()
        return await future

    async def _run(self) -> None:
        assert self._wakeup is not None
        loop = asyncio.get_running_loop()
        telemetry = _telemetry_active()
        while True:
            if not self._pending:
                if self._closing:
                    return
                self._wakeup.clear()
                # Re-check after clear: an arrival (or stop) may have
                # slipped in between the emptiness test and the clear.
                if not self._pending and not self._closing:
                    await self._wakeup.wait()
                continue
            opened_at = self._pending[0][0]
            deadline = opened_at + self.policy.max_wait_s
            while (len(self._pending) < self.policy.max_lanes
                   and not self._closing):
                remaining = deadline - self.clock.now()
                if remaining <= 0:
                    break
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(),
                                           timeout=remaining)
                except asyncio.TimeoutError:
                    break
            if len(self._pending) >= self.policy.max_lanes:
                cause = "capacity"
            elif self.clock.now() >= deadline:
                cause = "window"
            else:
                cause = "drain"
            taken = [self._pending.popleft()
                     for _ in range(min(self.policy.max_lanes,
                                        len(self._pending)))]
            batch_started = self.clock.now()
            if telemetry is not None:
                telemetry.count("service.batches")
                telemetry.count("service.lanes", len(taken))
                telemetry.count(f"service.flush.{cause}")
                for arrival, _, _ in taken:
                    telemetry.observe("service.wait_s",
                                      batch_started - arrival,
                                      bounds=LATENCY_BUCKET_BOUNDS)
            requests = [request for _, request, _ in taken]
            replies = await loop.run_in_executor(
                None, functools.partial(self.engine.execute, requests,
                                        self._batch_index))
            self._batch_index += 1
            completed = self.clock.now()
            for (arrival, _, future), reply in zip(taken, replies):
                latency = completed - arrival
                if self._record:
                    self.latencies.append(latency)
                if telemetry is not None:
                    telemetry.observe("service.latency_s", latency,
                                      bounds=LATENCY_BUCKET_BOUNDS)
                if not future.cancelled():
                    future.set_result(reply)
