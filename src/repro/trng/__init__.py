"""True random number generation from multi-row activation (QUAC-style)."""

from .quac import QuacTrng, TrngStats

__all__ = ["QuacTrng", "TrngStats"]
