"""QUAC-TRNG-style true random number generation (Olgun et al., ISCA'21).

FracDRAM's four-row activation is the same mechanism QUAC-TRNG uses for
high-throughput random numbers: initialize the four rows so every column
holds two ones and two zeros, fire the activation, and let the sense
amplifier resolve the near-Vdd/2 bit-line.  The resolution is decided by
per-trial analog noise (charge-injection jitter of the glitched rows) on
top of the column's fixed offset, so columns near the metastable point
emit fresh physical entropy on every activation while strongly offset
columns emit constant bits — which is why the raw stream must be whitened
(Von Neumann) before use, exactly as in the paper's PUF pipeline.

The paper cites QUAC-TRNG as evidence that four-row activation exists in
DDR4 too (Section VII); this module is the corresponding executable
extension on our simulated substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..controller.sequences import ROW_COPY_CYCLES
from ..core.ops import FracDram, MultiRowPlan
from ..dram.parameters import MEMORY_CYCLE_NS
from ..errors import ConfigurationError, UnsupportedOperationError

__all__ = ["QuacTrng", "TrngStats"]

#: QUAC's two-vs-two init: ones in R1/R4, zeros in R2/R3 (any balanced
#: split works; this one matches the "QUAC" — QUadruple ACtivation with
#: Complementary data — layout).
_ONES_POSITIONS = (0, 3)


@dataclass(frozen=True)
class TrngStats:
    """Throughput accounting for a generation run."""

    raw_bits: int
    whitened_bits: int
    bus_cycles: int

    @property
    def whitening_efficiency(self) -> float:
        return self.whitened_bits / self.raw_bits if self.raw_bits else 0.0

    @property
    def throughput_mbps(self) -> float:
        """Whitened megabits per second of modeled DRAM bus time."""
        seconds = self.bus_cycles * MEMORY_CYCLE_NS * 1e-9
        return self.whitened_bits / seconds / 1e6 if seconds else 0.0


class QuacTrng:
    """Random bit generator over one four-row-capable device."""

    def __init__(self, device, *, bank: int = 0, subarray: int = 0) -> None:
        self.fd = FracDram(device)
        if not self.fd.can_four_row:
            raise UnsupportedOperationError(
                f"group {self.fd.group.group_id} cannot open four rows; "
                "QUAC-style TRNG needs a four-row-capable device (B/C/D)")
        self.bank = bank
        self.plan: MultiRowPlan = self.fd.quad_plan(bank, subarray)
        self._reserved_prepared = False

    # ------------------------------------------------------------------

    def _reserved_rows(self) -> tuple[int, int]:
        """Reserved all-ones / all-zeros rows used for fast re-init copies."""
        rows_per_subarray = int(self.fd.device.geometry.rows_per_subarray)
        subarray = self.plan.opened[0] // rows_per_subarray
        base = subarray * rows_per_subarray
        ones_row = base + rows_per_subarray - 1
        zeros_row = base + rows_per_subarray - 2
        taken = set(self.plan.opened)
        if ones_row in taken or zeros_row in taken:
            raise ConfigurationError(
                "sub-array too small to reserve init rows beside the quad")
        return ones_row, zeros_row

    def _prepare_reserved(self) -> None:
        ones_row, zeros_row = self._reserved_rows()
        self.fd.fill_row(self.bank, ones_row, True)
        self.fd.fill_row(self.bank, zeros_row, False)
        self._reserved_prepared = True

    def _initialize_quad(self) -> None:
        """Re-arm the four rows with the two-vs-two pattern via copies."""
        if not self._reserved_prepared:
            self._prepare_reserved()
        ones_row, zeros_row = self._reserved_rows()
        for position, row in enumerate(self.plan.opened):
            source = ones_row if position in _ONES_POSITIONS else zeros_row
            self.fd.row_copy(self.bank, source, row)

    # ------------------------------------------------------------------

    def activate_once(self) -> np.ndarray:
        """One init + four-row activation; returns the raw column bits."""
        self._initialize_quad()
        self.fd.multi_row_activate(self.plan)
        return self.fd.read_row(self.bank, self.plan.opened[0])

    def generate_raw(self, n_activations: int) -> np.ndarray:
        """Concatenated raw bits from ``n_activations`` activations."""
        if n_activations < 1:
            raise ConfigurationError("n_activations must be >= 1")
        return np.concatenate(
            [self.activate_once() for _ in range(n_activations)])

    @staticmethod
    def _whiten_activation_pair(first: np.ndarray,
                                second: np.ndarray) -> np.ndarray:
        """Von Neumann across two activations of the *same* columns.

        A column's one-probability is fixed by its sense-amp offset, so
        adjacent columns are not identically distributed and column-wise
        Von Neumann leaves fixed per-pair biases in the stream.  Pairing a
        column with *itself* across two activations gives identically
        distributed, independent pair members: the extractor's output is
        then exactly unbiased, per column, regardless of its offset.
        """
        discordant = first != second
        return first[discordant].astype(np.uint8)

    def generate(self, n_bits: int, max_activations: int = 10_000,
                 ) -> tuple[np.ndarray, TrngStats]:
        """Whitened random bits plus throughput statistics.

        Raises :class:`ConfigurationError` if ``max_activations`` cannot
        supply ``n_bits`` (e.g. a pathologically offset-dominated device).
        """
        if n_bits < 1:
            raise ConfigurationError("n_bits must be >= 1")
        start_cycle = self.fd.mc.cycle
        raw_bits = 0
        whitened_chunks: list[np.ndarray] = []
        whitened_count = 0
        activations = 0
        while whitened_count < n_bits:
            if activations + 2 > max_activations:
                raise ConfigurationError(
                    f"could not gather {n_bits} whitened bits within "
                    f"{max_activations} activations (device too biased)")
            first = self.activate_once()
            second = self.activate_once()
            activations += 2
            raw_bits += first.size + second.size
            chunk = self._whiten_activation_pair(first, second)
            whitened_chunks.append(chunk)
            whitened_count += int(chunk.size)
        whitened = np.concatenate(whitened_chunks)
        stats = TrngStats(
            raw_bits=raw_bits,
            whitened_bits=int(whitened.size),
            bus_cycles=self.fd.mc.cycle - start_cycle,
        )
        return whitened[:n_bits], stats

    @property
    def cycles_per_activation(self) -> int:
        """Modeled bus cycles per raw-word generation (init + act + read)."""
        init = 4 * ROW_COPY_CYCLES
        activate = 13  # multi-row sequence duration
        read = 20
        return init + activate + read
