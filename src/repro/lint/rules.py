"""Rule framework for :mod:`repro.lint`: base class, registry, helpers.

A rule is a class with a unique ``code`` (``DET001``-style), a
one-line ``summary``, a ``rationale`` explaining *why* the pattern
threatens this repository's determinism/fork-safety contracts, and a
:meth:`Rule.check` generator that inspects one :class:`ModuleContext`
and yields findings.  Registration is declarative::

    @register
    class MyRule(Rule):
        code = "DET999"
        summary = "short imperative description"
        rationale = "why this breaks byte-identity"

        def check(self, ctx):
            ...
            yield self.finding(ctx, node, "message")

The registry powers rule selection (``--select``), the ``--list-rules``
catalog, and the docs generator in ``docs/linting.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Type

from .model import Finding, ModuleContext, Severity

__all__ = [
    "Rule",
    "register",
    "registered_rules",
    "rules_for_codes",
    "dotted_name",
    "walk_calls",
]


class Rule:
    """Base class for one lint check.

    Subclasses set the class attributes and implement :meth:`check`
    (one call per parsed module) and/or :meth:`check_project` (one call
    per lint run, over the linked whole-program
    :class:`~repro.lint.callgraph.Project`).  Instances are stateless
    between files — the engine constructs one instance per run.

    A rule may implement both phases under one code: the per-module
    pass catches what a single AST can prove, and the project pass
    adds the cross-module cases (aliased imports, call-graph taint)
    the per-module pass structurally cannot see.  Project-phase rules
    are responsible for their own pragma filtering (the engine has no
    AST for cached files) — use ``project.is_suppressed``.
    """

    #: Unique short code, e.g. ``DET001``; findings and pragmas use it.
    code: str = ""
    #: One-line imperative description for catalogs and ``--list-rules``.
    summary: str = ""
    #: Why the flagged pattern endangers determinism or fork safety.
    rationale: str = ""
    severity: Severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Per-module findings; default: none (project-only rule)."""
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Whole-program findings; default: none (module-only rule)."""
        return iter(())

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            severity=self.severity,
        )

    def project_finding(self, path: str, line: int, column: int,
                        message: str) -> Finding:
        """Build a project-phase finding at an explicit location."""
        return Finding(path=path, line=line, column=column, code=self.code,
                       message=message, severity=self.severity)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_class`` to the global registry."""
    code = rule_class.code
    if not code:
        raise ValueError(f"{rule_class.__name__} has no code")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_class:
        raise ValueError(
            f"duplicate rule code {code}: {existing.__name__} vs "
            f"{rule_class.__name__}")
    _REGISTRY[code] = rule_class
    return rule_class


def registered_rules() -> Dict[str, Type[Rule]]:
    """All registered rules, keyed by code (sorted copy)."""
    return {code: _REGISTRY[code] for code in sorted(_REGISTRY)}


def rules_for_codes(codes: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate the selected rules (all of them when ``codes=None``)."""
    registry = registered_rules()
    if codes is None:
        return [rule_class() for rule_class in registry.values()]
    selected: List[Rule] = []
    for code in codes:
        try:
            selected.append(registry[code]())
        except KeyError:
            raise ValueError(
                f"unknown rule code {code!r}; known: "
                f"{', '.join(registry)}") from None
    return selected


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve an ``Attribute``/``Name`` chain to ``"a.b.c"``.

    Returns ``None`` for anything that is not a pure name chain (calls,
    subscripts, literals), so ``np.random.default_rng`` resolves but
    ``chip.banks[0].rng`` does not.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """All ``Call`` nodes under ``tree`` in document order."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
