"""Built-in rule set: the determinism & fork-safety invariants of this
repository, encoded as static checks.

Every result in this reproduction carries a byte-identity guarantee —
scalar, batched, re-sharded, and N-worker runs of the same (experiment,
config, seed) must produce identical output (see ``docs/fleet.md`` and
``docs/telemetry.md``).  The golden files and identity tests enforce
that *dynamically*; these rules flag the common ways new code breaks it
*statically*, before anything executes:

* DET001 — ambient global-state RNG,
* DET002 — wall-clock reads outside the timing allowlist,
* DET003 — iteration over unordered set values,
* DET004 — environment reads outside fleet/config entry points,
* FORK001 — module-state mutation reachable from ``run_shard`` workers,
* TEL001 — wall-clock/RNG values fed into telemetry *counters*.

The catalog with full rationale lives in ``docs/linting.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .model import Finding, ModuleContext
from .rules import Rule, dotted_name, register, walk_calls

__all__ = [
    "AmbientRngRule",
    "WallClockRule",
    "UnsortedSetIterationRule",
    "EnvironReadRule",
    "WorkerGlobalMutationRule",
    "NondeterministicCounterRule",
]


# ----------------------------------------------------------------------
# shared matchers
# ----------------------------------------------------------------------

#: Legacy ``numpy.random`` module aliases whose function calls mutate the
#: hidden global ``RandomState``.
_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")

#: ``np.random`` members that are *constructors/containers*, not ambient
#: draws; they are fine when given an explicit seed and are checked
#: separately for the unseeded case.
_NP_RANDOM_SAFE = {
    "default_rng", "SeedSequence", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64", "RandomState",
}

#: Bit generators whose zero-argument construction seeds from the OS.
_UNSEEDED_CONSTRUCTORS = {
    "default_rng", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    "RandomState", "Random",
}

#: Module-level functions of stdlib :mod:`random` (the shared
#: ``random.Random`` instance behind them is process-global state).
_STDLIB_RANDOM_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

#: Exact wall-clock reads from :mod:`time`.
_TIME_FUNCS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
}

#: Suffix-matched wall-clock reads from :mod:`datetime` (callers reach
#: them as ``datetime.now``, ``datetime.datetime.now``, ``dt.now``...).
_DATETIME_TAILS = ("datetime.now", "datetime.utcnow", "datetime.today",
                   "date.today")


def _is_wall_clock_call(call: ast.Call) -> Optional[str]:
    """The dotted name of a wall-clock read, or ``None``."""
    name = dotted_name(call.func)
    if name is None:
        return None
    if name in _TIME_FUNCS:
        return name
    for tail in _DATETIME_TAILS:
        if name == tail or name.endswith("." + tail):
            return name
    return None


def _is_ambient_rng_call(call: ast.Call) -> Optional[Tuple[str, str]]:
    """Classify an ambient-RNG call.

    Returns ``(kind, dotted_name)`` where ``kind`` is ``"global-state"``
    (the legacy ``np.random.*`` / ``random.*`` module APIs) or
    ``"unseeded"`` (a generator constructed without an explicit seed),
    or ``None`` when the call is deterministic.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    tail = name.rsplit(".", 1)[-1]
    for prefix in _NP_RANDOM_PREFIXES:
        if name.startswith(prefix):
            if tail not in _NP_RANDOM_SAFE:
                return ("global-state", name)
            break
    if name.startswith("random.") and name.count(".") == 1:
        if tail in _STDLIB_RANDOM_FUNCS:
            return ("global-state", name)
    if tail in _UNSEEDED_CONSTRUCTORS and not call.args:
        seed_keywords = {"seed", "entropy", "key", "bit_generator", "x"}
        if not any(kw.arg in seed_keywords or kw.arg is None
                   for kw in call.keywords):
            qualifies = (
                name in ("default_rng", "Random", "RandomState")
                or any(name.startswith(p) for p in _NP_RANDOM_PREFIXES)
                or name.startswith("random."))
            if qualifies:
                return ("unseeded", name)
    return None


def _contains_rng_draw(node: ast.AST) -> Optional[str]:
    """Dotted name of an RNG draw anywhere under ``node``, or ``None``.

    Matches ambient calls (per DET001) *and* draws on derived generators
    — any ``<something>.rng.<method>(...)`` or ``rng.<method>(...)``
    where the method is a Generator sampling API.
    """
    draw_methods = {
        "random", "integers", "normal", "standard_normal", "uniform",
        "choice", "shuffle", "permutation", "bytes", "bits",
        "exponential", "poisson", "binomial",
    }
    for call in walk_calls(node):
        if _is_ambient_rng_call(call) is not None:
            name = dotted_name(call.func)
            return name if name is not None else "<rng>"
        name = dotted_name(call.func)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) >= 2 and parts[-1] in draw_methods:
            if "rng" in parts[:-1] or parts[-2].endswith("rng"):
                return name
    return None


def _module_allowlisted(module: str, allowlist: Sequence[str]) -> bool:
    return any(module == entry or module.startswith(entry + ".")
               for entry in allowlist)


# ----------------------------------------------------------------------
# DET001 — ambient global-state RNG
# ----------------------------------------------------------------------

@register
class AmbientRngRule(Rule):
    code = "DET001"
    summary = "ambient global-state RNG call or unseeded generator"
    rationale = (
        "Every random stream in this simulator is derived from the "
        "master seed via repro.dram.rng.derive_rng, so reruns, shards, "
        "and batched lanes replay identical draws.  The legacy "
        "np.random.* / random.* module APIs share hidden process-global "
        "state, and default_rng()/PCG64() without a seed pull OS "
        "entropy — either silently breaks byte-identity and poisons "
        "golden files.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in walk_calls(ctx.tree):
            verdict = _is_ambient_rng_call(call)
            if verdict is None:
                continue
            kind, name = verdict
            if kind == "global-state":
                message = (f"call to {name}() uses process-global RNG "
                           f"state; derive a stream with "
                           f"repro.dram.rng.derive_rng instead")
            else:
                message = (f"{name}() constructed without an explicit "
                           f"seed draws OS entropy; pass a seed derived "
                           f"from the master seed")
            yield self.finding(ctx, call, message)

    def check_project(self, project) -> Iterator[Finding]:
        from . import dataflow
        yield from dataflow.iter_rng_findings(self, project)


# ----------------------------------------------------------------------
# DET002 — wall-clock reads
# ----------------------------------------------------------------------

@register
class WallClockRule(Rule):
    code = "DET002"
    summary = "wall-clock read outside the timing allowlist"
    rationale = (
        "Simulated time is the SoftMC cycle counter; host wall-clock "
        "must never leak into results, result-cache keys, or trace "
        "bytes.  Only the telemetry phase/histogram machinery and the "
        "runner/fleet progress reporting are allowed to read clocks — "
        "their output is contractually excluded from the deterministic "
        "snapshot.")

    #: Modules whose *job* is timing; wall-clock reads here are the
    #: product, not a leak.  Keep this list short and intentional.
    allowlist: Tuple[str, ...] = (
        "repro.telemetry.registry",
        "repro.telemetry.tracer",
        "repro.experiments.runner",
        "repro.experiments.report",
        "repro.fleet.executor",
        # The run-program frontend's elapsed-time report goes to stderr
        # only; stdout stays the deterministic conformance surface.
        "repro.backends.frontend",
        # The service's real-time boundary: SystemClock is the ONE place
        # the serving layer reads the host clock; everything else takes
        # an injected Clock, and scripted replay injects ManualClock.
        "repro.service.clock",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _module_allowlisted(ctx.module, self.allowlist):
            return
        for call in walk_calls(ctx.tree):
            name = _is_wall_clock_call(call)
            if name is None:
                continue
            yield self.finding(
                ctx, call,
                f"wall-clock read {name}() in module {ctx.module}; "
                f"simulated time comes from the SoftMC cycle counter "
                f"(allowlisted timing modules: "
                f"{', '.join(self.allowlist)})")

    def check_project(self, project) -> Iterator[Finding]:
        from . import dataflow
        yield from dataflow.iter_clock_findings(self, project,
                                                self.allowlist)


# ----------------------------------------------------------------------
# DET003 — iteration over unordered set values
# ----------------------------------------------------------------------

def _is_set_expression(node: ast.AST) -> bool:
    """True when ``node`` syntactically constructs a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return (_is_set_expression(node.left)
                or _is_set_expression(node.right))
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference"):
            return _is_set_expression(node.func.value)
    return False


@register
class UnsortedSetIterationRule(Rule):
    code = "DET003"
    summary = "iteration over set values without an enclosing sorted()"
    rationale = (
        "Set iteration order depends on insertion history and element "
        "hashes (and, for str keys, on PYTHONHASHSEED), so any loop over "
        "a set that feeds results, RNG-stream derivation, or command "
        "emission produces run-dependent orderings.  Wrapping the set in "
        "sorted() pins a total order; the cost is negligible at the "
        "sizes this simulator handles.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                targets.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                targets.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in ("list", "tuple", "enumerate") and node.args:
                    targets.append(node.args[0])
            for target in targets:
                if _is_set_expression(target):
                    yield self.finding(
                        ctx, target,
                        "iterating a set produces an undefined order; "
                        "wrap the expression in sorted(...) to pin the "
                        "traversal")


# ----------------------------------------------------------------------
# DET004 — environment reads
# ----------------------------------------------------------------------

@register
class EnvironReadRule(Rule):
    code = "DET004"
    summary = "os.environ read outside fleet/config entry points"
    rationale = (
        "An experiment whose output depends on ambient environment "
        "variables cannot be replayed from its (experiment, config, "
        "seed) cache key.  Environment influence is funneled through "
        "the fleet entry points (worker count, cache directory), which "
        "resolve variables once and pass plain values down.")

    allowlist: Tuple[str, ...] = ("repro.fleet",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _module_allowlisted(ctx.module, self.allowlist):
            return
        for node in ast.walk(ctx.tree):
            name: Optional[str] = None
            if isinstance(node, ast.Attribute):
                # Exactly "os.environ" / "os.getenv": the innermost node
                # of every access pattern (subscript, .get, membership),
                # so each site is reported once.
                resolved = dotted_name(node)
                if resolved in ("os.environ", "os.getenv", "os.putenv"):
                    name = resolved
            elif isinstance(node, ast.Name) and node.id == "environ":
                name = "environ"
            if name is None:
                continue
            yield self.finding(
                ctx, node,
                f"{name} accessed in module {ctx.module}; resolve "
                f"environment variables in the fleet/config entry "
                f"points and pass plain values down")


# ----------------------------------------------------------------------
# FORK001 — module-state mutation in fork workers
# ----------------------------------------------------------------------

def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound by assignment at module scope."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets.extend(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets.append(node.target)
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.update(element.id for element in target.elts
                             if isinstance(element, ast.Name))
    return names


_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "write", "sort",
    "reverse", "appendleft", "popleft",
}


def _collect_functions(
        tree: ast.Module,
) -> Dict[str, ast.AST]:
    """Map reachability keys to function nodes.

    Top-level functions are keyed by name; methods by
    ``"<Class>.<method>"`` *and* ``".<method>"`` (the latter lets a
    ``self.foo()`` call resolve without type inference).
    """
    table: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    table[f"{node.name}.{item.name}"] = item
                    table.setdefault(f".{item.name}", item)
    return table


def _reachable_from(entry_keys: List[str],
                    table: Dict[str, ast.AST]) -> List[Tuple[str, ast.AST]]:
    """Intra-module closure of functions callable from the entries."""
    seen: Set[str] = set()
    order: List[Tuple[str, ast.AST]] = []
    stack = [key for key in entry_keys if key in table]
    while stack:
        key = stack.pop()
        if key in seen:
            continue
        seen.add(key)
        node = table[key]
        if any(existing is node for _, existing in order):
            continue
        order.append((key, node))
        for call in walk_calls(node):
            callee: Optional[str] = None
            if isinstance(call.func, ast.Name):
                callee = call.func.id
            elif isinstance(call.func, ast.Attribute) and isinstance(
                    call.func.value, ast.Name) and call.func.value.id in (
                        "self", "cls"):
                callee = f".{call.func.attr}"
            if callee is not None and callee in table and callee not in seen:
                stack.append(callee)
    return order


@register
class WorkerGlobalMutationRule(Rule):
    code = "FORK001"
    summary = "module-level state mutated in code reachable from run_shard"
    rationale = (
        "Fleet workers execute run_shard in forked/spawned processes "
        "(repro.fleet.executor); module-level mutations there are "
        "invisible to the parent, differ between fork and spawn start "
        "methods, and couple a unit's result to which units ran before "
        "it in the same worker — breaking shard invariance.  Worker "
        "code must stay pure: derive state per unit, return payloads.")

    #: Entry points whose transitive intra-module callees must not touch
    #: module state.  ``run_shard`` is the fleet worker protocol.
    entry_points: Tuple[str, ...] = ("run_shard",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        module_names = _module_level_names(ctx.tree)
        table = _collect_functions(ctx.tree)
        entries: List[str] = []
        for entry in self.entry_points:
            entries.append(entry)
            entries.extend(key for key in table
                           if key.endswith(f".{entry}"))
        for key, function in _reachable_from(entries, table):
            yield from self._check_function(ctx, key, function,
                                            module_names)

    def _check_function(self, ctx: ModuleContext, key: str,
                        function: ast.AST,
                        module_names: Set[str]) -> Iterator[Finding]:
        declared_global: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
                yield self.finding(
                    ctx, node,
                    f"'global {', '.join(node.names)}' inside "
                    f"{key} (reachable from run_shard); fleet workers "
                    f"must not rebind module state")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    root = target
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if not isinstance(root, ast.Name):
                        continue
                    is_container_store = isinstance(
                        target, (ast.Subscript, ast.Attribute))
                    if root.id in module_names and (
                            is_container_store
                            or root.id in declared_global):
                        yield self.finding(
                            ctx, node,
                            f"mutation of module-level {root.id!r} "
                            f"inside {key} (reachable from run_shard)")
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATING_METHODS):
                    root = func.value
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if (isinstance(root, ast.Name)
                            and root.id in module_names):
                        yield self.finding(
                            ctx, node,
                            f"mutating call {root.id}.{func.attr}() "
                            f"inside {key} (reachable from run_shard)")


# ----------------------------------------------------------------------
# TEL001 — nondeterministic values in telemetry counters
# ----------------------------------------------------------------------

#: Receivers that identify the telemetry registry at instrumented call
#: sites (``tel = active()`` is the repo-wide idiom).
_TELEMETRY_RECEIVERS = {
    "tel", "telemetry", "self.telemetry", "self._telemetry", "registry",
}
_TELEMETRY_FACTORIES = {"active", "_telemetry_active"}


def _is_telemetry_receiver(node: ast.AST) -> bool:
    name = dotted_name(node)
    if name is not None and name in _TELEMETRY_RECEIVERS:
        return True
    if isinstance(node, ast.Call):
        factory = dotted_name(node.func)
        if factory is not None:
            return factory.rsplit(".", 1)[-1] in _TELEMETRY_FACTORIES
    return False


@register
class NondeterministicCounterRule(Rule):
    code = "TEL001"
    summary = "wall-clock or RNG value fed into a telemetry counter"
    rationale = (
        "Counters are the *deterministic* telemetry section: a serial "
        "run and an N-worker fleet run must produce identical counter "
        "snapshots (tests/telemetry asserts this).  Feeding a clock or "
        "RNG draw into Counter.add/Telemetry.count poisons that "
        "contract; wall-clock belongs in histograms or phase timers, "
        "which are excluded from the deterministic snapshot.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in walk_calls(ctx.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            value_args: List[ast.AST] = []
            if func.attr == "count" and _is_telemetry_receiver(func.value):
                value_args = list(call.args[1:]) + [
                    kw.value for kw in call.keywords if kw.arg == "n"]
            elif func.attr == "add" and isinstance(func.value, ast.Call):
                inner = func.value.func
                if (isinstance(inner, ast.Attribute)
                        and inner.attr == "counter"
                        and _is_telemetry_receiver(inner.value)):
                    value_args = list(call.args) + [
                        kw.value for kw in call.keywords if kw.arg == "n"]
            for arg in value_args:
                clock = next(
                    (name for inner_call in walk_calls(arg)
                     for name in [_is_wall_clock_call(inner_call)]
                     if name is not None), None)
                if clock is not None:
                    yield self.finding(
                        ctx, call,
                        f"wall-clock value from {clock}() fed into a "
                        f"telemetry counter; counters are deterministic "
                        f"— use a histogram or phase timer")
                    continue
                rng = _contains_rng_draw(arg)
                if rng is not None:
                    yield self.finding(
                        ctx, call,
                        f"RNG value from {rng}() fed into a telemetry "
                        f"counter; counters must be a pure function of "
                        f"(experiment, config, seed)")

    def check_project(self, project) -> Iterator[Finding]:
        from . import dataflow
        yield from dataflow.iter_counter_findings(self, project)
