"""Per-module analysis summaries: the cacheable unit of the engine.

The interprocedural phase of :mod:`repro.lint` never walks two ASTs at
once.  Each file is parsed exactly once (and, with the incremental
cache, at most once per content hash *ever*) into a
:class:`ModuleSummary` — a compact, JSON-serializable record of
everything the whole-program phase needs:

* the import table (aliases resolved at link time, so
  ``from numpy import random as r`` cannot launder ``r.default_rng()``),
* every call site with its argument shape (for the unseeded-generator
  check) and the enclosing statement's end line (for pragma filtering),
* per-function data-flow atoms: calls whose results are returned,
  locals assigned from calls (one-hop pass-through), telemetry counter
  feed sites, and module-state mutations (the FORK family),
* the *dispatch surface*: ``isinstance`` targets, string equality/
  membership sets, ``xs.append(("tag", ...))`` heads, ``KIND`` class
  attributes, dict-literal keys and module-level string tuples — the
  raw material of the backend-parity checker (:mod:`.parity`).

Link-time analysis lives in :mod:`repro.lint.callgraph`; this module is
deliberately free of any other lint import so summaries stay a leaf of
the package graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "CallSite",
    "ClassSummary",
    "CounterFeed",
    "DispatchSummary",
    "FunctionSummary",
    "ModuleSummary",
    "Mutation",
    "extract_summary",
]


@dataclass(frozen=True)
class CallSite:
    """One resolvable-name call: ``a.b.c(args...)`` somewhere in a body."""

    name: str          # dotted name as written (unresolved)
    line: int
    column: int
    end_line: int      # closing line of the enclosing statement
    n_args: int
    keywords: Tuple[str, ...]  # keyword names; "*" for **kwargs

    def to_json(self) -> dict:
        return {"name": self.name, "line": self.line, "column": self.column,
                "end_line": self.end_line, "n_args": self.n_args,
                "keywords": list(self.keywords)}

    @classmethod
    def from_json(cls, payload: dict) -> "CallSite":
        return cls(name=payload["name"], line=payload["line"],
                   column=payload["column"], end_line=payload["end_line"],
                   n_args=payload["n_args"],
                   keywords=tuple(payload["keywords"]))


@dataclass(frozen=True)
class CounterFeed:
    """A telemetry-counter feed site and the expressions feeding it."""

    line: int
    column: int
    end_line: int
    arg_calls: Tuple[CallSite, ...]   # calls inside the value arguments
    arg_names: Tuple[str, ...]        # bare names inside the value arguments

    def to_json(self) -> dict:
        return {"line": self.line, "column": self.column,
                "end_line": self.end_line,
                "arg_calls": [c.to_json() for c in self.arg_calls],
                "arg_names": list(self.arg_names)}

    @classmethod
    def from_json(cls, payload: dict) -> "CounterFeed":
        return cls(line=payload["line"], column=payload["column"],
                   end_line=payload["end_line"],
                   arg_calls=tuple(CallSite.from_json(c)
                                   for c in payload["arg_calls"]),
                   arg_names=tuple(payload["arg_names"]))


@dataclass(frozen=True)
class Mutation:
    """A module-level-state mutation inside one function body."""

    kind: str     # "global" | "store" | "call"
    detail: str   # rendered description fragment, e.g. "RESULTS.append()"
    line: int
    column: int
    end_line: int

    def to_json(self) -> dict:
        return {"kind": self.kind, "detail": self.detail, "line": self.line,
                "column": self.column, "end_line": self.end_line}

    @classmethod
    def from_json(cls, payload: dict) -> "Mutation":
        return cls(kind=payload["kind"], detail=payload["detail"],
                   line=payload["line"], column=payload["column"],
                   end_line=payload["end_line"])


@dataclass(frozen=True)
class FunctionSummary:
    """Data-flow atoms of one function or method body."""

    qual: str     # "func" or "Class.method" (module-relative)
    line: int
    calls: Tuple[CallSite, ...]
    #: Calls whose result is (possibly via a one-hop local) returned.
    returned_calls: Tuple[CallSite, ...]
    #: local variable -> the call it was assigned from (single Name target).
    assigned_calls: Tuple[Tuple[str, CallSite], ...]
    counter_feeds: Tuple[CounterFeed, ...]
    mutations: Tuple[Mutation, ...]

    def to_json(self) -> dict:
        return {
            "qual": self.qual, "line": self.line,
            "calls": [c.to_json() for c in self.calls],
            "returned_calls": [c.to_json() for c in self.returned_calls],
            "assigned_calls": [[name, call.to_json()]
                               for name, call in self.assigned_calls],
            "counter_feeds": [f.to_json() for f in self.counter_feeds],
            "mutations": [m.to_json() for m in self.mutations],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FunctionSummary":
        return cls(
            qual=payload["qual"], line=payload["line"],
            calls=tuple(CallSite.from_json(c) for c in payload["calls"]),
            returned_calls=tuple(CallSite.from_json(c)
                                 for c in payload["returned_calls"]),
            assigned_calls=tuple(
                (name, CallSite.from_json(call))
                for name, call in payload["assigned_calls"]),
            counter_feeds=tuple(CounterFeed.from_json(f)
                                for f in payload["counter_feeds"]),
            mutations=tuple(Mutation.from_json(m)
                            for m in payload["mutations"]),
        )


@dataclass(frozen=True)
class ClassSummary:
    """One class: its methods plus constructor-typed instance attributes."""

    name: str
    methods: Tuple[str, ...]
    #: instance attribute -> dotted constructor name (``self.x = Ctor()``).
    attr_types: Tuple[Tuple[str, str], ...]

    def to_json(self) -> dict:
        return {"name": self.name, "methods": list(self.methods),
                "attr_types": [list(item) for item in self.attr_types]}

    @classmethod
    def from_json(cls, payload: dict) -> "ClassSummary":
        return cls(name=payload["name"], methods=tuple(payload["methods"]),
                   attr_types=tuple((a, t)
                                    for a, t in payload["attr_types"]))


@dataclass(frozen=True)
class DispatchSummary:
    """The statically-extracted dispatch surface of one module."""

    isinstance_targets: Tuple[str, ...]
    #: compared name -> string constants it is ``==``/``in``-matched to.
    compare_sets: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: list name -> string heads of tuple/list literals appended to it.
    append_heads: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: class name -> its ``KIND`` class attribute value.
    class_kinds: Tuple[Tuple[str, str], ...]
    #: module-level name -> string keys of its dict-literal value.
    dict_keys: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: module-level name -> string/identifier items of its tuple value.
    module_tuples: Tuple[Tuple[str, Tuple[str, ...]], ...]

    def to_json(self) -> dict:
        return {
            "isinstance_targets": list(self.isinstance_targets),
            "compare_sets": [[n, list(v)] for n, v in self.compare_sets],
            "append_heads": [[n, list(v)] for n, v in self.append_heads],
            "class_kinds": [list(item) for item in self.class_kinds],
            "dict_keys": [[n, list(v)] for n, v in self.dict_keys],
            "module_tuples": [[n, list(v)] for n, v in self.module_tuples],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "DispatchSummary":
        pairs = lambda key: tuple(  # noqa: E731 - tiny local decoder
            (name, tuple(values)) for name, values in payload[key])
        return cls(
            isinstance_targets=tuple(payload["isinstance_targets"]),
            compare_sets=pairs("compare_sets"),
            append_heads=pairs("append_heads"),
            class_kinds=tuple((c, k) for c, k in payload["class_kinds"]),
            dict_keys=pairs("dict_keys"),
            module_tuples=pairs("module_tuples"),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the project phase needs to know about one module."""

    module: str
    path: str
    is_package: bool
    imports: Tuple[Tuple[str, str], ...]  # local name -> dotted target
    module_names: Tuple[str, ...]
    functions: Tuple[FunctionSummary, ...]
    classes: Tuple[ClassSummary, ...]
    suppressions: Tuple[Tuple[int, Tuple[str, ...]], ...]
    standalone_pragma_lines: Tuple[int, ...]
    dispatch: DispatchSummary

    def to_json(self) -> dict:
        return {
            "module": self.module, "path": self.path,
            "is_package": self.is_package,
            "imports": [list(item) for item in self.imports],
            "module_names": list(self.module_names),
            "functions": [f.to_json() for f in self.functions],
            "classes": [c.to_json() for c in self.classes],
            "suppressions": [[line, list(codes)]
                             for line, codes in self.suppressions],
            "standalone_pragma_lines": list(self.standalone_pragma_lines),
            "dispatch": self.dispatch.to_json(),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ModuleSummary":
        return cls(
            module=payload["module"], path=payload["path"],
            is_package=payload["is_package"],
            imports=tuple((a, b) for a, b in payload["imports"]),
            module_names=tuple(payload["module_names"]),
            functions=tuple(FunctionSummary.from_json(f)
                            for f in payload["functions"]),
            classes=tuple(ClassSummary.from_json(c)
                          for c in payload["classes"]),
            suppressions=tuple((line, tuple(codes))
                               for line, codes in payload["suppressions"]),
            standalone_pragma_lines=tuple(
                payload["standalone_pragma_lines"]),
            dispatch=DispatchSummary.from_json(payload["dispatch"]),
        )


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------

def _dotted(node: ast.AST) -> Optional[str]:
    """``Attribute``/``Name`` chain -> ``"a.b.c"`` (else ``None``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _statement_ends(root: ast.AST) -> Dict[int, int]:
    """Map ``id(node)`` -> innermost enclosing statement's end line.

    ``ast.walk`` is breadth-first, so inner statements are visited after
    outer ones and the last assignment wins — exactly the innermost.
    """
    ends: Dict[int, int] = {}
    for node in ast.walk(root):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        for child in ast.walk(node):
            ends[id(child)] = end
    return ends


_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "write", "sort",
    "reverse", "appendleft", "popleft",
}

#: Receivers that identify the telemetry registry at instrumented call
#: sites (mirrors the TEL001 per-module matcher).
_TELEMETRY_RECEIVERS = {
    "tel", "telemetry", "self.telemetry", "self._telemetry", "registry",
}
_TELEMETRY_FACTORIES = {"active", "_telemetry_active"}


def _module_level_names(tree: ast.Module) -> Tuple[str, ...]:
    names = set()
    for node in tree.body:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets.extend(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets.append(node.target)
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.update(element.id for element in target.elts
                             if isinstance(element, ast.Name))
    return tuple(sorted(names))


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _call_site(call: ast.Call, ends: Dict[int, int]) -> Optional[CallSite]:
    name = _dotted(call.func)
    if name is None:
        return None
    return CallSite(
        name=name, line=call.lineno, column=call.col_offset + 1,
        end_line=ends.get(id(call), call.lineno),
        n_args=len(call.args),
        keywords=tuple(kw.arg if kw.arg is not None else "*"
                       for kw in call.keywords))


def _is_telemetry_receiver(node: ast.AST) -> bool:
    name = _dotted(node)
    if name is not None and name in _TELEMETRY_RECEIVERS:
        return True
    if isinstance(node, ast.Call):
        factory = _dotted(node.func)
        if factory is not None:
            return factory.rsplit(".", 1)[-1] in _TELEMETRY_FACTORIES
    return False


def _counter_value_args(call: ast.Call) -> List[ast.AST]:
    """The value expressions fed into a telemetry counter, if any."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return []
    if func.attr == "count" and _is_telemetry_receiver(func.value):
        return list(call.args[1:]) + [kw.value for kw in call.keywords
                                      if kw.arg == "n"]
    if func.attr == "add" and isinstance(func.value, ast.Call):
        inner = func.value.func
        if (isinstance(inner, ast.Attribute) and inner.attr == "counter"
                and _is_telemetry_receiver(inner.value)):
            return list(call.args) + [kw.value for kw in call.keywords
                                      if kw.arg == "n"]
    return []


def _function_summary(qual: str, node: ast.AST, ends: Dict[int, int],
                      module_names: FrozenSet[str]) -> FunctionSummary:
    calls: List[CallSite] = []
    returned: List[CallSite] = []
    assigned: List[Tuple[str, CallSite]] = []
    feeds: List[CounterFeed] = []
    mutations: List[Mutation] = []
    declared_global: set = set()
    returned_names: List[str] = []

    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            site = _call_site(child, ends)
            if site is not None:
                calls.append(site)
            value_args = _counter_value_args(child)
            if value_args:
                arg_calls: List[CallSite] = []
                arg_names: List[str] = []
                for arg in value_args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Call):
                            sub_site = _call_site(sub, ends)
                            if sub_site is not None:
                                arg_calls.append(sub_site)
                        elif isinstance(sub, ast.Name):
                            arg_names.append(sub.id)
                feeds.append(CounterFeed(
                    line=child.lineno, column=child.col_offset + 1,
                    end_line=ends.get(id(child), child.lineno),
                    arg_calls=tuple(arg_calls),
                    arg_names=tuple(arg_names)))
            func = child.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS):
                root = _root_name(func.value)
                if root is not None and root in module_names:
                    mutations.append(Mutation(
                        kind="call", detail=f"{root}.{func.attr}()",
                        line=child.lineno, column=child.col_offset + 1,
                        end_line=ends.get(id(child), child.lineno)))
        elif isinstance(child, ast.Global):
            declared_global.update(child.names)
            mutations.append(Mutation(
                kind="global", detail=", ".join(child.names),
                line=child.lineno, column=child.col_offset + 1,
                end_line=ends.get(id(child), child.lineno)))
        elif isinstance(child, ast.Return) and child.value is not None:
            for sub in ast.walk(child.value):
                if isinstance(sub, ast.Call):
                    site = _call_site(sub, ends)
                    if site is not None:
                        returned.append(site)
                elif isinstance(sub, ast.Name):
                    returned_names.append(sub.id)

    # second pass: assignments (needs declared_global complete).
    for child in ast.walk(node):
        if isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = (child.targets if isinstance(child, ast.Assign)
                       else [child.target])
            for target in targets:
                root = _root_name(target)
                if root is None:
                    continue
                is_container_store = isinstance(
                    target, (ast.Subscript, ast.Attribute))
                if root in module_names and (
                        is_container_store or root in declared_global):
                    mutations.append(Mutation(
                        kind="store", detail=root,
                        line=child.lineno, column=child.col_offset + 1,
                        end_line=ends.get(id(child), child.lineno)))
            if (isinstance(child, ast.Assign) and len(child.targets) == 1
                    and isinstance(child.targets[0], ast.Name)
                    and isinstance(child.value, ast.Call)):
                site = _call_site(child.value, ends)
                if site is not None:
                    assigned.append((child.targets[0].id, site))

    # resolve one-hop pass-through returns: ``x = f(); return x``.
    assigned_map = dict(assigned)
    for name in returned_names:
        site = assigned_map.get(name)
        if site is not None:
            returned.append(site)

    return FunctionSummary(
        qual=qual, line=getattr(node, "lineno", 1),
        calls=tuple(calls), returned_calls=tuple(returned),
        assigned_calls=tuple(assigned), counter_feeds=tuple(feeds),
        mutations=tuple(sorted(
            mutations, key=lambda m: (m.line, m.column, m.kind, m.detail))))


def _extract_dispatch(tree: ast.Module) -> DispatchSummary:
    isinstance_targets: set = set()
    compare_sets: Dict[str, set] = {}
    append_heads: Dict[str, set] = {}
    class_kinds: List[Tuple[str, str]] = []
    dict_keys: Dict[str, Tuple[str, ...]] = {}
    module_tuples: Dict[str, Tuple[str, ...]] = {}

    def class_names(node: ast.AST) -> List[str]:
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, ast.Attribute):
            return [node.attr]
        if isinstance(node, ast.Tuple):
            return [name for element in node.elts
                    for name in class_names(element)]
        return []

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func_name = _dotted(node.func)
            if func_name == "isinstance" and len(node.args) == 2:
                isinstance_targets.update(class_names(node.args[1]))
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr == "append" and len(node.args) == 1
                  and isinstance(node.args[0], (ast.Tuple, ast.List))
                  and node.args[0].elts
                  and isinstance(node.args[0].elts[0], ast.Constant)
                  and isinstance(node.args[0].elts[0].value, str)):
                receiver = _dotted(node.func.value)
                if receiver is not None:
                    append_heads.setdefault(receiver, set()).add(
                        node.args[0].elts[0].value)
        elif isinstance(node, ast.Compare) and len(node.ops) == 1:
            subject = _dotted(node.left)
            if subject is None:
                continue
            subject = subject.rsplit(".", 1)[-1]
            comparator = node.comparators[0]
            values: List[str] = []
            if isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                if (isinstance(comparator, ast.Constant)
                        and isinstance(comparator.value, str)):
                    values.append(comparator.value)
            elif isinstance(node.ops[0], (ast.In, ast.NotIn)):
                if isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                    values.extend(
                        element.value for element in comparator.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str))
            if values:
                compare_sets.setdefault(subject, set()).update(values)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                value = None
                if (isinstance(item, ast.Assign) and len(item.targets) == 1
                        and isinstance(item.targets[0], ast.Name)
                        and item.targets[0].id == "KIND"):
                    value = item.value
                elif (isinstance(item, ast.AnnAssign)
                      and isinstance(item.target, ast.Name)
                      and item.target.id == "KIND"):
                    value = item.value
                if (isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    class_kinds.append((node.name, value.value))

    for node in tree.body:
        target = None
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            target, value = node.targets[0].id, node.value
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            target, value = node.target.id, node.value
        if target is None or value is None:
            continue
        if isinstance(value, ast.Dict):
            keys = tuple(key.value for key in value.keys
                         if isinstance(key, ast.Constant)
                         and isinstance(key.value, str))
            if keys:
                dict_keys[target] = keys
        elif isinstance(value, (ast.Tuple, ast.List)):
            items: List[str] = []
            for element in value.elts:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    items.append(element.value)
                elif isinstance(element, ast.Name):
                    items.append(element.id)
                elif isinstance(element, ast.Attribute):
                    items.append(element.attr)
            if items:
                module_tuples[target] = tuple(items)

    return DispatchSummary(
        isinstance_targets=tuple(sorted(isinstance_targets)),
        compare_sets=tuple(sorted(
            (name, tuple(sorted(values)))
            for name, values in compare_sets.items())),
        append_heads=tuple(sorted(
            (name, tuple(sorted(values)))
            for name, values in append_heads.items())),
        class_kinds=tuple(sorted(class_kinds)),
        dict_keys=tuple(sorted(dict_keys.items())),
        module_tuples=tuple(sorted(module_tuples.items())),
    )


def _resolve_from_base(module: str, is_package: bool, node: ast.ImportFrom,
                       ) -> Optional[str]:
    """The absolute package/module an ``ImportFrom`` pulls names from."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = node.level - 1
    if drop:
        parts = parts[:-drop] if drop < len(parts) else []
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts) if parts else None


def extract_summary(tree: ast.Module, *, module: str, path: str,
                    suppressions: Dict[int, FrozenSet[str]],
                    standalone: FrozenSet[int]) -> ModuleSummary:
    """Extract the link-phase summary of one parsed module."""
    is_package = path.endswith("__init__.py")
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    imports.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from_base(module, is_package, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}"

    module_names = _module_level_names(tree)
    names_set = frozenset(module_names)
    ends = _statement_ends(tree)

    functions: List[FunctionSummary] = []
    classes: List[ClassSummary] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(
                _function_summary(node.name, node, ends, names_set))
        elif isinstance(node, ast.ClassDef):
            methods: List[str] = []
            attr_types: Dict[str, str] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{node.name}.{item.name}"
                    methods.append(item.name)
                    summary = _function_summary(qual, item, ends, names_set)
                    functions.append(summary)
                    for sub in ast.walk(item):
                        if (isinstance(sub, ast.Assign)
                                and len(sub.targets) == 1
                                and isinstance(sub.targets[0], ast.Attribute)
                                and isinstance(sub.targets[0].value, ast.Name)
                                and sub.targets[0].value.id == "self"
                                and isinstance(sub.value, ast.Call)):
                            ctor = _dotted(sub.value.func)
                            if ctor is not None:
                                attr_types.setdefault(
                                    sub.targets[0].attr, ctor)
            classes.append(ClassSummary(
                name=node.name, methods=tuple(methods),
                attr_types=tuple(sorted(attr_types.items()))))

    return ModuleSummary(
        module=module, path=path, is_package=is_package,
        imports=tuple(sorted(imports.items())),
        module_names=module_names,
        functions=tuple(functions),
        classes=tuple(classes),
        suppressions=tuple(sorted(
            (line, tuple(sorted(codes)))
            for line, codes in suppressions.items())),
        standalone_pragma_lines=tuple(sorted(standalone)),
        dispatch=_extract_dispatch(tree),
    )
