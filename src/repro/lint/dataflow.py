"""Interprocedural taint data-flow over the linked :class:`Project`.

The per-module rules in :mod:`repro.lint.builtin` match *textual* call
names — ``time.perf_counter()``, ``np.random.random()`` — and therefore
miss the two cross-module escape hatches:

* **aliased imports**: ``from time import perf_counter as pc; pc()``;
* **value laundering**: a helper that *returns* a clock read or an
  unseeded generator, called from a module where the direct call would
  have been flagged.

This module closes both.  Names are resolved through the project import
table before classification, and two return-taint fixpoints (wall-clock
and ambient RNG) propagate sourcehood through arbitrarily deep call
chains.  The ``iter_*_findings`` helpers implement the project phase of
DET001/DET002/TEL001 (the rule classes in ``builtin`` delegate here);
:class:`KernelPurityRule` (FORK002) generalizes FORK001 to the full
call graph.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Tuple

from .callgraph import FunctionKey, Project
from .model import Finding
from .rules import Rule, register
from .summary import CallSite, FunctionSummary

__all__ = [
    "KernelPurityRule",
    "classify_ambient_rng",
    "classify_wall_clock",
    "clock_taint",
    "iter_counter_findings",
    "iter_clock_findings",
    "iter_rng_findings",
    "rng_taint",
]


# ----------------------------------------------------------------------
# absolute-name classifiers
# ----------------------------------------------------------------------
# These intentionally mirror the textual matchers in ``builtin`` (same
# underlying name sets) but operate on *resolved* absolute names plus
# the call-site argument shape recorded in the summary.

_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")

_NP_RANDOM_SAFE = {
    "default_rng", "SeedSequence", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64", "RandomState",
}

_UNSEEDED_CONSTRUCTORS = {
    "default_rng", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    "RandomState", "Random",
}

_STDLIB_RANDOM_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

_TIME_FUNCS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
}

_DATETIME_TAILS = ("datetime.now", "datetime.utcnow", "datetime.today",
                   "date.today")

_SEED_KEYWORDS = {"seed", "entropy", "key", "bit_generator", "x"}


def classify_wall_clock(name: str) -> Optional[str]:
    """The wall-clock primitive ``name`` denotes, or ``None``."""
    if name in _TIME_FUNCS:
        return name
    for tail in _DATETIME_TAILS:
        if name == tail or name.endswith("." + tail):
            return name
    return None


def classify_ambient_rng(name: str,
                         site: CallSite) -> Optional[Tuple[str, str]]:
    """Classify a resolved call as ambient RNG.

    Returns ``("global-state", name)`` for the legacy module-level APIs,
    ``("unseeded", name)`` for a generator constructed without a seed,
    or ``None``.  Mirrors ``builtin._is_ambient_rng_call`` over
    ``(absolute name, argument shape)`` instead of an AST node.
    """
    tail = name.rsplit(".", 1)[-1]
    for prefix in _NP_RANDOM_PREFIXES:
        if name.startswith(prefix):
            if tail not in _NP_RANDOM_SAFE:
                return ("global-state", name)
            break
    if name.startswith("random.") and name.count(".") == 1:
        if tail in _STDLIB_RANDOM_FUNCS:
            return ("global-state", name)
    if tail in _UNSEEDED_CONSTRUCTORS and site.n_args == 0:
        if not any(kw in _SEED_KEYWORDS or kw == "*"
                   for kw in site.keywords):
            qualifies = (
                name in ("default_rng", "Random", "RandomState")
                or any(name.startswith(p) for p in _NP_RANDOM_PREFIXES)
                or name.startswith("random."))
            if qualifies:
                return ("unseeded", name)
    return None


# ----------------------------------------------------------------------
# taint fixpoints
# ----------------------------------------------------------------------

def clock_taint(project: Project) -> FrozenSet[FunctionKey]:
    """Functions whose return value transitively reads the wall clock."""
    return project.return_taint(
        "clock", lambda name, site: classify_wall_clock(name) is not None)


def rng_taint(project: Project) -> FrozenSet[FunctionKey]:
    """Functions whose return value transitively carries ambient RNG."""
    return project.return_taint(
        "rng",
        lambda name, site: classify_ambient_rng(name, site) is not None)


def _emit(rule: Rule, project: Project, path: str, site_line: int,
          column: int, end_line: int, message: str) -> Optional[Finding]:
    if project.is_suppressed(path, rule.code, site_line,
                             end_line=end_line):
        return None
    return rule.project_finding(path, site_line, column, message)


# ----------------------------------------------------------------------
# DET002 project phase
# ----------------------------------------------------------------------

def _module_allowlisted(module: str, allowlist) -> bool:
    return any(module == entry or module.startswith(entry + ".")
               for entry in allowlist)


def iter_clock_findings(rule: Rule, project: Project,
                        allowlist) -> Iterator[Finding]:
    """Cross-module DET002: aliased reads + laundered clock values."""
    tainted = clock_taint(project)
    for key, function in project.iter_functions():
        module = key[0]
        if _module_allowlisted(module, allowlist):
            continue
        path = project.path_of(module)
        for site in function.calls:
            absolute = project.resolve_name(module, site.name)
            clock = classify_wall_clock(absolute)
            if clock is not None:
                if classify_wall_clock(site.name) is not None:
                    continue  # the per-module pass already flagged it
                finding = _emit(
                    rule, project, path, site.line, site.column,
                    site.end_line,
                    f"wall-clock read: {site.name}() resolves to "
                    f"{clock}() in module {module}; simulated time "
                    f"comes from the SoftMC cycle counter")
                if finding is not None:
                    yield finding
                continue
            target = project.resolve_call(module, function, site)
            if target is not None and target in tainted:
                finding = _emit(
                    rule, project, path, site.line, site.column,
                    site.end_line,
                    f"call to {project.qualname(target)}() returns a "
                    f"wall-clock value into module {module}; pass an "
                    f"injected Clock or keep the value inside the "
                    f"timing allowlist")
                if finding is not None:
                    yield finding


# ----------------------------------------------------------------------
# DET001 project phase
# ----------------------------------------------------------------------

def iter_rng_findings(rule: Rule, project: Project) -> Iterator[Finding]:
    """Cross-module DET001: aliased ambient RNG + laundered generators."""
    tainted = rng_taint(project)
    for key, function in project.iter_functions():
        module = key[0]
        path = project.path_of(module)
        for site in function.calls:
            absolute = project.resolve_name(module, site.name)
            verdict = classify_ambient_rng(absolute, site)
            if verdict is not None:
                if classify_ambient_rng(site.name, site) is not None:
                    continue  # textual form — per-module pass owns it
                kind, name = verdict
                if kind == "global-state":
                    message = (
                        f"{site.name}() resolves to {name}(), which "
                        f"uses process-global RNG state; derive a "
                        f"stream with repro.dram.rng.derive_rng instead")
                else:
                    message = (
                        f"{site.name}() resolves to {name}() "
                        f"constructed without an explicit seed; pass a "
                        f"seed derived from the master seed")
                finding = _emit(rule, project, path, site.line,
                                site.column, site.end_line, message)
                if finding is not None:
                    yield finding
                continue
            target = project.resolve_call(module, function, site)
            if target is not None and target in tainted:
                finding = _emit(
                    rule, project, path, site.line, site.column,
                    site.end_line,
                    f"call to {project.qualname(target)}() returns a "
                    f"value derived from ambient or unseeded RNG; "
                    f"thread a seeded Generator through instead")
                if finding is not None:
                    yield finding


# ----------------------------------------------------------------------
# TEL001 project phase
# ----------------------------------------------------------------------

def iter_counter_findings(rule: Rule,
                          project: Project) -> Iterator[Finding]:
    """Cross-module TEL001: laundered clock/RNG values into counters."""
    clock_fns = clock_taint(project)
    rng_fns = rng_taint(project)
    for key, function in project.iter_functions():
        module = key[0]
        path = project.path_of(module)
        assigned = dict(function.assigned_calls)
        for feed in function.counter_feeds:
            sources: List[Tuple[CallSite, Optional[str]]] = [
                (site, None) for site in feed.arg_calls]
            sources.extend(
                (assigned[name], name) for name in feed.arg_names
                if name in assigned)
            finding = _classify_feed(rule, project, module, path,
                                     function, feed, sources,
                                     clock_fns, rng_fns)
            if finding is not None:
                yield finding


def _classify_feed(rule, project, module, path, function, feed, sources,
                   clock_fns, rng_fns) -> Optional[Finding]:
    for site, via in sources:
        absolute = project.resolve_name(module, site.name)
        target = project.resolve_call(module, function, site)
        laundered = via is not None
        if classify_wall_clock(absolute) is not None:
            if not laundered and classify_wall_clock(site.name) is not None:
                continue  # per-module TEL001 already flagged this feed
            return _emit(
                rule, project, path, feed.line, feed.column,
                feed.end_line,
                f"wall-clock value from {site.name}() "
                f"{_via(via)}fed into a telemetry counter; counters "
                f"are deterministic — use a histogram or phase timer")
        if target is not None and target in clock_fns:
            return _emit(
                rule, project, path, feed.line, feed.column,
                feed.end_line,
                f"value returned by {project.qualname(target)}() reads "
                f"the wall clock and is {_via(via)}fed into a "
                f"telemetry counter; counters are deterministic — use "
                f"a histogram or phase timer")
        if classify_ambient_rng(absolute, site) is not None:
            if (not laundered
                    and classify_ambient_rng(site.name, site) is not None):
                continue
            return _emit(
                rule, project, path, feed.line, feed.column,
                feed.end_line,
                f"RNG value from {site.name}() {_via(via)}fed into a "
                f"telemetry counter; counters must be a pure function "
                f"of (experiment, config, seed)")
        if target is not None and target in rng_fns:
            return _emit(
                rule, project, path, feed.line, feed.column,
                feed.end_line,
                f"value returned by {project.qualname(target)}() "
                f"carries ambient RNG and is {_via(via)}fed into a "
                f"telemetry counter; counters must be a pure function "
                f"of (experiment, config, seed)")
    return None


def _via(via: Optional[str]) -> str:
    return f"(via local {via!r}) " if via is not None else ""


# ----------------------------------------------------------------------
# FORK002 — kernel purity over the whole call graph
# ----------------------------------------------------------------------

def _render_chain(project: Project,
                  chain: Tuple[FunctionKey, ...]) -> str:
    quals = [project.qualname(key) for key in chain]
    if len(quals) > 4:
        quals = quals[:2] + ["..."] + quals[-1:]
    return " -> ".join(quals)


@register
class KernelPurityRule(Rule):
    code = "FORK002"
    summary = ("module-level state mutated anywhere reachable from "
               "run_shard or an xir_* kernel (cross-module)")
    rationale = (
        "FORK001 proves worker purity one module at a time; a helper "
        "imported from elsewhere can still mutate its own module's "
        "state when a forked worker calls it.  This rule walks the "
        "whole-program call graph from every run_shard entry point and "
        "every xir_* batch kernel and flags any reachable function — "
        "in any module — that rebinds or mutates module-level state.  "
        "Kernels and workers must stay pure so shard count, worker "
        "reuse, and fused execution cannot change results.")

    def check_project(self, project: Project) -> Iterator[Finding]:
        entries: List[FunctionKey] = []
        for key, _function in project.iter_functions():
            name = key[1].rsplit(".", 1)[-1]
            if name == "run_shard" or name.startswith("xir_"):
                entries.append(key)
        reached = project.reachable(entries)
        for key in sorted(reached):
            function = project.functions[key]
            if not function.mutations:
                continue
            module = key[0]
            path = project.path_of(module)
            chain = _render_chain(project, reached[key])
            for mutation in function.mutations:
                if project.is_suppressed(path, self.code, mutation.line,
                                         end_line=mutation.end_line):
                    continue
                if mutation.kind == "global":
                    what = f"'global {mutation.detail}'"
                elif mutation.kind == "call":
                    what = f"mutating call {mutation.detail}"
                else:
                    what = f"mutation of module-level {mutation.detail!r}"
                yield self.project_finding(
                    path, mutation.line, mutation.column,
                    f"{what} in {project.qualname(key)}, reachable "
                    f"from a worker/kernel entry ({chain}); worker and "
                    f"kernel code must not touch module state")
