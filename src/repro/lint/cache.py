"""Incremental analysis cache keyed by per-file content hashes.

A lint run stores, per file: the content digest, the per-module
findings (post pragma-filter), the extracted
:class:`~repro.lint.summary.ModuleSummary`, and any parse error.  On
the next run a file whose digest matches is *not re-parsed* — its
summary and findings are replayed from the cache and only the (cheap)
project linking phase runs fresh.  A warm re-lint of an unchanged tree
therefore performs zero ``ast.parse`` calls; the engine reports this in
``LintReport.cache_stats`` and CI asserts it.

The cache header carries a fingerprint of everything that could change
analysis results without changing file contents: the cache format
version, the running Python version (ASTs differ across minors), and
the selected rule codes.  A fingerprint mismatch discards the whole
cache — stale-by-construction beats subtly wrong.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .model import Finding, Severity
from .summary import ModuleSummary

__all__ = [
    "AnalysisCache",
    "CACHE_VERSION",
    "DEFAULT_CACHE_NAME",
    "content_digest",
]

CACHE_VERSION = 1
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _fingerprint(rule_codes: Sequence[str]) -> str:
    payload = json.dumps({
        "cache_version": CACHE_VERSION,
        "python": list(sys.version_info[:2]),
        "rules": sorted(rule_codes),
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _finding_from_json(payload: dict) -> Finding:
    return Finding(
        path=payload["path"], line=payload["line"],
        column=payload["column"], code=payload["code"],
        message=payload["message"],
        severity=Severity(payload["severity"]))


class AnalysisCache:
    """On-disk per-file analysis memo (see module docstring)."""

    def __init__(self, path: Path, *,
                 rule_codes: Sequence[str]) -> None:
        self.path = Path(path)
        self.fingerprint = _fingerprint(rule_codes)
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("fingerprint") != self.fingerprint:
            return  # rule set / python / format changed: start cold
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def lookup(self, rel_path: str, digest: str) -> Optional[
            Tuple[Optional[ModuleSummary], List[Finding],
                  Optional[str]]]:
        """Replay one file's analysis, or ``None`` on miss.

        Returns ``(summary, findings, parse_error)``; ``summary`` is
        ``None`` for files that failed to parse.
        """
        entry = self._entries.get(rel_path)
        if entry is None or entry.get("digest") != digest:
            return None
        summary_json = entry.get("summary")
        summary = (ModuleSummary.from_json(summary_json)
                   if summary_json is not None else None)
        findings = [_finding_from_json(item)
                    for item in entry.get("findings", [])]
        return summary, findings, entry.get("parse_error")

    def store(self, rel_path: str, digest: str, *,
              summary: Optional[ModuleSummary],
              findings: Sequence[Finding],
              parse_error: Optional[str]) -> None:
        self._entries[rel_path] = {
            "digest": digest,
            "summary": summary.to_json() if summary is not None else None,
            "findings": [finding.to_json() for finding in findings],
            "parse_error": parse_error,
        }
        self._dirty = True

    def prune(self, live_paths: Sequence[str]) -> int:
        """Drop entries for files no longer in the linted tree."""
        live = set(live_paths)
        stale = [path for path in self._entries if path not in live]
        for path in stale:
            del self._entries[path]
        if stale:
            self._dirty = True
        return len(stale)

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "fingerprint": self.fingerprint,
            "entries": {path: self._entries[path]
                        for path in sorted(self._entries)},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8")
        self._dirty = False
