"""Backend-parity rules: static coverage of the op/command dispatch tables.

The conformance suite proves *dynamically* that the scalar, batched,
plan, and fused backends agree byte-for-byte; these rules prove the
cheaper structural half *statically*: every DDR command kind, every xir
primitive op, and every lowered experiment must be *handled* by each
dispatch surface that claims to consume it.  A new ``Command`` subclass
or ``ir`` op that one backend silently ignores is caught at lint time,
before a golden diff fails.

The extraction is summary-based (see
:class:`~repro.lint.summary.DispatchSummary`): ``isinstance`` targets,
``x == "ACT"`` / ``x in ("ACT", ...)`` string-comparison sets,
``actions.append(("tag", ...))`` heads, ``KIND`` class attributes, and
module-level dict/tuple literals.  All three rules are silent when
their anchor modules are absent from the linted tree, so partial runs
(fixtures, single-directory lints) do not misfire.

* PAR001 — a command ``KIND`` dispatched by one surface but unhandled
  by another (softmc / batched controller / plan compiler / program
  assembler + renderer / xir compiler).
* PAR002 — an ``ir.PRIMITIVE_OPS`` member the xir compiler does not
  lower, or a compiler-emitted action tag the executor does not
  execute.
* PAR003 — an ``XIR_LOWERED_EXPERIMENTS`` entry with no experiment
  registered under that name.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .callgraph import Project
from .model import Finding
from .rules import Rule, register
from .summary import DispatchSummary

__all__ = [
    "CommandParityRule",
    "LoweredRegistryParityRule",
    "XirOpParityRule",
]

_COMMANDS_MODULE = "repro.controller.commands"
_IR_MODULE = "repro.xir.ir"
_COMPILE_MODULE = "repro.xir.compile"
_EXECUTOR_MODULE = "repro.xir.executor"
_XIR_PACKAGE = "repro.xir"
_RUNNER_MODULE = "repro.experiments.runner"

#: The non-abstract command base class KIND; not a dispatchable kind.
_BASE_KIND = "CMD"

#: ``(module, mode, human label)`` — every surface that must cover the
#: full command-kind universe.  ``mode`` is either ``"isinstance"``
#: (targets matched against command class names) or ``"compare:<name>"``
#: (string sets compared against the kinds themselves).
_COMMAND_SURFACES: Tuple[Tuple[str, str, str], ...] = (
    ("repro.controller.softmc", "isinstance",
     "SoftMC command execution"),
    ("repro.controller.batched", "isinstance",
     "batched controller command execution"),
    ("repro.backends.plan", "isinstance",
     "plan-backend sequence compiler"),
    ("repro.controller.program", "compare:mnemonic",
     "program assembler mnemonic dispatch"),
    ("repro.controller.program", "isinstance",
     "program command renderer"),
    (_COMPILE_MODULE, "compare:kind",
     "xir command-kind scheduler"),
)


def _dispatch(project: Project,
              module: str) -> Optional[DispatchSummary]:
    summary = project.modules.get(module)
    return summary.dispatch if summary is not None else None


def _anchor(rule: Rule, project: Project, module: str,
            message: str) -> Optional[Finding]:
    """A finding pinned to line 1 of ``module`` unless suppressed."""
    path = project.path_of(module)
    if project.is_suppressed(path, rule.code, 1):
        return None
    return rule.project_finding(path, 1, 1, message)


@register
class CommandParityRule(Rule):
    code = "PAR001"
    summary = ("DDR command kind handled by one dispatch surface but "
               "missing from another")
    rationale = (
        "Every Command subclass in repro.controller.commands must be "
        "executable by the scalar SoftMC, the batched controller, the "
        "plan compiler, the program assembler/renderer, and the xir "
        "scheduler — a kind one surface silently drops diverges the "
        "backends the moment an experiment emits it.  This pins the "
        "dispatch tables to the command universe at lint time instead "
        "of waiting for a conformance-suite diff.")

    def check_project(self, project: Project) -> Iterator[Finding]:
        commands = _dispatch(project, _COMMANDS_MODULE)
        if commands is None:
            return
        kind_of: Dict[str, str] = {
            cls: kind for cls, kind in commands.class_kinds
            if kind != _BASE_KIND}
        universe = set(kind_of.values())
        if not universe:
            return
        for module, mode, label in _COMMAND_SURFACES:
            dispatch = _dispatch(project, module)
            if dispatch is None:
                continue
            if mode == "isinstance":
                covered = {kind_of[name]
                           for name in dispatch.isinstance_targets
                           if name in kind_of}
            else:
                subject = mode.split(":", 1)[1]
                covered = set(
                    dict(dispatch.compare_sets).get(subject, ()))
            missing = sorted(universe - covered)
            if not missing:
                continue
            classes = sorted(cls for cls, kind in kind_of.items()
                             if kind in missing)
            finding = _anchor(
                self, project, module,
                f"command kind(s) {', '.join(missing)} (class "
                f"{', '.join(classes)}) defined in {_COMMANDS_MODULE} "
                f"but not handled by the {label} in {module}")
            if finding is not None:
                yield finding


@register
class XirOpParityRule(Rule):
    code = "PAR002"
    summary = ("xir primitive op not lowered by the compiler, or "
               "compiled action tag not executed by the executor")
    rationale = (
        "repro.xir.ir.PRIMITIVE_OPS is the contract of what a fused "
        "program may contain; an op the compiler cannot lower or an "
        "action tag the executor cannot run turns into a runtime "
        "error (or silent no-op) only on the first experiment that "
        "uses it.  Checking the isinstance table of xir.compile and "
        "the tag table of xir.executor against what is actually "
        "declared/emitted makes the coverage a compile-time fact.")

    def check_project(self, project: Project) -> Iterator[Finding]:
        ir_dispatch = _dispatch(project, _IR_MODULE)
        compile_dispatch = _dispatch(project, _COMPILE_MODULE)
        if ir_dispatch is None or compile_dispatch is None:
            return
        primitive_ops = dict(ir_dispatch.module_tuples).get(
            "PRIMITIVE_OPS", ())
        if primitive_ops:
            targets = set(compile_dispatch.isinstance_targets)
            missing = sorted(set(primitive_ops) - targets)
            if missing:
                finding = _anchor(
                    self, project, _COMPILE_MODULE,
                    f"xir primitive op(s) {', '.join(missing)} are "
                    f"declared in {_IR_MODULE}.PRIMITIVE_OPS but have "
                    f"no isinstance lowering in {_COMPILE_MODULE}")
                if finding is not None:
                    yield finding
        executor_dispatch = _dispatch(project, _EXECUTOR_MODULE)
        if executor_dispatch is None:
            return
        emitted = set(
            dict(compile_dispatch.append_heads).get("actions", ()))
        handled = set(
            dict(executor_dispatch.compare_sets).get("tag", ()))
        if not emitted or not handled:
            return
        unexecuted = sorted(emitted - handled)
        if unexecuted:
            finding = _anchor(
                self, project, _EXECUTOR_MODULE,
                f"action tag(s) {', '.join(unexecuted)} are emitted by "
                f"{_COMPILE_MODULE} but have no handler in the "
                f"{_EXECUTOR_MODULE} tag dispatch")
            if finding is not None:
                yield finding


@register
class LoweredRegistryParityRule(Rule):
    code = "PAR003"
    summary = ("XIR_LOWERED_EXPERIMENTS entry with no registered "
               "experiment")
    rationale = (
        "XIR_LOWERED_EXPERIMENTS advertises which experiments the "
        "fused backend serves through the xir pipeline; an entry that "
        "no longer matches a key of repro.experiments.runner."
        "EXPERIMENTS routes fused requests to a KeyError.  The "
        "registry pin in tests/xir asserts the tuple's value — this "
        "rule asserts its referential integrity.")

    def check_project(self, project: Project) -> Iterator[Finding]:
        xir_dispatch = _dispatch(project, _XIR_PACKAGE)
        runner_dispatch = _dispatch(project, _RUNNER_MODULE)
        if xir_dispatch is None or runner_dispatch is None:
            return
        lowered = dict(xir_dispatch.module_tuples).get(
            "XIR_LOWERED_EXPERIMENTS", ())
        registered = set(
            dict(runner_dispatch.dict_keys).get("EXPERIMENTS", ()))
        if not lowered or not registered:
            return
        unknown = sorted(set(lowered) - registered)
        if unknown:
            finding = _anchor(
                self, project, _XIR_PACKAGE,
                f"XIR_LOWERED_EXPERIMENTS entry(ies) "
                f"{', '.join(unknown)} have no matching key in "
                f"{_RUNNER_MODULE}.EXPERIMENTS")
            if finding is not None:
                yield finding
