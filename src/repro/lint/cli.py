"""Command-line front end: ``python -m repro lint [paths]``.

Exit codes (CI contract):

* ``0`` — no findings, or every finding is covered by the baseline;
* ``1`` — at least one non-baselined finding, or a file failed to
  parse;
* ``2`` — usage error (unknown rule code, missing path, malformed
  baseline file).

``--format json`` emits a single machine-readable object with the full
finding list, the new/baselined split, and stale baseline entries;
``--write-baseline`` regenerates the baseline from the current finding
set (the sanctioned way to grandfather a new rule's debt).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from . import builtin  # noqa: F401  (importing registers the rule set)
from .baseline import (
    Baseline,
    BaselineError,
    DEFAULT_BASELINE_NAME,
    partition_findings,
)
from .engine import LintReport, lint_paths
from .rules import registered_rules, rules_for_codes

__all__ = ["main", "build_parser"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & fork-safety static analysis "
                    "(rule catalog: docs/linting.md)")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file; every finding "
                             "fails the run")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current finding set as the new "
                             "baseline and exit 0")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _resolve_baseline(arguments: argparse.Namespace) -> Optional[Baseline]:
    if arguments.no_baseline:
        return None
    if arguments.baseline is not None:
        return Baseline.load(Path(arguments.baseline))
    default = Path(DEFAULT_BASELINE_NAME)
    if default.exists():
        return Baseline.load(default)
    return None


def _print_rules(stream: TextIO) -> None:
    for code, rule_class in registered_rules().items():
        stream.write(f"{code}  [{rule_class.severity}]  "
                     f"{rule_class.summary}\n")


def _render_text(report: LintReport, new: List, baselined: List,
                 stale: List, stream: TextIO) -> None:
    for finding in new:
        stream.write(finding.render() + "\n")
    for path, message in report.parse_errors:
        stream.write(f"{path}: PARSE [error] {message}\n")
    if baselined:
        stream.write(f"# {len(baselined)} baselined finding(s) "
                     f"suppressed\n")
    for entry_path, code, _message in stale:
        stream.write(f"# stale baseline entry: {entry_path}: {code} "
                     f"(no longer found — remove it)\n")
    summary = (f"# {report.files_checked} file(s) checked, "
               f"{len(new)} new finding(s), "
               f"{len(baselined)} baselined, "
               f"{len(report.parse_errors)} parse error(s)")
    stream.write(summary + "\n")


def _render_json(report: LintReport, new: List, baselined: List,
                 stale: List, stream: TextIO) -> None:
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "findings": [f.to_json() for f in new],
        "baselined": [f.to_json() for f in baselined],
        "stale_baseline": [
            {"path": path, "code": code, "message": message}
            for path, code, message in stale
        ],
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in report.parse_errors
        ],
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def main(argv: Sequence[str] | None = None,
         stream: TextIO | None = None) -> int:
    if stream is None:
        stream = sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        _print_rules(stream)
        return EXIT_CLEAN

    try:
        codes = (None if arguments.select is None
                 else [c.strip() for c in arguments.select.split(",")
                       if c.strip()])
        rules = rules_for_codes(codes)
    except ValueError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return EXIT_USAGE

    try:
        baseline = _resolve_baseline(arguments)
    except BaselineError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return EXIT_USAGE

    try:
        report = lint_paths(arguments.paths, rules=rules)
    except FileNotFoundError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return EXIT_USAGE

    if arguments.write_baseline:
        target = Path(arguments.baseline
                      if arguments.baseline is not None
                      else DEFAULT_BASELINE_NAME)
        Baseline.from_findings(report.findings).save(target)
        stream.write(f"# baseline with {len(report.findings)} "
                     f"finding(s) written to {target}\n")
        return EXIT_CLEAN

    effective = baseline if baseline is not None else Baseline.empty()
    new, baselined, stale = partition_findings(report.findings, effective)

    if arguments.output_format == "json":
        _render_json(report, new, baselined, stale, stream)
    else:
        _render_text(report, new, baselined, stale, stream)

    if new or report.parse_errors:
        return EXIT_FINDINGS
    return EXIT_CLEAN
