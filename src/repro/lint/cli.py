"""Command-line front end: ``python -m repro lint [paths]``.

Exit codes (CI contract):

* ``0`` — no findings, or every finding is covered by the baseline;
* ``1`` — at least one non-baselined finding, or a file failed to
  parse;
* ``2`` — usage error (unknown rule code, missing path, malformed
  baseline file).

``--format json`` emits a single machine-readable object with the full
finding list, the new/baselined split, and stale baseline entries;
``--format sarif`` emits a SARIF 2.1.0 log for CI code scanning.
``--write-baseline`` regenerates the baseline from the current finding
set, pruning entries that no longer match (the sanctioned way to
grandfather a new rule's debt and to pay it down).  ``--cache PATH``
attaches the incremental analysis cache: a warm run over an unchanged
tree re-parses nothing.  ``--fix`` applies the available autofixes and
re-lints.  ``--parity`` restricts the run to the backend-parity rules.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO

from . import builtin, dataflow, parity  # noqa: F401  (registers rules)
from .baseline import (
    Baseline,
    BaselineError,
    DEFAULT_BASELINE_NAME,
    partition_findings,
)
from .cache import AnalysisCache
from .engine import LintReport, lint_paths
from .fix import fix_source, fixable_codes
from .rules import registered_rules, rules_for_codes
from .sarif import sarif_json

__all__ = ["main", "build_parser"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & fork-safety static analysis "
                    "(rule catalog: docs/linting.md)")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file; every finding "
                             "fails the run")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current finding set as the new "
                             "baseline (pruning stale entries) and "
                             "exit 0")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--parity", action="store_true",
                        help="run only the backend-parity rules "
                             "(PAR...)")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        dest="cache_path",
                        help="incremental analysis cache file; "
                             "unchanged files are not re-parsed")
    parser.add_argument("--cache-stats", action="store_true",
                        help="report cache hit/parse counts")
    parser.add_argument("--fix", action="store_true",
                        help="apply available autofixes, then re-lint")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _resolve_baseline(arguments: argparse.Namespace) -> Optional[Baseline]:
    if arguments.no_baseline:
        return None
    if arguments.baseline is not None:
        return Baseline.load(Path(arguments.baseline))
    default = Path(DEFAULT_BASELINE_NAME)
    if default.exists():
        return Baseline.load(default)
    return None


def _print_rules(stream: TextIO) -> None:
    for code, rule_class in registered_rules().items():
        stream.write(f"{code}  [{rule_class.severity}]  "
                     f"{rule_class.summary}\n")


def _render_text(report: LintReport, new: List, baselined: List,
                 stale: List, stream: TextIO,
                 show_cache_stats: bool) -> None:
    for finding in new:
        stream.write(finding.render() + "\n")
    for path, message in report.parse_errors:
        stream.write(f"{path}: PARSE [error] {message}\n")
    if baselined:
        stream.write(f"# {len(baselined)} baselined finding(s) "
                     f"suppressed\n")
    for entry_path, code, _message in stale:
        stream.write(f"# stale baseline entry: {entry_path}: {code} "
                     f"(no longer found — remove it)\n")
    if show_cache_stats and report.cache_stats:
        stats = report.cache_stats
        stream.write(f"# cache: {stats.get('files', 0)} file(s), "
                     f"{stats.get('cache_hits', 0)} hit(s), "
                     f"{stats.get('parses', 0)} parse(s)\n")
    summary = (f"# {report.files_checked} file(s) checked, "
               f"{len(new)} new finding(s), "
               f"{len(baselined)} baselined, "
               f"{len(report.parse_errors)} parse error(s)")
    stream.write(summary + "\n")


def _render_json(report: LintReport, new: List, baselined: List,
                 stale: List, stream: TextIO) -> None:
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "findings": [f.to_json() for f in new],
        "baselined": [f.to_json() for f in baselined],
        "stale_baseline": [
            {"path": path, "code": code, "message": message}
            for path, code, message in stale
        ],
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in report.parse_errors
        ],
        "cache_stats": report.cache_stats,
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def _apply_fixes(report: LintReport, stream: TextIO) -> int:
    """Rewrite files in place for every fixable finding."""
    fixable = [finding for finding in report.findings
               if finding.code in fixable_codes()]
    by_path: Dict[str, List] = {}
    for finding in fixable:
        by_path.setdefault(finding.path, []).append(finding)
    fixed = 0
    for path, findings in sorted(by_path.items()):
        target = Path(path)
        try:
            source = target.read_text(encoding="utf-8")
        except OSError:
            continue
        new_source, applied = fix_source(source, findings)
        if applied:
            target.write_text(new_source, encoding="utf-8")
            fixed += applied
    if fixed:
        stream.write(f"# fixed {fixed} finding(s) in "
                     f"{len(by_path)} file(s)\n")
    return fixed


def _write_baseline(arguments: argparse.Namespace, report: LintReport,
                    rules, stream: TextIO) -> int:
    """Regenerate the baseline: current findings win, stale entries go.

    Entries for rule codes *not* selected this run are preserved
    verbatim — ``--select DET003 --write-baseline`` must not wipe the
    grandfathered debt of every other rule.
    """
    target = Path(arguments.baseline
                  if arguments.baseline is not None
                  else DEFAULT_BASELINE_NAME)
    selected_codes = {rule.code for rule in rules}
    preserved: List = []
    pruned = 0
    if target.exists():
        previous = Baseline.load(target)
        current = {finding.identity() for finding in report.findings}
        for entry in previous.entries:
            if entry[1] not in selected_codes:
                preserved.append(entry)
            elif entry not in current:
                pruned += 1
    entries = sorted(
        {finding.identity() for finding in report.findings}
        | set(preserved))
    Baseline(entries=tuple(entries)).save(target)
    stream.write(f"# baseline with {len(entries)} finding(s) written "
                 f"to {target} ({pruned} stale entr"
                 f"{'y' if pruned == 1 else 'ies'} pruned)\n")
    return EXIT_CLEAN


def main(argv: Sequence[str] | None = None,
         stream: TextIO | None = None) -> int:
    if stream is None:
        stream = sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        _print_rules(stream)
        return EXIT_CLEAN

    try:
        if arguments.select is not None and arguments.parity:
            raise ValueError("--select and --parity are exclusive")
        if arguments.parity:
            codes: Optional[List[str]] = [
                code for code in registered_rules()
                if code.startswith("PAR")]
        elif arguments.select is not None:
            codes = [c.strip() for c in arguments.select.split(",")
                     if c.strip()]
        else:
            codes = None
        rules = rules_for_codes(codes)
    except ValueError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return EXIT_USAGE

    try:
        baseline = _resolve_baseline(arguments)
    except BaselineError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return EXIT_USAGE

    cache = None
    if arguments.cache_path is not None:
        cache = AnalysisCache(Path(arguments.cache_path),
                              rule_codes=[rule.code for rule in rules])

    try:
        report = lint_paths(arguments.paths, rules=rules, cache=cache)
        if arguments.fix and _apply_fixes(report, stream):
            # the tree changed under us: analyze the result instead.
            report = lint_paths(arguments.paths, rules=rules,
                                cache=cache)
    except FileNotFoundError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        if cache is not None:
            cache.save()

    if arguments.write_baseline:
        return _write_baseline(arguments, report, rules, stream)

    effective = baseline if baseline is not None else Baseline.empty()
    new, baselined, stale = partition_findings(report.findings, effective)

    if arguments.output_format == "json":
        _render_json(report, new, baselined, stale, stream)
    elif arguments.output_format == "sarif":
        stream.write(sarif_json(
            new + baselined, rules=rules,
            baselined=[f.identity() for f in baselined]))
    else:
        _render_text(report, new, baselined, stale, stream,
                     arguments.cache_stats)

    if new or report.parse_errors:
        return EXIT_FINDINGS
    return EXIT_CLEAN
