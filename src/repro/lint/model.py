"""Core data model for :mod:`repro.lint`.

A lint run parses every target file once into a :class:`ModuleContext`
(AST + source + suppression pragmas + dotted module name) and hands that
context to each registered rule.  Rules yield :class:`Finding` records;
the engine then drops findings suppressed by a pragma and partitions the
rest against the committed baseline.

Suppression pragmas
-------------------

A finding is suppressed by placing::

    # repro: lint-ok[CODE]

on the flagged line, on the line directly above it (for statements that
do not fit a trailing comment), or on the closing line of a multi-line
statement.  Several codes may be listed (``lint-ok[DET001,TEL001]``) and
``lint-ok[*]`` suppresses every rule on that line.  Pragmas are the
reviewed, in-source escape hatch; the baseline file (see
:mod:`repro.lint.baseline`) is for grandfathering pre-existing findings
without touching the offending code.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Tuple

import ast

__all__ = [
    "Severity",
    "Finding",
    "ModuleContext",
    "decorator_anchor_lines",
    "parse_suppressions",
    "module_name_for_path",
]

#: ``# repro: lint-ok[DET001]`` / ``# repro: lint-ok[DET001, TEL001]`` /
#: ``# repro: lint-ok[*]``
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[\s*([A-Z0-9*]+(?:\s*,\s*[A-Z0-9*]+)*)\s*\]")


class Severity(enum.Enum):
    """How seriously a finding threatens the byte-identity guarantee."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored POSIX-style relative to the lint invocation root
    so findings (and therefore baselines) are machine-independent.  The
    baseline identity deliberately excludes the line/column — grandfathered
    findings survive unrelated edits that shift them around a file.
    """

    path: str
    line: int
    column: int
    code: str
    message: str
    severity: Severity = field(compare=False, default=Severity.ERROR)

    def identity(self) -> Tuple[str, str, str]:
        """The baseline-matching key: ``(path, code, message)``."""
        return (self.path, self.code, self.message)

    def render(self) -> str:
        """``path:line:col: CODE [severity] message`` (one text line)."""
        return (f"{self.path}:{self.line}:{self.column}: {self.code} "
                f"[{self.severity}] {self.message}")

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }


def parse_suppressions(
        source: str) -> Tuple[Dict[int, FrozenSet[str]], FrozenSet[int]]:
    """Parse pragmas out of ``source``.

    Returns ``(suppressions, standalone)``: a map from 1-based line
    numbers to suppressed codes, and the subset of those lines that are
    comment-only.  Only a *standalone* pragma covers the statement below
    it — a trailing pragma on one statement must not bleed into the
    next line.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    standalone = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "lint-ok" not in text:
            continue
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group(1).split(","))
        suppressions[lineno] = codes
        if text.lstrip().startswith("#"):
            standalone.add(lineno)
    return suppressions, frozenset(standalone)


def decorator_anchor_lines(tree: ast.Module) -> Dict[int, int]:
    """Map lines of decorated defs to the top line of their decorator stack.

    A pragma placed on the standalone comment line directly above a
    decorator must suppress findings anchored anywhere on the decorator
    stack *or* on the ``def``/``class`` line itself — the decorators sit
    between the pragma and the definition, so the plain "line above"
    rule would otherwise never match.  Every line from the first
    decorator through the definition line maps to the first decorator's
    line (the anchor a pragma-above check should use).
    """
    anchors: Dict[int, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        if not node.decorator_list:
            continue
        top = min(decorator.lineno for decorator in node.decorator_list)
        for line in range(top, node.lineno + 1):
            anchors.setdefault(line, top)
    return anchors


def module_name_for_path(path: Path) -> str:
    """Best-effort dotted module name for ``path``.

    Walks the path components for the last ``repro`` package root (the
    layout is ``src/repro/...``) and joins everything from there; files
    outside the package (fixtures, scripts) fall back to their stem.
    Allowlist-carrying rules (DET002, DET004) match on this name.
    """
    parts = list(path.parts)
    stem_parts = parts[:-1] + [path.stem]
    if stem_parts and stem_parts[-1] == "__init__":
        stem_parts = stem_parts[:-1]
    for index in range(len(stem_parts) - 1, -1, -1):
        if stem_parts[index] == "repro":
            return ".".join(stem_parts[index:])
    return path.stem


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    path: str
    module: str
    tree: ast.Module
    source: str
    suppressions: Dict[int, FrozenSet[str]]
    standalone_pragma_lines: FrozenSet[int] = frozenset()
    #: finding line -> first decorator line, for decorated definitions
    #: (see :func:`decorator_anchor_lines`).
    decorator_anchors: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, *, path: str,
                    module: str | None = None) -> "ModuleContext":
        """Parse ``source`` into a context (raises ``SyntaxError``)."""
        if module is None:
            module = module_name_for_path(Path(path))
        suppressions, standalone = parse_suppressions(source)
        tree = ast.parse(source, filename=path)
        return cls(path=path, module=module,
                   tree=tree, source=source,
                   suppressions=suppressions,
                   standalone_pragma_lines=standalone,
                   decorator_anchors=decorator_anchor_lines(tree))

    def _line_suppresses(self, lineno: int, code: str) -> bool:
        codes = self.suppressions.get(lineno)
        return bool(codes) and (code in codes or "*" in codes)

    def is_suppressed(self, finding: Finding, *,
                      end_line: int | None = None) -> bool:
        """True if a pragma covers ``finding``.

        A pragma counts when it sits on the flagged line, on a
        comment-only line directly above it, on the comment-only line
        above the decorator stack of a decorated definition the finding
        anchors on, or — for multi-line statements — on the statement's
        closing line (``end_line``).
        """
        if self._line_suppresses(finding.line, finding.code):
            return True
        candidates = [finding.line - 1]
        anchor = self.decorator_anchors.get(finding.line)
        if anchor is not None:
            # Above the decorator stack, or sandwiched between
            # decorators — anywhere a standalone pragma visually
            # annotates the definition the finding anchors on.
            candidates.extend(range(anchor - 1, finding.line - 1))
        for above in candidates:
            if (above in self.standalone_pragma_lines
                    and self._line_suppresses(above, finding.code)):
                return True
        return (end_line is not None
                and end_line != finding.line
                and self._line_suppresses(end_line, finding.code))
