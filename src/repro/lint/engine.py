"""The lint engine: file discovery, rule execution, pragma filtering.

:func:`lint_paths` is the one entry point both the CLI and the test
suite use.  It walks the target paths, parses each ``.py`` file once,
runs every selected rule over the shared AST, drops pragma-suppressed
findings, and returns a :class:`LintReport` with a deterministic,
sorted finding list (so text output, JSON output, and baselines are
stable across runs and machines).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from .model import Finding, ModuleContext, Severity, module_name_for_path
from .rules import Rule, rules_for_codes

__all__ = ["LintReport", "iter_python_files", "lint_source", "lint_paths"]

#: Directories never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              "build", "dist"}


@dataclass
class LintReport:
    """Outcome of one lint run (pre-baseline)."""

    findings: List[Finding] = field(default_factory=list)
    #: ``(path, message)`` for files that failed to parse.
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings
                   if f.severity is Severity.ERROR)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"lint target does not exist: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if not _SKIP_DIRS.intersection(candidate.parts):
                yield candidate


def _statement_end_line(tree: ast.Module, line: int) -> Optional[int]:
    """Closing line of the innermost statement covering ``line``.

    Lets a suppression pragma sit on the last line of a multi-line
    statement (where a trailing comment is usually legal) rather than
    forcing it onto the opening line.
    """
    best: Optional[ast.stmt] = None
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None or not node.lineno <= line <= end:
            continue
        if best is None or node.lineno > best.lineno:
            best = node
    if best is None:
        return None
    return getattr(best, "end_lineno", None)


def lint_source(source: str, *, path: str, module: str | None = None,
                rules: Sequence[Rule] | None = None) -> List[Finding]:
    """Lint one in-memory module; returns pragma-filtered findings.

    ``module`` overrides the dotted-name inference — tests use it to
    exercise the allowlists of DET002/DET004 without fabricating a
    ``src/repro`` directory layout.
    """
    if rules is None:
        rules = rules_for_codes(None)
    ctx = ModuleContext.from_source(source, path=path, module=module)
    kept: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            end_line = _statement_end_line(ctx.tree, finding.line)
            if not ctx.is_suppressed(finding, end_line=end_line):
                kept.append(finding)
    # Sorted and deduplicated: rule execution order must never leak into
    # the report, baselines, or exit codes.
    return sorted(set(kept))


def lint_paths(paths: Sequence[Path | str], *,
               rules: Sequence[Rule] | None = None,
               root: Path | None = None) -> LintReport:
    """Lint every Python file under ``paths``.

    Finding paths are rendered POSIX-style relative to ``root`` (default:
    the current working directory) when possible, absolute otherwise —
    the same normalization the baseline file relies on.
    """
    if rules is None:
        rules = rules_for_codes(None)
    if root is None:
        root = Path.cwd()
    report = LintReport()
    for file_path in iter_python_files([Path(p) for p in paths]):
        resolved = file_path.resolve()
        try:
            rendered = resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            rendered = resolved.as_posix()
        module = module_name_for_path(resolved)
        try:
            source = file_path.read_text()
            findings = lint_source(source, path=rendered, module=module,
                                   rules=rules)
        except SyntaxError as error:
            report.parse_errors.append(
                (rendered, f"line {error.lineno}: {error.msg}"))
            continue
        except OSError as error:
            report.parse_errors.append((rendered, str(error)))
            continue
        report.files_checked += 1
        report.findings.extend(findings)
    report.findings.sort()
    return report
