"""The lint engine: discovery, two-phase rule execution, caching.

:func:`lint_paths` is the one entry point both the CLI and the test
suite use.  A run has two phases:

1. **per-module** — each ``.py`` file is parsed once; every selected
   rule's :meth:`~repro.lint.rules.Rule.check` runs over the AST,
   pragma-suppressed findings are dropped, and a
   :class:`~repro.lint.summary.ModuleSummary` is extracted.  With an
   :class:`~repro.lint.cache.AnalysisCache` attached, files whose
   content digest is unchanged skip this phase entirely — findings and
   summary replay from the cache with zero re-parsing.
2. **project** — the summaries are linked into a
   :class:`~repro.lint.callgraph.Project` and every rule's
   :meth:`~repro.lint.rules.Rule.check_project` runs once over the
   whole program (taint data-flow, backend parity, kernel purity).
   Project-phase findings are deduplicated against per-module findings
   by ``(path, line, code)`` — when both phases flag the same site, the
   per-module finding wins.

The report's finding list is deterministic and sorted, so text output,
JSON/SARIF output, and baselines are stable across runs and machines.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .callgraph import Project
from .model import Finding, ModuleContext, Severity, module_name_for_path
from .rules import Rule, rules_for_codes
from .summary import ModuleSummary, extract_summary

__all__ = ["LintReport", "iter_python_files", "lint_source", "lint_paths"]

#: Directories never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              "build", "dist"}


@dataclass
class LintReport:
    """Outcome of one lint run (pre-baseline)."""

    findings: List[Finding] = field(default_factory=list)
    #: ``(path, message)`` for files that failed to parse.
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0
    #: ``{"files": N, "cache_hits": H, "parses": P}`` — ``parses`` is
    #: the number of files that went through ``ast.parse`` this run; a
    #: warm cached run reports ``parses == 0``.
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings
                   if f.severity is Severity.ERROR)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"lint target does not exist: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if not _SKIP_DIRS.intersection(candidate.parts):
                yield candidate


def _statement_end_line(tree: ast.Module, line: int) -> Optional[int]:
    """Closing line of the innermost statement covering ``line``.

    Lets a suppression pragma sit on the last line of a multi-line
    statement (where a trailing comment is usually legal) rather than
    forcing it onto the opening line.
    """
    best: Optional[ast.stmt] = None
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None or not node.lineno <= line <= end:
            continue
        if best is None or node.lineno > best.lineno:
            best = node
    if best is None:
        return None
    return getattr(best, "end_lineno", None)


def _module_findings(ctx: ModuleContext,
                     rules: Sequence[Rule]) -> List[Finding]:
    kept: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            end_line = _statement_end_line(ctx.tree, finding.line)
            if not ctx.is_suppressed(finding, end_line=end_line):
                kept.append(finding)
    # Sorted and deduplicated: rule execution order must never leak into
    # the report, baselines, or exit codes.
    return sorted(set(kept))


def lint_source(source: str, *, path: str, module: str | None = None,
                rules: Sequence[Rule] | None = None) -> List[Finding]:
    """Lint one in-memory module (per-module phase only).

    ``module`` overrides the dotted-name inference — tests use it to
    exercise the allowlists of DET002/DET004 without fabricating a
    ``src/repro`` directory layout.  Cross-module rules need a file
    tree; use :func:`lint_paths` for them.
    """
    if rules is None:
        rules = rules_for_codes(None)
    ctx = ModuleContext.from_source(source, path=path, module=module)
    return _module_findings(ctx, rules)


def lint_paths(paths: Sequence[Path | str], *,
               rules: Sequence[Rule] | None = None,
               root: Path | None = None,
               cache=None) -> LintReport:
    """Lint every Python file under ``paths`` (both phases).

    Finding paths are rendered POSIX-style relative to ``root`` (default:
    the current working directory) when possible, absolute otherwise —
    the same normalization the baseline file relies on.  ``cache`` is an
    optional :class:`~repro.lint.cache.AnalysisCache`; the caller saves
    it after the run.
    """
    if rules is None:
        rules = rules_for_codes(None)
    if root is None:
        root = Path.cwd()
    report = LintReport()
    summaries: List[ModuleSummary] = []
    seen_paths: List[str] = []
    hits = parses = 0
    for file_path in iter_python_files([Path(p) for p in paths]):
        resolved = file_path.resolve()
        try:
            rendered = resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            rendered = resolved.as_posix()
        module = module_name_for_path(resolved)
        try:
            raw = file_path.read_bytes()
        except OSError as error:
            report.parse_errors.append((rendered, str(error)))
            continue
        seen_paths.append(rendered)

        digest = None
        if cache is not None:
            from .cache import content_digest
            digest = content_digest(raw)
            replayed = cache.lookup(rendered, digest)
            if replayed is not None:
                summary, findings, parse_error = replayed
                hits += 1
                if parse_error is not None:
                    report.parse_errors.append((rendered, parse_error))
                    continue
                if summary is not None:
                    summaries.append(summary)
                report.files_checked += 1
                report.findings.extend(findings)
                continue

        try:
            source = raw.decode("utf-8")
            ctx = ModuleContext.from_source(source, path=rendered,
                                            module=module)
        except (SyntaxError, UnicodeDecodeError) as error:
            parses += 1
            lineno = getattr(error, "lineno", None)
            message = (f"line {lineno}: {error.msg}"
                       if isinstance(error, SyntaxError)
                       else str(error))
            report.parse_errors.append((rendered, message))
            if cache is not None:
                cache.store(rendered, digest, summary=None, findings=[],
                            parse_error=message)
            continue
        parses += 1
        findings = _module_findings(ctx, rules)
        summary = extract_summary(
            ctx.tree, module=module, path=rendered,
            suppressions=ctx.suppressions,
            standalone=ctx.standalone_pragma_lines)
        summaries.append(summary)
        if cache is not None:
            cache.store(rendered, digest, summary=summary,
                        findings=findings, parse_error=None)
        report.files_checked += 1
        report.findings.extend(findings)

    if cache is not None:
        cache.prune(seen_paths)

    # project phase: link summaries, run whole-program rules, dedup.
    project = Project(summaries)
    occupied = {(f.path, f.line, f.code) for f in report.findings}
    for rule in rules:
        for finding in rule.check_project(project):
            key = (finding.path, finding.line, finding.code)
            if key in occupied:
                continue
            occupied.add(key)
            report.findings.append(finding)

    report.cache_stats = {"files": len(seen_paths), "cache_hits": hits,
                          "parses": parses}
    report.findings.sort()
    return report
