"""Whole-program linking: symbol table, call graph, taint fixpoints.

A :class:`Project` is built from the :class:`~repro.lint.summary.ModuleSummary`
records of every linted file (freshly extracted or loaded from the
incremental cache — linking never touches an AST).  It provides the
three resolution services the project-phase rules need:

* **name resolution** — a dotted name as written in a module is mapped
  through that module's import table (and through package re-export
  chains) to a canonical absolute name, so ``from numpy.random import
  default_rng as mk`` cannot hide ``mk()`` from DET001;
* **call resolution** — a call site is resolved to the summary of the
  project function it targets, including ``self.method(...)``,
  constructor-typed locals (``mc = SoftMC(chip); mc.run(...)``) and
  constructor-typed instance attributes (``self.mc = SoftMC(...)``);
* **taint fixpoints** — the set of project functions whose return value
  is (transitively) a wall-clock read or an ambient RNG draw, computed
  by iterating over ``returned_calls`` edges until stable.

Resolution is deliberately conservative: anything that cannot be proven
to target a project function resolves to ``None`` and produces no graph
edge.  Rules built on the graph therefore under-approximate (no false
positives from wild guesses) except where a name resolves exactly.
"""

from __future__ import annotations

from typing import (Callable, Dict, FrozenSet, Iterable, Iterator, List,
                    Optional, Sequence, Set, Tuple)

from .summary import CallSite, ClassSummary, FunctionSummary, ModuleSummary

__all__ = ["FunctionKey", "Project"]

#: ``(module, qual)`` — the identity of one project function or method.
FunctionKey = Tuple[str, str]

#: Re-export chains longer than this are cut (defensive: a cycle of
#: ``from . import x`` aliases must not hang the linker).
_MAX_REEXPORT_DEPTH = 10


class Project:
    """The linked whole-program view over a set of module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self.by_path: Dict[str, ModuleSummary] = {}
        self.functions: Dict[FunctionKey, FunctionSummary] = {}
        self.classes: Dict[Tuple[str, str], ClassSummary] = {}
        self._imports: Dict[str, Dict[str, str]] = {}
        self._locals: Dict[str, Set[str]] = {}
        self._canonical_cache: Dict[str, str] = {}
        self._taint_cache: Dict[str, FrozenSet[FunctionKey]] = {}

        for summary in summaries:
            self.modules[summary.module] = summary
            self.by_path[summary.path] = summary
            self._imports[summary.module] = dict(summary.imports)
            local_names: Set[str] = set(summary.module_names)
            for function in summary.functions:
                self.functions[(summary.module, function.qual)] = function
                if "." not in function.qual:
                    local_names.add(function.qual)
            for cls in summary.classes:
                self.classes[(summary.module, cls.name)] = cls
                local_names.add(cls.name)
            self._locals[summary.module] = local_names

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------

    def resolve_name(self, module: str, dotted: str) -> str:
        """Absolute canonical form of ``dotted`` as written in ``module``.

        Unresolvable names (builtins, attributes of locals, libraries
        outside the project) come back unchanged except for import-alias
        substitution — callers match them against known external names
        (``time.time``, ``numpy.random.*``...).
        """
        head, _, rest = dotted.partition(".")
        imports = self._imports.get(module)
        if imports is not None and head in imports:
            target = imports[head] + ("." + rest if rest else "")
            return self._canonical(target)
        if head in self._locals.get(module, ()):
            return self._canonical(f"{module}.{dotted}")
        return dotted

    def _canonical(self, absolute: str, depth: int = 0) -> str:
        if depth == 0:
            cached = self._canonical_cache.get(absolute)
            if cached is not None:
                return cached
        result = absolute
        if depth < _MAX_REEXPORT_DEPTH and absolute not in self.modules:
            parts = absolute.split(".")
            for index in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:index])
                if prefix not in self.modules:
                    continue
                rest = parts[index:]
                imports = self._imports.get(prefix, {})
                if rest[0] in imports:
                    target = imports[rest[0]]
                    if rest[1:]:
                        target += "." + ".".join(rest[1:])
                    result = self._canonical(target, depth + 1)
                break
        if depth == 0:
            self._canonical_cache[absolute] = result
        return result

    def split_absolute(
            self, absolute: str) -> Optional[Tuple[str, Tuple[str, ...]]]:
        """Split a canonical name into ``(project module, remainder)``."""
        parts = absolute.split(".")
        for index in range(len(parts), 0, -1):
            prefix = ".".join(parts[:index])
            if prefix in self.modules:
                return prefix, tuple(parts[index:])
        return None

    def lookup_function(self, absolute: str) -> Optional[FunctionKey]:
        """The project function a canonical absolute name denotes."""
        located = self.split_absolute(absolute)
        if located is None:
            return None
        module, rest = located
        if len(rest) == 1:
            key = (module, rest[0])
            if key in self.functions:
                return key
            if (module, rest[0]) in self.classes:
                init = (module, f"{rest[0]}.__init__")
                return init if init in self.functions else None
        elif len(rest) == 2:
            key = (module, f"{rest[0]}.{rest[1]}")
            if key in self.functions:
                return key
        return None

    def lookup_class(self, module: str,
                     dotted: str) -> Optional[Tuple[str, str]]:
        """Resolve a constructor name to the project class it builds."""
        located = self.split_absolute(self.resolve_name(module, dotted))
        if located is None:
            return None
        owner, rest = located
        if len(rest) == 1 and (owner, rest[0]) in self.classes:
            return (owner, rest[0])
        return None

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------

    def resolve_call(self, module: str, function: FunctionSummary,
                     site: CallSite) -> Optional[FunctionKey]:
        """The project function ``site`` targets, or ``None``."""
        parts = site.name.split(".")
        if parts[0] in ("self", "cls") and "." in function.qual:
            own_class = function.qual.split(".", 1)[0]
            if len(parts) == 2:
                key = (module, f"{own_class}.{parts[1]}")
                return key if key in self.functions else None
            if len(parts) == 3:
                cls = self.classes.get((module, own_class))
                if cls is not None:
                    ctor = dict(cls.attr_types).get(parts[1])
                    if ctor is not None:
                        return self._method_of(module, ctor, parts[2])
            return None
        if len(parts) == 2:
            assigned = dict(function.assigned_calls).get(parts[0])
            if assigned is not None:
                resolved = self._method_of(module, assigned.name, parts[1])
                if resolved is not None:
                    return resolved
        return self.lookup_function(self.resolve_name(module, site.name))

    def _method_of(self, module: str, ctor: str,
                   method: str) -> Optional[FunctionKey]:
        cls = self.lookup_class(module, ctor)
        if cls is None:
            return None
        owner, name = cls
        key = (owner, f"{name}.{method}")
        return key if key in self.functions else None

    def callees(self, key: FunctionKey,
                ) -> Iterator[Tuple[FunctionKey, CallSite]]:
        """Resolved outgoing call edges of one function."""
        function = self.functions.get(key)
        if function is None:
            return
        module = key[0]
        for site in function.calls:
            target = self.resolve_call(module, function, site)
            if target is not None:
                yield target, site

    def reachable(self, entries: Sequence[FunctionKey],
                  ) -> Dict[FunctionKey, Tuple[FunctionKey, ...]]:
        """Call-graph closure of ``entries``.

        Returns ``{function: provenance}`` where provenance is the call
        chain from its entry (entry first, function last) — cycles are
        handled, every function is visited once via its first-found
        chain.
        """
        order: Dict[FunctionKey, Tuple[FunctionKey, ...]] = {}
        stack: List[Tuple[FunctionKey, Tuple[FunctionKey, ...]]] = [
            (entry, (entry,)) for entry in sorted(entries, reverse=True)
            if entry in self.functions]
        while stack:
            key, chain = stack.pop()
            if key in order:
                continue
            order[key] = chain
            for target, _site in self.callees(key):
                if target not in order:
                    stack.append((target, chain + (target,)))
        return order

    # ------------------------------------------------------------------
    # taint fixpoints
    # ------------------------------------------------------------------

    def return_taint(
            self, label: str,
            is_source: Callable[[str, CallSite], bool],
    ) -> FrozenSet[FunctionKey]:
        """Functions whose return value (transitively) comes from a source.

        ``is_source(absolute_name, site)`` classifies a returned call
        against external primitives (e.g. ``time.time``); on top of
        those roots the fixpoint adds every function returning a call
        into an already-tainted function.  Results are cached per
        ``label`` for the lifetime of the project.
        """
        cached = self._taint_cache.get(label)
        if cached is not None:
            return cached
        tainted: Set[FunctionKey] = set()
        changed = True
        while changed:
            changed = False
            for key, function in self.functions.items():
                if key in tainted:
                    continue
                module = key[0]
                for site in function.returned_calls:
                    target = self.resolve_call(module, function, site)
                    if target is not None and target in tainted:
                        tainted.add(key)
                        changed = True
                        break
                    if is_source(self.resolve_name(module, site.name),
                                 site):
                        tainted.add(key)
                        changed = True
                        break
        result = frozenset(tainted)
        self._taint_cache[label] = result
        return result

    # ------------------------------------------------------------------
    # pragma filtering (the project phase has no AST to consult)
    # ------------------------------------------------------------------

    def is_suppressed(self, path: str, code: str, line: int,
                      end_line: Optional[int] = None) -> bool:
        """True when a pragma in ``path`` covers ``(code, line)``."""
        summary = self.by_path.get(path)
        if summary is None:
            return False
        suppressions = {entry_line: codes
                        for entry_line, codes in summary.suppressions}
        standalone = set(summary.standalone_pragma_lines)

        def line_suppresses(lineno: int) -> bool:
            codes = suppressions.get(lineno)
            return bool(codes) and (code in codes or "*" in codes)

        if line_suppresses(line):
            return True
        if line - 1 in standalone and line_suppresses(line - 1):
            return True
        return (end_line is not None and end_line != line
                and line_suppresses(end_line))

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    def iter_functions(self) -> Iterator[Tuple[FunctionKey,
                                               FunctionSummary]]:
        for key in sorted(self.functions):
            yield key, self.functions[key]

    def path_of(self, module: str) -> str:
        return self.modules[module].path

    def qualname(self, key: FunctionKey) -> str:
        return f"{key[0]}.{key[1]}"
