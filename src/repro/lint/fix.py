"""Autofixes for the mechanical rules (``repro lint --fix``).

A fixer takes a parsed tree plus one finding and returns a *splice*: a
source span and the prefix/suffix to wrap it in.  Splices are applied
bottom-up (so earlier edits never shift later spans) and the CLI
re-lints after fixing, so the report always describes the post-fix
tree.

Only rules whose remedy is purely syntactic get a fixer — currently
DET003, whose fix wraps the offending set expression in ``sorted(...)``
exactly as the rule's message prescribes.  Semantic rules (DET001,
FORK001, ...) stay manual: their fixes change program meaning.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .model import Finding

__all__ = ["FIXERS", "Splice", "fixable_codes", "fix_source"]

#: ``(start_line, start_col, end_line, end_col, prefix, suffix)`` with
#: 1-based lines and 0-based columns (AST conventions).
Splice = Tuple[int, int, int, int, str, str]

Fixer = Callable[[ast.Module, Finding], Optional[Splice]]


def _node_at(tree: ast.Module, line: int,
             column: int) -> Optional[ast.expr]:
    """The expression node anchored exactly at ``(line, column)``."""
    best: Optional[ast.expr] = None
    for node in ast.walk(tree):
        if not isinstance(node, ast.expr):
            continue
        if node.lineno != line or node.col_offset != column:
            continue
        if getattr(node, "end_lineno", None) is None:
            continue
        if best is None or _span(node) > _span(best):
            best = node  # widest expression wins (the flagged target)
    return best


def _span(node: ast.expr) -> Tuple[int, int]:
    return (node.end_lineno - node.lineno,
            node.end_col_offset - node.col_offset)


def _fix_unsorted_set(tree: ast.Module,
                      finding: Finding) -> Optional[Splice]:
    node = _node_at(tree, finding.line, finding.column - 1)
    if node is None:
        return None
    return (node.lineno, node.col_offset, node.end_lineno,
            node.end_col_offset, "sorted(", ")")


FIXERS: Dict[str, Fixer] = {
    "DET003": _fix_unsorted_set,
}


def fixable_codes() -> frozenset:
    return frozenset(FIXERS)


def fix_source(source: str,
               findings: Sequence[Finding]) -> Tuple[str, int]:
    """Apply every available fix for ``findings`` to ``source``.

    Returns ``(new_source, applied_count)``; the caller re-lints the
    result.  Unfixable findings (no fixer, or the anchor node no longer
    matches) are skipped silently — they stay in the report.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    splices: List[Splice] = []
    for finding in findings:
        fixer = FIXERS.get(finding.code)
        if fixer is None:
            continue
        splice = fixer(tree, finding)
        if splice is not None and splice not in splices:
            splices.append(splice)
    if not splices:
        return source, 0
    lines = source.split("\n")
    for start_line, start_col, end_line, end_col, prefix, suffix in sorted(
            splices, reverse=True):
        lines[end_line - 1] = (lines[end_line - 1][:end_col] + suffix
                               + lines[end_line - 1][end_col:])
        lines[start_line - 1] = (lines[start_line - 1][:start_col]
                                 + prefix
                                 + lines[start_line - 1][start_col:])
    return "\n".join(lines), len(splices)
