"""repro.lint — determinism & fork-safety static analysis.

The simulator's central contract is byte-identity: scalar, batched,
re-sharded, and N-worker runs of the same (experiment, config, seed)
produce identical results, traces, and telemetry counters.  Golden
files and identity tests enforce that contract *dynamically*; this
package enforces it *statically*, flagging the source patterns that
historically break it (ambient RNG, wall-clock reads, unordered set
iteration, environment coupling, fork-unsafe worker state, polluted
telemetry counters) before they ever execute.

Since the interprocedural engine landed, analysis runs in two phases:
a per-module pass over each AST, and a whole-program pass over the
linked :class:`~repro.lint.callgraph.Project` (taint data-flow across
function/module boundaries, backend-parity checking, kernel-purity
proofs).  Per-file work is memoized in an incremental cache keyed by
content hashes, and reports render as text, JSON, or SARIF 2.1.0.

Entry points:

* ``python -m repro lint [paths]`` — the CLI (see :mod:`.cli`);
* :func:`lint_paths` / :func:`lint_source` — the library API used by
  the meta-test in ``tests/lint``;
* :class:`Rule` + :func:`register` — the plug-in surface for new rules
  (workflow documented in ``docs/linting.md``).
"""

from __future__ import annotations

from . import builtin, dataflow, parity  # noqa: F401  (registers rules)
from .baseline import Baseline, BaselineError, partition_findings
from .cache import AnalysisCache
from .callgraph import Project
from .engine import LintReport, iter_python_files, lint_paths, lint_source
from .fix import fix_source, fixable_codes
from .model import Finding, ModuleContext, Severity
from .rules import Rule, register, registered_rules, rules_for_codes
from .sarif import render_sarif, sarif_json
from .summary import ModuleSummary, extract_summary

__all__ = [
    "AnalysisCache",
    "Baseline",
    "BaselineError",
    "Finding",
    "LintReport",
    "ModuleContext",
    "ModuleSummary",
    "Project",
    "Rule",
    "Severity",
    "extract_summary",
    "fix_source",
    "fixable_codes",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "partition_findings",
    "register",
    "registered_rules",
    "render_sarif",
    "rules_for_codes",
    "sarif_json",
]
