"""repro.lint — determinism & fork-safety static analysis.

The simulator's central contract is byte-identity: scalar, batched,
re-sharded, and N-worker runs of the same (experiment, config, seed)
produce identical results, traces, and telemetry counters.  Golden
files and identity tests enforce that contract *dynamically*; this
package enforces it *statically*, flagging the source patterns that
historically break it (ambient RNG, wall-clock reads, unordered set
iteration, environment coupling, fork-unsafe worker state, polluted
telemetry counters) before they ever execute.

Entry points:

* ``python -m repro lint [paths]`` — the CLI (see :mod:`.cli`);
* :func:`lint_paths` / :func:`lint_source` — the library API used by
  the meta-test in ``tests/lint``;
* :class:`Rule` + :func:`register` — the plug-in surface for new rules
  (workflow documented in ``docs/linting.md``).
"""

from __future__ import annotations

from . import builtin  # noqa: F401  (importing registers the rule set)
from .baseline import Baseline, BaselineError, partition_findings
from .engine import LintReport, iter_python_files, lint_paths, lint_source
from .model import Finding, ModuleContext, Severity
from .rules import Rule, register, registered_rules, rules_for_codes

__all__ = [
    "Baseline",
    "BaselineError",
    "Finding",
    "LintReport",
    "ModuleContext",
    "Rule",
    "Severity",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "partition_findings",
    "register",
    "registered_rules",
    "rules_for_codes",
]
