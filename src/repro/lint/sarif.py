"""SARIF 2.1.0 rendering for CI code-scanning annotations.

``repro lint --format sarif`` emits one run of the ``repro-lint``
driver conforming to the SARIF 2.1.0 schema
(https://json.schemastore.org/sarif-2.1.0.json): the full rule catalog
(with each rule's summary and rationale) under
``tool.driver.rules``, and one ``result`` per finding with a physical
location.  Baselined findings are still emitted but carry an
``external`` suppression, so code-scanning UIs show them as reviewed
rather than new.

Only data already in the report is serialized — rendering is pure and
deterministic (rules and results are sorted), so the SARIF artifact is
byte-stable for an unchanged tree.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .model import Finding, Severity
from .rules import Rule

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif", "sarif_json"]

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

_TOOL_NAME = "repro-lint"
_TOOL_VERSION = "2.0.0"

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def render_sarif(findings: Sequence[Finding], *,
                 rules: Sequence[Rule],
                 baselined: Iterable[Tuple[str, str, str]] = (),
                 ) -> dict:
    """Build the SARIF log object for one lint run.

    ``baselined`` is the set of finding identities (``Finding.identity()``
    triples) grandfathered by the committed baseline; matching results
    are marked suppressed.
    """
    ordered_rules = sorted(rules, key=lambda rule: rule.code)
    rule_index: Dict[str, int] = {
        rule.code: index for index, rule in enumerate(ordered_rules)}
    driver_rules: List[dict] = [
        {
            "id": rule.code,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {
                "level": _LEVELS.get(rule.severity, "error")},
            "helpUri": "https://example.invalid/docs/linting.md"
                       f"#{rule.code.lower()}",
        }
        for rule in ordered_rules
    ]
    suppressed: Set[Tuple[str, str, str]] = set(baselined)
    results: List[dict] = []
    for finding in sorted(findings):
        result = {
            "ruleId": finding.code,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                },
            }],
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        if finding.identity() in suppressed:
            result["suppressions"] = [{"kind": "external"}]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "version": _TOOL_VERSION,
                    "informationUri":
                        "https://github.com/fracdram/repro",
                    "rules": driver_rules,
                },
            },
            "columnKind": "unicodeCodePoints",
            "results": results,
        }],
    }


def sarif_json(findings: Sequence[Finding], *, rules: Sequence[Rule],
               baselined: Iterable[Tuple[str, str, str]] = ()) -> str:
    """The SARIF log serialized with stable key order."""
    log = render_sarif(findings, rules=rules, baselined=baselined)
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
