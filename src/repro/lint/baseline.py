"""Baseline files: grandfathering pre-existing findings.

A baseline is a committed JSON file listing findings that existed when a
rule was introduced.  The linter still *reports* baselined findings (in
the ``baselined`` section) but does not fail on them, so a new rule can
land with zero code churn and the debt can be paid down incrementally.
Identity is ``(path, code, message)`` — line numbers are deliberately
excluded so unrelated edits that shift a grandfathered finding around a
file do not invalidate the baseline.

The file format is versioned, sorted, and newline-terminated so diffs
stay reviewable::

    {
      "version": 1,
      "findings": [
        {"path": "src/repro/x.py", "code": "DET002", "message": "..."}
      ]
    }

Stale entries (baselined findings that no longer occur) are surfaced by
the linter so the file shrinks as debt is fixed; ``--write-baseline``
regenerates it from the current finding set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple

from .model import Finding

__all__ = ["Baseline", "BaselineError", "partition_findings"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


@dataclass(frozen=True)
class Baseline:
    """An immutable set of grandfathered finding identities."""

    entries: Tuple[Tuple[str, str, str], ...] = ()
    path: Path | None = field(default=None, compare=False)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls()

    @classmethod
    def from_findings(cls, findings: Sequence[Finding],
                      path: Path | None = None) -> "Baseline":
        entries = tuple(sorted({f.identity() for f in findings}))
        return cls(entries=entries, path=path)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise BaselineError(
                f"{path}: baseline is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise BaselineError(f"{path}: baseline must be a JSON object")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise BaselineError(
                f"{path}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})")
        raw = payload.get("findings")
        if not isinstance(raw, list):
            raise BaselineError(f"{path}: 'findings' must be a list")
        entries: List[Tuple[str, str, str]] = []
        for index, item in enumerate(raw):
            if not isinstance(item, dict) or not all(
                    isinstance(item.get(key), str)
                    for key in ("path", "code", "message")):
                raise BaselineError(
                    f"{path}: findings[{index}] must carry string "
                    f"'path', 'code' and 'message' fields")
            entries.append((item["path"], item["code"], item["message"]))
        return cls(entries=tuple(sorted(set(entries))), path=path)

    def save(self, path: Path) -> Path:
        payload = {
            "version": BASELINE_VERSION,
            "findings": [
                {"path": entry_path, "code": code, "message": message}
                for entry_path, code, message in self.entries
            ],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
        return path

    def __contains__(self, finding: Finding) -> bool:
        return finding.identity() in set(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def partition_findings(
        findings: Sequence[Finding], baseline: Baseline,
) -> Tuple[List[Finding], List[Finding], List[Tuple[str, str, str]]]:
    """Split findings into ``(new, baselined)`` plus stale entries.

    ``stale`` lists baseline entries that matched nothing this run —
    debt that has been paid and should be dropped from the file.
    """
    known = set(baseline.entries)
    new = [f for f in findings if f.identity() not in known]
    baselined = [f for f in findings if f.identity() in known]
    present = {f.identity() for f in findings}
    stale = [entry for entry in baseline.entries if entry not in present]
    return new, baselined, stale
