"""Destructive verification of fractional values (Section IV-B).

A fractional value cannot simply be read out — activation fires the sense
amplifiers, which rail the cell.  The paper proposes two indirect methods,
both implemented here:

* **MAJ3 method** (:func:`verify_frac_by_maj3`) — perform MAJ3 twice with
  the same fractional value in two operand rows and a carrier of all-ones
  (giving X1) then all-zeros (giving X2).  Columns where X1 = 1 and X2 = 0
  prove the stored value was neither rail: a genuine fractional value.

* **Retention method** — the monotone relationship between initial cell
  voltage and retention time; implemented in
  :mod:`repro.analysis.retention` and re-exported here for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..errors import ConfigurationError
from .ops import FracDram, MultiRowPlan

__all__ = ["MajVerifyResult", "verify_frac_by_maj3",
           "batched_verify_frac_by_maj3", "COMBO_LABELS"]

#: The four possible (X1, X2) outcomes, in reporting order.
COMBO_LABELS: tuple[str, ...] = ("X1=1,X2=1", "X1=0,X2=0", "X1=1,X2=0", "X1=0,X2=1")

FracRowSpec = Literal["R1R2", "R1R3"]


@dataclass(frozen=True)
class MajVerifyResult:
    """Per-column X1/X2 outcomes of the MAJ3 verification procedure."""

    x1: np.ndarray
    x2: np.ndarray

    @property
    def verified_mask(self) -> np.ndarray:
        """Columns proving a fractional value (X1 = 1 and X2 = 0)."""
        return self.x1 & ~self.x2

    @property
    def verified_fraction(self) -> float:
        return float(np.mean(self.verified_mask))

    def combo_fractions(self) -> dict[str, float]:
        """Proportion of columns in each (X1, X2) combination (Figure 7)."""
        x1, x2 = self.x1, self.x2
        return {
            "X1=1,X2=1": float(np.mean(x1 & x2)),
            "X1=0,X2=0": float(np.mean(~x1 & ~x2)),
            "X1=1,X2=0": float(np.mean(x1 & ~x2)),
            "X1=0,X2=1": float(np.mean(~x1 & x2)),
        }


def _prepare_frac_rows(fd: FracDram, plan: MultiRowPlan, rows: tuple[int, ...],
                       init_ones: bool, n_frac: int) -> None:
    for row in rows:
        fd.fill_row(plan.bank, row, init_ones)
        if n_frac > 0:
            fd.frac(plan.bank, row, n_frac)


def verify_frac_by_maj3(
    fd: FracDram,
    bank: int,
    *,
    frac_rows: FracRowSpec = "R1R2",
    init_ones: bool = True,
    n_frac: int = 1,
    subarray: int = 0,
) -> MajVerifyResult:
    """Run the Section IV-B2 procedure on one sub-array's MAJ3 triple.

    ``frac_rows`` selects which two of the opened triple (R1, R2, R3) hold
    the fractional value — the paper evaluates both "R1R2" (carrier in R3)
    and "R1R3" (carrier in R2).  ``n_frac = 0`` is the no-Frac baseline,
    in which the rows simply hold the init value.
    """
    plan = fd.triple_plan(bank, subarray)
    r1, r2, r3 = plan.opened
    if frac_rows == "R1R2":
        fractional, carrier = (r1, r2), r3
    elif frac_rows == "R1R3":
        fractional, carrier = (r1, r3), r2
    else:
        raise ConfigurationError(
            f"frac_rows must be 'R1R2' or 'R1R3', got {frac_rows!r}")

    ones = np.ones(fd.columns, dtype=bool)

    _prepare_frac_rows(fd, plan, fractional, init_ones, n_frac)
    fd.write_row(bank, carrier, ones)
    fd.multi_row_activate(plan)
    x1 = fd.read_row(bank, plan.opened[0])

    _prepare_frac_rows(fd, plan, fractional, init_ones, n_frac)
    fd.write_row(bank, carrier, ~ones)
    fd.multi_row_activate(plan)
    x2 = fd.read_row(bank, plan.opened[0])

    return MajVerifyResult(x1=x1.astype(bool), x2=x2.astype(bool))


def batched_verify_frac_by_maj3(
    bfd,
    plan: MultiRowPlan,
    *,
    frac_rows: FracRowSpec = "R1R2",
    init_ones: bool = True,
    n_frac: int = 1,
    lanes: "list[int] | None" = None,
) -> list[MajVerifyResult]:
    """Run :func:`verify_frac_by_maj3` on every lane of a batch at once.

    ``bfd`` is a :class:`~repro.core.batched_ops.BatchedFracDram`; the
    plan is shared across lanes (it depends only on decoder/row-map/
    geometry, uniform within a group cohort).  Lane ``i`` of the result
    list is byte-identical to the scalar procedure on chip ``i``.

    ``lanes`` restricts the pass to a subset of the batch — the serving
    layer uses this to run per-vendor-group attestation sub-passes on a
    mixed :meth:`~repro.dram.batched.BatchedChip.from_fleet` cohort,
    whose groups resolve different multi-row plans.  The result list is
    ordered like ``lanes`` (default: all lanes in order).
    """
    r1, r2, r3 = plan.opened
    if frac_rows == "R1R2":
        fractional, carrier = (r1, r2), r3
    elif frac_rows == "R1R3":
        fractional, carrier = (r1, r3), r2
    else:
        raise ConfigurationError(
            f"frac_rows must be 'R1R2' or 'R1R3', got {frac_rows!r}")

    if lanes is None:
        lanes = bfd.all_lanes()
    else:
        lanes = [int(lane) for lane in lanes]
        if not lanes:
            return []
    bank = plan.bank
    ones = np.ones(bfd.columns, dtype=bool)

    def uniform(row: int) -> list[int]:
        return [int(row)] * len(lanes)

    def prepare() -> None:
        for row in fractional:
            bfd.fill_row(bank, uniform(row), init_ones, lanes)
            if n_frac > 0:
                bfd.frac(bank, uniform(row), n_frac, lanes)

    prepare()
    bfd.write_row(bank, uniform(carrier), ones, lanes)
    bfd.multi_row_activate(plan, lanes)
    x1 = bfd.read_row(bank, uniform(plan.opened[0]), lanes)

    prepare()
    bfd.write_row(bank, uniform(carrier), ~ones, lanes)
    bfd.multi_row_activate(plan, lanes)
    x2 = bfd.read_row(bank, uniform(plan.opened[0]), lanes)

    return [MajVerifyResult(x1=x1[lane].astype(bool),
                            x2=x2[lane].astype(bool))
            for lane in range(len(lanes))]
