"""Refresh scheduling around fractional values (Section III-C).

Any row activation — including REFRESH — destroys a fractional value, so
while an application holds fractional state the controller must steer
refresh away from those rows, while still refreshing rows whose normal
binary data must survive.  The nominal per-row refresh period is 64 ms,
comfortably longer than every FracDRAM application (a PUF evaluation takes
~1.5 us), but the scheduler must be careful: a single REFRESH landing
mid-application ruins it.

:class:`RefreshManager` models this policy:

* ``track`` registers rows whose binary data must be preserved;
* ``pin_fractional`` marks rows currently holding fractional values —
  refreshing them raises :class:`RefreshViolationError`;
* ``elapse`` advances simulated time while keeping tracked, unpinned rows
  refreshed.  Time is advanced in chunks with a refresh pass after each
  chunk; within a chunk the leakage of a healthy cell is orders of
  magnitude below the sensing threshold, so chunked refresh is equivalent
  to the real 64 ms cadence for every cell whose retention exceeds the
  chunk length (the paper itself reports < 1e-4 of cells retain for less
  than seconds).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RefreshViolationError
from .ops import FracDram

__all__ = ["RefreshManager", "PinRecord"]


@dataclass(frozen=True)
class PinRecord:
    """When a row was pinned, in simulated nanoseconds since epoch."""

    bank: int
    row: int
    pinned_at_ns: float


class RefreshManager:
    """Keeps tracked rows alive while protecting fractional rows."""

    def __init__(self, fd: FracDram, *, chunk_s: float = 1.0,
                 max_chunks: int = 64) -> None:
        if chunk_s <= 0:
            raise ValueError("chunk_s must be positive")
        self.fd = fd
        self.chunk_s = chunk_s
        self.max_chunks = max_chunks
        self._tracked: set[tuple[int, int]] = set()
        self._pinned: dict[tuple[int, int], PinRecord] = {}

    # ------------------------------------------------------------------

    def _now_ns(self) -> float:
        device_time_s = getattr(self.fd.device, "time_s", 0.0)
        return device_time_s * 1e9 + self.fd.mc.elapsed_ns

    def track(self, bank: int, row: int) -> None:
        """Keep this row's binary data refreshed during ``elapse``."""
        self._tracked.add((bank, row))

    def untrack(self, bank: int, row: int) -> None:
        self._tracked.discard((bank, row))

    def pin_fractional(self, bank: int, row: int) -> None:
        """Mark a row as holding a fractional value: no refresh allowed."""
        key = (bank, row)
        self._pinned[key] = PinRecord(bank, row, self._now_ns())

    def unpin(self, bank: int, row: int) -> None:
        self._pinned.pop((bank, row), None)

    def is_pinned(self, bank: int, row: int) -> bool:
        return (bank, row) in self._pinned

    @property
    def pinned_rows(self) -> tuple[PinRecord, ...]:
        return tuple(self._pinned.values())

    def overdue_pins(self) -> tuple[PinRecord, ...]:
        """Pinned rows older than the 64 ms refresh window.

        An application still relying on a fractional value past this point
        is outside the paper's safe envelope (Section III-C).
        """
        window_ns = self.fd.mc.timing.retention_window_ms * 1e6
        now = self._now_ns()
        return tuple(record for record in self._pinned.values()
                     if now - record.pinned_at_ns > window_ns)

    # ------------------------------------------------------------------

    def refresh_row(self, bank: int, row: int) -> None:
        """Refresh one row, refusing to touch pinned fractional rows."""
        if self.is_pinned(bank, row):
            raise RefreshViolationError(
                f"refresh would destroy the fractional value in "
                f"bank {bank} row {row}")
        self.fd.refresh_row(bank, row)

    def refresh_tracked(self) -> int:
        """Refresh every tracked, unpinned row; returns the count."""
        refreshed = 0
        for bank, row in sorted(self._tracked):
            if not self.is_pinned(bank, row):
                self.fd.refresh_row(bank, row)
                refreshed += 1
        return refreshed

    def elapse(self, seconds: float) -> None:
        """Advance simulated time while maintaining tracked rows.

        Pinned rows leak for the whole interval (their fractional values
        decay physically, as they must); tracked rows are re-restored
        after each chunk.
        """
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        if seconds == 0:
            return
        n_chunks = min(self.max_chunks, max(1, int(seconds / self.chunk_s)))
        chunk = seconds / n_chunks
        for _ in range(n_chunks):
            self.fd.advance_time(chunk)
            self.refresh_tracked()
