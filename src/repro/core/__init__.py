"""FracDRAM core: primitives, verification, refresh policy, ternary storage."""

from .ops import FMajConfig, FracDram, MultiRowPlan
from .refresh import PinRecord, RefreshManager
from .ternary import TRIT_HALF, TRIT_ONE, TRIT_ZERO, TernaryStore
from .verify import COMBO_LABELS, MajVerifyResult, verify_frac_by_maj3

__all__ = [
    "COMBO_LABELS",
    "FMajConfig",
    "FracDram",
    "MajVerifyResult",
    "MultiRowPlan",
    "PinRecord",
    "RefreshManager",
    "TRIT_HALF",
    "TRIT_ONE",
    "TRIT_ZERO",
    "TernaryStore",
    "verify_frac_by_maj3",
]
