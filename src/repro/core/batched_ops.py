"""Batched FracDRAM facade: paper operations across trial lanes.

:class:`BatchedFracDram` mirrors :class:`~repro.core.ops.FracDram` over a
:class:`~repro.dram.batched.BatchedChip`: every operation takes per-lane
row vectors (and ``(L, C)`` operand planes) and issues one batched
command sequence instead of L scalar ones.

Multi-row operations take a pre-resolved
:class:`~repro.core.ops.MultiRowPlan`.  Plans depend only on the vendor
decoder profile, the row map and the geometry, so experiments resolve
them once on a scalar :class:`FracDram` donor and share them across all
lanes of a batch — which also keeps the (deliberately fiddly) glitch
planning logic in exactly one place.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..controller.batched import BatchedSoftMC
from ..dram.batched import BatchedChip
from ..errors import ConfigurationError
from .ops import FMajConfig, MultiRowPlan

__all__ = ["BatchedFracDram"]


class BatchedFracDram:
    """High-level FracDRAM operations over a batched device."""

    def __init__(self, device: BatchedChip) -> None:
        self.device = device
        # Command templates are shared across lanes, so every lane must
        # agree on electrical timing (a fleet batch may mix vendor groups
        # otherwise — decoders, couplings and polarity stay per lane).
        electrical = device.groups[0].electrical
        for group in device.groups[1:]:
            if group.electrical != electrical:
                raise ConfigurationError(
                    "all lanes of a batch must share electrical timing "
                    f"(lane group {group.group_id!r} differs from "
                    f"{device.groups[0].group_id!r})")
        self.mc = BatchedSoftMC(device, electrical=electrical)

    @property
    def n_lanes(self) -> int:
        return self.device.n_lanes

    def all_lanes(self) -> list[int]:
        return list(range(self.device.n_lanes))

    @property
    def columns(self) -> int:
        return int(self.device.columns)

    def _uniform(self, row: int, lanes: Sequence[int]) -> list[int]:
        return [int(row)] * len(lanes)

    # ------------------------------------------------------------------
    # basic data path
    # ------------------------------------------------------------------

    def write_row(self, bank: int, rows: Sequence[int], bits: np.ndarray,
                  lanes: Sequence[int]) -> None:
        self.mc.write_row(bank, rows, bits, lanes)

    def fill_row(self, bank: int, rows: Sequence[int], value: bool,
                 lanes: Sequence[int]) -> None:
        self.mc.fill_row(bank, rows, value, lanes)

    def read_row(self, bank: int, rows: Sequence[int],
                 lanes: Sequence[int]) -> np.ndarray:
        return self.mc.read_row(bank, rows, lanes)

    def refresh_row(self, bank: int, rows: Sequence[int],
                    lanes: Sequence[int]) -> None:
        self.mc.refresh_row(bank, rows, lanes)

    def precharge_all(self, lanes: Sequence[int]) -> None:
        self.mc.precharge_all(lanes)

    def advance_time(self, seconds: float, lanes: Sequence[int]) -> None:
        self.device.advance_time(seconds, lanes)

    # ------------------------------------------------------------------
    # FracDRAM primitives
    # ------------------------------------------------------------------

    def frac(self, bank: int, rows: Sequence[int], n_frac: int,
             lanes: Sequence[int]) -> None:
        self.mc.frac(bank, rows, n_frac, lanes)

    def row_copy(self, bank: int, srcs: Sequence[int], dsts: Sequence[int],
                 lanes: Sequence[int]) -> None:
        self.mc.row_copy(bank, srcs, dsts, lanes)

    def multi_row_activate(self, plan: MultiRowPlan,
                           lanes: Sequence[int]) -> None:
        r1, r2 = plan.act_pair
        self.mc.multi_row_activate(plan.bank, self._uniform(r1, lanes),
                                   self._uniform(r2, lanes), lanes)

    def half_m_activate(self, plan: MultiRowPlan,
                        lanes: Sequence[int]) -> None:
        r1, r2 = plan.act_pair
        self.mc.half_m(plan.bank, self._uniform(r1, lanes),
                       self._uniform(r2, lanes), lanes)

    # ------------------------------------------------------------------
    # in-memory majority (plan shared, operands per lane)
    # ------------------------------------------------------------------

    def maj3(self, plan: MultiRowPlan, operands: np.ndarray,
             lanes: Sequence[int]) -> np.ndarray:
        """Majority-of-three; ``operands`` is ``(L, 3, C)`` lane-major."""
        self._store_operands(plan, operands, None, lanes)
        self.multi_row_activate(plan, lanes)
        return self.read_row(plan.bank, self._uniform(plan.opened[0], lanes),
                             lanes)

    def f_maj(self, plan: MultiRowPlan, operands: np.ndarray,
              config: FMajConfig, lanes: Sequence[int]) -> np.ndarray:
        """F-MAJ via four-row activation; ``operands`` is ``(L, 3, C)``."""
        if not 0 <= config.frac_position < plan.n_rows:
            raise ConfigurationError(
                f"frac_position {config.frac_position} outside opened set")
        frac_row = plan.opened[config.frac_position]
        self.fill_row(plan.bank, self._uniform(frac_row, lanes),
                      config.init_ones, lanes)
        if config.n_frac > 0:
            self.frac(plan.bank, self._uniform(frac_row, lanes),
                      config.n_frac, lanes)
        self._store_operands(plan, operands, config.frac_position, lanes)
        self.multi_row_activate(plan, lanes)
        result_position = 0 if config.frac_position != 0 else 1
        return self.read_row(
            plan.bank, self._uniform(plan.opened[result_position], lanes),
            lanes)

    def _store_operands(self, plan: MultiRowPlan, operands: np.ndarray,
                        skip_position: int | None,
                        lanes: Sequence[int]) -> None:
        operands = np.asarray(operands, dtype=bool)
        target_positions = [index for index in range(plan.n_rows)
                            if index != skip_position]
        expected = (len(lanes), len(target_positions), self.columns)
        if operands.shape != expected:
            raise ConfigurationError(
                f"operand shape {operands.shape} != {expected}")
        for slot, position in enumerate(target_positions):
            self.write_row(plan.bank,
                           self._uniform(plan.opened[position], lanes),
                           operands[:, slot], lanes)
