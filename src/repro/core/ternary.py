"""Ternary (three-state) storage via Half-m (Section VI-C).

With *Half-m*, a cell can hold one of three distinguishable states — weak
zero, Half (~Vdd/2), weak one — so one cell stores one *trit*.  The cost:

* writing one row of trits takes four binary row writes plus the Half-m
  four-row activation;
* reading is destructive and needs the MAJ3 verification procedure, which
  consumes two prepared copies of the data (X1 with a carrier of ones, X2
  with a carrier of zeros) — this is why the paper calls the readout
  mechanism "not mature yet" and leaves recovery to future work.

:class:`TernaryStore` implements exactly that scheme on a group-B device
(the only group with both four-row activation for writing and three-row
activation for the destructive read).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, UnsupportedOperationError
from .ops import FracDram, MultiRowPlan

__all__ = ["TernaryStore", "TRIT_ZERO", "TRIT_ONE", "TRIT_HALF"]

TRIT_ZERO: int = 0
TRIT_ONE: int = 1
TRIT_HALF: int = 2


class TernaryStore:
    """Store and destructively read trits using Half-m + MAJ3."""

    def __init__(self, fd: FracDram, bank: int = 0) -> None:
        if not (fd.can_four_row and fd.can_three_row):
            raise UnsupportedOperationError(
                "ternary storage needs both four-row (write) and three-row "
                "(read) activation — use a group B device")
        self.fd = fd
        self.bank = bank

    # ------------------------------------------------------------------

    def _operand_rows(self, trits: np.ndarray) -> list[np.ndarray]:
        """Binary patterns for the four opened rows (R1..R4).

        Trit 0 -> four zeros (weak zero); trit 1 -> four ones (weak one);
        trit Half -> ones in R1/R3, zeros in R2/R4 (two-vs-two split, the
        paper's Half recipe).
        """
        ones_everywhere = trits == TRIT_ONE
        half = trits == TRIT_HALF
        r1 = ones_everywhere | half
        r2 = ones_everywhere.copy()
        r3 = ones_everywhere | half
        r4 = ones_everywhere.copy()
        return [r1, r2, r3, r4]

    def write_trits(self, trits: Sequence[int], subarray: int = 0) -> MultiRowPlan:
        """Encode one row of trits into sub-array ``subarray``.

        Returns the multi-row plan; the result lives in all four opened
        rows (the quad includes local rows 0 and 1, which the destructive
        read later combines with row 2).
        """
        values = np.asarray(trits, dtype=int)
        if values.shape != (self.fd.columns,):
            raise ConfigurationError(
                f"expected {self.fd.columns} trits, got shape {values.shape}")
        if not np.isin(values, (TRIT_ZERO, TRIT_ONE, TRIT_HALF)).all():
            raise ConfigurationError("trits must be 0, 1, or 2 (Half)")
        plan = self.fd.quad_plan(self.bank, subarray)
        for row, bits in zip(plan.opened, self._operand_rows(values)):
            self.fd.write_row(self.bank, row, bits)
        self.fd.half_m_activate(plan)
        return plan

    def read_trits_destructive(self, subarray_x1: int, subarray_x2: int) -> np.ndarray:
        """Destructively decode trits from two identically written copies.

        ``subarray_x1`` and ``subarray_x2`` must each hold the same trits
        (written via :meth:`write_trits`).  The first copy is consumed with
        a carrier of ones (X1), the second with a carrier of zeros (X2):
        X1=X2=1 -> one; X1=X2=0 -> zero; X1=1,X2=0 -> Half.  Columns where
        the Half charge split fell outside the sense window decode to the
        binary value both reads agree on being impossible (X1=0, X2=1) and
        are reported as Half as well — they are counted by callers via
        :meth:`decode_fidelity`.
        """
        x1 = self._maj3_with_carrier(subarray_x1, carrier_ones=True)
        x2 = self._maj3_with_carrier(subarray_x2, carrier_ones=False)
        trits = np.full(self.fd.columns, TRIT_HALF, dtype=int)
        trits[x1 & x2] = TRIT_ONE
        trits[~x1 & ~x2] = TRIT_ZERO
        return trits

    def _maj3_with_carrier(self, subarray: int, carrier_ones: bool) -> np.ndarray:
        plan = self.fd.triple_plan(self.bank, subarray)
        carrier_row = plan.opened[1]  # local row 2 — not part of the quad result
        self.fd.fill_row(self.bank, carrier_row, carrier_ones)
        self.fd.multi_row_activate(plan)
        return self.fd.read_row(self.bank, plan.opened[0]).astype(bool)

    @staticmethod
    def decode_fidelity(written: Sequence[int], decoded: Sequence[int]) -> float:
        """Fraction of trits decoded to the value written."""
        written_arr = np.asarray(written, dtype=int)
        decoded_arr = np.asarray(decoded, dtype=int)
        if written_arr.shape != decoded_arr.shape:
            raise ConfigurationError("written/decoded shapes differ")
        return float(np.mean(written_arr == decoded_arr))
