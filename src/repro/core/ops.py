"""FracDRAM public facade: the paper's primitive and compute operations.

:class:`FracDram` wraps a simulated device and a :class:`SoftMC` controller
and exposes every operation the paper builds:

* ``frac`` — store a fractional value in an entire row (Section III-A),
* ``half_m`` primitives — fractional values on masked bits (Section III-B),
* ``maj3`` — the ComputeDRAM-style in-memory majority baseline,
* ``f_maj`` — majority-of-three via four-row activation with a fractional
  operand (Section VI-A), the paper's headline compute contribution,
* ``row_copy`` — ComputeDRAM/RowClone-style copy used for initialization.

Address conventions follow the paper: MAJ3 uses the first three rows of a
sub-array (activate R1=1, R2=2, which also opens R3=0); group B's four-row
set is {8, 1, 0, 9} (activate R1=8, R2=1) and groups C/D use {1, 2, 0, 3}
(activate R1=1, R2=2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..controller.softmc import DeviceLike, SoftMC
from ..dram.decoder import resolve_glitch
from ..dram.vendor import GroupProfile, PreferredFMajConfig
from ..errors import ConfigurationError, UnsupportedOperationError

__all__ = ["FracDram", "FMajConfig", "MultiRowPlan"]

#: Configuration of an F-MAJ run: which opened-row position holds the
#: fractional value, the init polarity before Frac, and the Frac count.
FMajConfig = PreferredFMajConfig


@dataclass(frozen=True)
class MultiRowPlan:
    """A resolved multi-row activation: what to activate, what opens.

    ``act_pair`` is the (R1, R2) to put on the bus; ``opened`` is the
    ordered tuple of rows that end up open (bank-global addresses, in the
    paper's R1..R4 naming order).
    """

    bank: int
    act_pair: tuple[int, int]
    opened: tuple[int, ...]

    @property
    def n_rows(self) -> int:
        return len(self.opened)


class FracDram:
    """High-level FracDRAM operations over one simulated device."""

    def __init__(self, device: DeviceLike, *, strict: bool = False) -> None:
        self.device = device
        self.group: GroupProfile = device.group  # type: ignore[attr-defined]
        self.mc = SoftMC(device, strict=strict,
                         electrical=self.group.electrical)

    # ------------------------------------------------------------------
    # capability queries (Table I)
    # ------------------------------------------------------------------

    @property
    def can_frac(self) -> bool:
        return not self.group.decoder.enforces_command_spacing

    @property
    def can_three_row(self) -> bool:
        return self.group.decoder.supports_three_row

    @property
    def can_four_row(self) -> bool:
        return self.group.decoder.supports_four_row

    def _require(self, condition: bool, operation: str) -> None:
        if not condition:
            raise UnsupportedOperationError(
                f"group {self.group.group_id} ({self.group.vendor}) "
                f"cannot perform {operation}")

    # ------------------------------------------------------------------
    # basic data path
    # ------------------------------------------------------------------

    @property
    def columns(self) -> int:
        return int(self.device.columns)  # type: ignore[attr-defined]

    def write_row(self, bank: int, row: int, bits: Sequence[bool]) -> None:
        """Store logical data (in-spec ACT/WRITE/PRE)."""
        self.mc.write_row(bank, row, bits)

    def fill_row(self, bank: int, row: int, value: bool) -> None:
        """Store all-ones or all-zeros."""
        self.mc.fill_row(bank, row, value)

    def read_row(self, bank: int, row: int) -> np.ndarray:
        """Read logical data; destroys any fractional value in the row."""
        return self.mc.read_row(bank, row)

    def refresh_row(self, bank: int, row: int) -> None:
        self.mc.refresh_row(bank, row)

    def precharge_all(self) -> None:
        self.mc.precharge_all()

    def advance_time(self, seconds: float) -> None:
        """Pause command traffic and let charge leak."""
        self.device.advance_time(seconds)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # FracDRAM primitives
    # ------------------------------------------------------------------

    def frac(self, bank: int, row: int, n_frac: int = 1) -> None:
        """Store a fractional value into an entire row.

        On groups with command-spacing enforcement (J/K/L) the sequence is
        issued but silently dropped by the chip, matching Table I — no
        error is raised so capability probing works uniformly.
        """
        self.mc.frac(bank, row, n_frac)

    def row_copy(self, bank: int, src: int, dst: int) -> None:
        """In-DRAM copy of ``src`` onto ``dst`` (18 cycles)."""
        self.mc.row_copy(bank, src, dst)

    # ------------------------------------------------------------------
    # multi-row plans
    # ------------------------------------------------------------------

    def _rows_per_subarray(self) -> int:
        return int(self.device.geometry.rows_per_subarray)  # type: ignore[attr-defined]

    def _row_map(self):
        return self.device.row_map  # type: ignore[attr-defined]

    def _globalize_physical(self, subarray: int,
                            physical_rows: tuple[int, ...]) -> tuple[int, ...]:
        """Physical local rows -> bank-global logical addresses."""
        base = subarray * self._rows_per_subarray()
        row_map = self._row_map()
        return tuple(base + row_map.to_logical(row) for row in physical_rows)

    def plan_multi_row(self, bank: int, r1: int, r2: int) -> MultiRowPlan:
        """Predict which rows ``ACT(r1)-PRE-ACT(r2)`` opens (bank-global).

        The decoder glitch acts on *physical* addresses, so the plan
        resolves through the device's (possibly scrambled) row map.
        """
        rows_per_subarray = self._rows_per_subarray()
        subarray_1, local_1 = divmod(r1, rows_per_subarray)
        subarray_2, local_2 = divmod(r2, rows_per_subarray)
        if subarray_1 != subarray_2:
            raise ConfigurationError(
                f"rows {r1} and {r2} are in different sub-arrays; the "
                "decoder glitch only spans one sub-array")
        row_map = self._row_map()
        opened_physical = resolve_glitch(
            self.group.decoder,
            row_map.to_physical(local_1), row_map.to_physical(local_2),
            rows_per_subarray)
        return MultiRowPlan(bank, (r1, r2),
                            self._globalize_physical(subarray_1, opened_physical))

    def _act_pair_for_physical(self, bank: int, subarray: int,
                               physical_pair: tuple[int, int]) -> tuple[int, int]:
        base = subarray * self._rows_per_subarray()
        row_map = self._row_map()
        return (base + row_map.to_logical(physical_pair[0]),
                base + row_map.to_logical(physical_pair[1]))

    def triple_plan(self, bank: int, subarray: int = 0) -> MultiRowPlan:
        """The paper's MAJ3 row set: physical (1, 2), opening (1, 2, 0)."""
        self._require(self.can_three_row, "three-row activation")
        r1, r2 = self._act_pair_for_physical(bank, subarray, (1, 2))
        return self.plan_multi_row(bank, r1, r2)

    def quad_plan(self, bank: int, subarray: int = 0) -> MultiRowPlan:
        """The group's four-row set: B -> {8,1,0,9}; C/D -> {1,2,0,3}."""
        self._require(self.can_four_row, "four-row activation")
        pair = next(iter(sorted(self.group.decoder.quad_bit_pairs)))
        physical_pair = (1 << pair[1], 1 << pair[0])
        if pair == (0, 1):
            # Match the paper's C/D convention: activate (1, 2).
            physical_pair = (1, 2)
        r1, r2 = self._act_pair_for_physical(bank, subarray, physical_pair)
        plan = self.plan_multi_row(bank, r1, r2)
        if plan.n_rows != 4:
            raise UnsupportedOperationError(
                f"group {self.group.group_id}: expected a four-row glitch, "
                f"got {plan.opened}")
        return plan

    def multi_row_activate(self, plan: MultiRowPlan) -> None:
        """Issue the plan's ACT-PRE-ACT and let the sense amps complete."""
        self.mc.multi_row_activate(plan.bank, *plan.act_pair)

    def half_m_activate(self, plan: MultiRowPlan) -> None:
        """Issue the plan's ACT-PRE-ACT with the interrupting trailing PRE."""
        self.mc.half_m(plan.bank, *plan.act_pair)

    # ------------------------------------------------------------------
    # in-memory majority
    # ------------------------------------------------------------------

    def maj3(self, bank: int, operands: Sequence[Sequence[bool]],
             subarray: int = 0) -> np.ndarray:
        """ComputeDRAM-style majority-of-three (baseline, group B only).

        Operands are written to the opened triple (R1, R2, R3) in order;
        the charge-sharing result is read back from R1.
        """
        plan = self.triple_plan(bank, subarray)
        self._store_operands(plan, operands, skip_position=None)
        self.multi_row_activate(plan)
        return self.read_row(bank, plan.opened[0])

    def f_maj(self, bank: int, operands: Sequence[Sequence[bool]],
              config: FMajConfig | None = None, subarray: int = 0,
              ) -> np.ndarray:
        """Majority-of-three via four-row activation + a fractional operand.

        Follows the Section VI-A procedure: store a fractional value into
        the configured opened-row position (initialize, then ``n_frac``
        Frac ops), store the three operands into the remaining rows, issue
        the four-row activation, and read the result.
        """
        config = config or self.group.preferred_fmaj
        if config is None:
            raise ConfigurationError(
                f"group {self.group.group_id} has no preferred F-MAJ config; "
                "pass one explicitly")
        plan = self.quad_plan(bank, subarray)
        if not 0 <= config.frac_position < plan.n_rows:
            raise ConfigurationError(
                f"frac_position {config.frac_position} outside opened set")
        frac_row = plan.opened[config.frac_position]
        self.fill_row(bank, frac_row, config.init_ones)
        if config.n_frac > 0:
            self.frac(bank, frac_row, config.n_frac)
        self._store_operands(plan, operands, skip_position=config.frac_position)
        self.multi_row_activate(plan)
        result_position = 0 if config.frac_position != 0 else 1
        return self.read_row(bank, plan.opened[result_position])

    def _store_operands(self, plan: MultiRowPlan,
                        operands: Sequence[Sequence[bool]],
                        skip_position: int | None) -> None:
        target_positions = [index for index in range(plan.n_rows)
                            if index != skip_position]
        if len(operands) != len(target_positions):
            raise ConfigurationError(
                f"expected {len(target_positions)} operands for this plan, "
                f"got {len(operands)}")
        for position, operand in zip(target_positions, operands):
            bits = np.asarray(operand, dtype=bool)
            if bits.shape != (self.columns,):
                raise ConfigurationError(
                    f"operand shape {bits.shape} != ({self.columns},)")
            self.write_row(plan.bank, plan.opened[position], bits)
