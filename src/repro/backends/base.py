"""The :class:`Backend` protocol plus shared request/outcome types.

One contract, many engines.  A backend executes

* an assembled SoftMC :class:`~repro.controller.program.Program` over a
  fleet of simulated devices (:meth:`Backend.execute_program`), and
* any named experiment (:meth:`Backend.run_experiment`, which routes the
  experiment's batched/scalar dispatch through :meth:`Backend.lane_width`
  via ``ExperimentConfig.backend``),

and every registered engine must produce **byte-identical** results and
telemetry counters — the conformance suite under ``tests/backends/``
enforces this across all experiments, a program corpus, and fuzzed
programs.  See ``docs/backends.md`` for the full contract.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from ..controller.commands import Activate, CommandSequence, ReadRow, WriteRow
from ..controller.program import Program
from ..dram.parameters import GeometryParams
from ..dram.vendor import get_group
from ..errors import ReproError
from ..telemetry import registry as _registry
from .registry import BackendError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dram.batched import BatchedChip
    from ..dram.chip import DramChip

__all__ = ["Backend", "DeviceResult", "ProgramOutcome", "ProgramRequest",
           "chip_state_digest", "lane_state_digest", "validate_request"]


@dataclass(frozen=True)
class ProgramRequest:
    """One program execution over a fleet of deterministic devices.

    ``devices`` are ``(group_id, serial)`` module specs — each fabricates
    the exact chip ``make_chip``/``BatchedChip.from_fleet`` would build
    from ``(master_seed, group, serial)``, so every backend sees
    bit-identical silicon.
    """

    program: Program
    devices: tuple[tuple[str, int], ...] = (("B", 0),)
    geometry: GeometryParams = field(default_factory=GeometryParams)
    master_seed: int = 2022


@dataclass(frozen=True)
class DeviceResult:
    """One device's observable outcome of a program run."""

    group: str
    serial: int
    reads: tuple[np.ndarray, ...]
    cycles: int
    dropped_commands: int
    state_digest: str


@dataclass(frozen=True)
class ProgramOutcome:
    """Backend-agnostic result: per-device data plus telemetry counters.

    Two outcomes from conforming backends render identically —
    :meth:`render` is the byte-comparable surface the conformance suite
    and the ``run-program`` CLI both use.
    """

    label: str
    devices: tuple[DeviceResult, ...]
    counters: dict[str, int]

    def render(self) -> str:
        lines = [f"program {self.label}: {len(self.devices)} device(s)"]
        for index, device in enumerate(self.devices):
            lines.append(f"device {index}: group {device.group} "
                         f"serial {device.serial}")
            lines.append(f"  cycles {device.cycles}  "
                         f"dropped {device.dropped_commands}  "
                         f"state {device.state_digest}")
            for read_index, data in enumerate(device.reads):
                bits = "".join("1" if bit else "0" for bit in data)
                lines.append(f"  read {read_index}: {bits}")
        lines.append("counters:")
        if not self.counters:
            lines.append("  (none)")
        for name in sorted(self.counters):
            lines.append(f"  {name} = {self.counters[name]}")
        return "\n".join(lines) + "\n"


def chip_state_digest(chip: "DramChip") -> str:
    """BLAKE2b over every sub-array's cell voltages, in (bank, sub) order."""
    digest = blake2b(digest_size=16)
    for bank in chip.banks:
        for subarray in bank.subarrays:
            digest.update(np.ascontiguousarray(subarray.cell_v).tobytes())
    return digest.hexdigest()


def lane_state_digest(device: "BatchedChip", lane: int) -> str:
    """The batched equivalent of :func:`chip_state_digest` for one lane."""
    digest = blake2b(digest_size=16)
    for bank_cells in device.cells:
        for cell in bank_cells:
            digest.update(np.ascontiguousarray(cell.cell_v[lane]).tobytes())
    return digest.hexdigest()


def validate_request(request: ProgramRequest) -> None:
    """Reject programs that address outside the requested geometry.

    Raises :class:`BackendError` naming the offending step/command, so a
    bad ``run-program`` invocation fails with a diagnosis instead of a
    physics-layer traceback from deep inside an engine.
    """
    if not request.devices:
        raise BackendError("a program request needs at least one device")
    for group_id, serial in request.devices:
        try:
            get_group(group_id)
        except ReproError as error:
            raise BackendError(f"unknown device group {group_id!r}: "
                               f"{error}") from None
        if int(serial) < 0:
            raise BackendError(f"device serial must be non-negative, "
                               f"got {serial!r}")
    geometry = request.geometry
    for step_index, step in enumerate(request.program.steps):
        if not isinstance(step, CommandSequence):
            continue  # LeakStep
        for command_index, timed in enumerate(step):
            command = timed.command
            where = (f"step {step_index} command {command_index} "
                     f"({command.KIND})")
            bank = getattr(command, "bank", None)
            if bank is not None and bank >= geometry.n_banks:
                raise BackendError(
                    f"{where}: bank {bank} out of range "
                    f"(geometry has {geometry.n_banks} banks)")
            if isinstance(command, (Activate, ReadRow, WriteRow)):
                if command.row >= geometry.rows_per_bank:
                    raise BackendError(
                        f"{where}: row {command.row} out of range "
                        f"(geometry has {geometry.rows_per_bank} rows "
                        f"per bank)")
            if isinstance(command, WriteRow) and (
                    len(command.data) != geometry.columns):
                raise BackendError(
                    f"{where}: WR payload is {len(command.data)} bits but "
                    f"the geometry has {geometry.columns} columns")


class Backend(abc.ABC):
    """An interchangeable execution engine behind the registry.

    Subclasses implement :meth:`_execute` (program execution over a
    device fleet) and :meth:`lane_width` (the experiment dispatch
    policy); the shared :meth:`execute_program` wrapper adds request
    validation and telemetry collection so every engine reports the same
    counter surface.
    """

    name: ClassVar[str]
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def lane_width(self, auto: int, batch: int | None) -> int:
        """Effective lane width for a batched experiment stage.

        ``auto`` is the stage's natural lane count and ``batch`` the
        config's cap (``None`` = auto).  Returning 1 forces the scalar
        path.  Must be >= 1.
        """

    @abc.abstractmethod
    def _execute(self, request: ProgramRequest) -> tuple[DeviceResult, ...]:
        """Run the validated program on every requested device."""

    def execute_program(self, request: ProgramRequest, *,
                        trace_path=None) -> ProgramOutcome:
        """Validate and run ``request``; collect a telemetry snapshot.

        Runs under a nested telemetry registry so the returned
        ``counters`` reflect exactly this program execution; counts are
        folded back into any enclosing registry afterwards.
        ``trace_path`` additionally writes a ``repro-trace/1`` JSON-lines
        event trace of the execution.
        """
        validate_request(request)
        with _registry.session(trace_path=trace_path) as telemetry:
            devices = self._execute(request)
            snapshot = telemetry.snapshot()
        enclosing = _registry.active()
        if enclosing is not None:
            enclosing.merge_snapshot(snapshot)
        counters = {name: int(value)
                    for name, value in snapshot["counters"].items()}
        return ProgramOutcome(label=request.program.label,
                              devices=tuple(devices), counters=counters)

    def run_experiment(self, name: str, config, *, workers: int = 0,
                       cache=None):
        """Run a named experiment with this backend's dispatch policy."""
        from ..experiments.runner import run_experiment

        return run_experiment(name, config.scaled(backend=self.name),
                              workers=workers, cache=cache)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<backend {self.name}: {self.description}>"
