"""``repro.backends`` — pluggable, conformance-gated execution engines.

The registry (:mod:`repro.backends.registry`) maps names to
interchangeable :class:`~repro.backends.base.Backend` engines:

* ``scalar`` — the cycle-accurate ``SoftMC`` + ``DramChip`` reference,
* ``batched`` — every device a lane of the vectorized NumPy engine,
* ``plan`` — compiled-plan replay (lower the program once, replay a flat
  dispatch table per device),
* ``fused`` — xir-compiled experiment programs (:mod:`repro.xir`) on
  batched lanes: fig6/fig11 hot loops run as whole-batch phase kernels.

Each backend executes assembled SoftMC programs over a deterministic
device fleet (:meth:`~repro.backends.base.Backend.execute_program`) and
drives experiment dispatch via ``ExperimentConfig.backend``.  The
differential conformance suite (``tests/backends/``) pins every
registered backend byte-identical — results *and* telemetry counters —
to the scalar reference across all experiments, a program corpus, and
hypothesis-fuzzed programs, so a new engine (e.g. a future JIT) plugs in
against an existing gate.  See ``docs/backends.md``.

Quickstart::

    from repro.backends import get_backend, ProgramRequest
    from repro.controller import assemble_program

    program = assemble_program(open("prog.sfc").read())
    outcome = get_backend("batched").execute_program(
        ProgramRequest(program=program, devices=(("B", 0), ("C", 0))))
    print(outcome.render())
"""

from .base import (
    Backend,
    DeviceResult,
    ProgramOutcome,
    ProgramRequest,
    chip_state_digest,
    lane_state_digest,
    validate_request,
)
from .registry import (
    DEFAULT_BACKEND,
    BackendError,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)

# Importing the engine modules registers the built-in backends.
from . import batched as _batched  # noqa: F401  (registration side effect)
from . import fused as _fused  # noqa: F401
from . import plan as _plan  # noqa: F401
from . import scalar as _scalar  # noqa: F401

__all__ = [
    "Backend",
    "BackendError",
    "DEFAULT_BACKEND",
    "DeviceResult",
    "ProgramOutcome",
    "ProgramRequest",
    "available_backends",
    "chip_state_digest",
    "get_backend",
    "lane_state_digest",
    "register_backend",
    "resolve_backend",
    "validate_request",
]
