"""The scalar reference backend: one ``SoftMC`` + ``DramChip`` per device.

This is the ground truth every other backend is pinned against.  Devices
run one at a time through the permissive cycle-accurate controller —
exactly the path the original experiments used before batching existed —
so its outcomes define what "byte-identical" means for the conformance
suite.
"""

from __future__ import annotations

import numpy as np

from ..controller.program import LeakStep
from ..controller.softmc import SoftMC
from ..dram.chip import DramChip
from .base import Backend, DeviceResult, ProgramRequest, chip_state_digest
from .registry import register_backend

__all__ = ["ScalarBackend"]


@register_backend
class ScalarBackend(Backend):
    """Reference engine: per-device ``SoftMC`` over a scalar ``DramChip``."""

    name = "scalar"
    description = "cycle-accurate reference (one SoftMC per device)"

    def lane_width(self, auto: int, batch: int | None) -> int:
        return 1

    def _execute(self, request: ProgramRequest) -> tuple[DeviceResult, ...]:
        results = []
        for group_id, serial in request.devices:
            chip = DramChip(group_id, geometry=request.geometry,
                            serial=int(serial),
                            master_seed=request.master_seed)
            mc = SoftMC(chip)
            reads: list[np.ndarray] = []
            for step in request.program.steps:
                if isinstance(step, LeakStep):
                    chip.advance_time(step.seconds)
                else:
                    reads.extend(mc.run(step))
            results.append(DeviceResult(
                group=group_id, serial=int(serial), reads=tuple(reads),
                cycles=int(mc.cycle),
                dropped_commands=int(chip.dropped_commands),
                state_digest=chip_state_digest(chip)))
        return tuple(results)
