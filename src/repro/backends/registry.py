"""The backend registry: names -> execution engines.

A *backend* is an interchangeable execution engine for SoftMC programs
and experiments (see :class:`repro.backends.base.Backend`).  Engines
register themselves with the :func:`register_backend` class decorator::

    @register_backend
    class MyBackend(Backend):
        name = "mine"
        ...

and become addressable everywhere a backend name is accepted: the
``--backend`` CLI flags, ``ExperimentConfig.backend``, fleet shards, and
the conformance suite (``tests/backends/``), which automatically picks
up every registered backend and pins it byte-identical to the scalar
reference.  This module is deliberately dependency-free so config and
fleet layers can import it without pulling in the simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, TypeVar

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .base import Backend

__all__ = ["DEFAULT_BACKEND", "BackendError", "available_backends",
           "get_backend", "register_backend", "resolve_backend"]

#: The backend used when none is named (``backend=None``): the batched
#: engine, which auto-sizes its lane width and falls back to scalar
#: semantics at width 1 — matching the pre-registry default behaviour.
DEFAULT_BACKEND = "batched"

_REGISTRY: dict[str, "Backend"] = {}

B = TypeVar("B", bound="type")


class BackendError(ReproError):
    """A backend could not be registered, resolved, or executed."""


def register_backend(cls: B) -> B:
    """Class decorator: instantiate ``cls`` and register it by name."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise BackendError(
            f"backend class {cls.__name__} must define a non-empty "
            f"``name`` string")
    if name in _REGISTRY:
        raise BackendError(f"backend {name!r} is already registered")
    _REGISTRY[name] = cls()
    return cls


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> "Backend":
    """Look up a backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends()) or "(none)"
        raise BackendError(
            f"unknown backend {name!r}; registered backends: {known}"
        ) from None


def resolve_backend(name: str | None) -> "Backend":
    """Look up a backend, defaulting to :data:`DEFAULT_BACKEND`."""
    return get_backend(name if name is not None else DEFAULT_BACKEND)
