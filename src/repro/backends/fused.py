"""The fused backend: xir-compiled experiment programs over batched lanes.

``fused`` layers the :mod:`repro.xir` pipeline on top of the batched
engine: experiments whose hot loop has an xir lowering — the registry
is :data:`repro.xir.XIR_LOWERED_EXPERIMENTS` (fig6 retention, fig9
fMAJ coverage, fig10 fMAJ stability, fig11 PUF HD, nist randomness) —
route their inner passes through
:class:`~repro.xir.FusedRetentionProfiler` /
:class:`~repro.xir.FusedFracDram` / :class:`~repro.xir.FusedFracPuf`,
which replay one compiled phase-op schedule per program *shape* instead
of dispatching per command.  Everything else — lane-width policy,
assembled-program execution, fleet sharding — inherits the batched
engine unchanged, so the backend is a strict superset: same bytes,
same counters, less Python.  The serving stack defaults to the same
engine (``repro.service``'s ``VerificationEngine(backend="fused")``).

The conformance suite (``tests/backends``) holds ``fused`` to the same
gate as every other backend: byte-identical results and deterministic
telemetry counter snapshots against the scalar reference, serially and
under fleet workers.
"""

from __future__ import annotations

from .batched import BatchedBackend
from .registry import register_backend

__all__ = ["FusedBackend"]


@register_backend
class FusedBackend(BatchedBackend):
    """Batched lanes plus xir-compiled experiment hot loops."""

    name = "fused"
    description = ("xir-compiled experiment programs on batched lanes "
                   "(fig6/fig9/fig10/fig11/nist fused hot paths)")
