"""The compiled-plan backend: precompile once, replay per device.

Where the scalar backend re-walks every ``CommandSequence`` through
``SoftMC.run`` for each device, this engine compiles the whole program
*once* into a flat dispatch table — absolute cycle stamps (static,
because every device starts at cycle 0 and advances identically), small
integer opcodes, pre-rendered telemetry events, and per-step counter
deltas sharing one LRU-cached JEDEC plan (:mod:`repro.controller.plan`)
— then replays that table against each device's physics with no
controller, no per-command isinstance dispatch, and no re-observation of
timing constraints.  It is the template for ROADMAP item 2's
whole-experiment JIT: a distinct execution strategy that must pass the
same byte-identity gate as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..controller.commands import (
    Activate,
    CommandSequence,
    Precharge,
    PrechargeAll,
    ReadRow,
    WriteRow,
)
from ..controller.plan import plan_for
from ..controller.program import LeakStep, Program
from ..dram.chip import DramChip
from ..dram.parameters import TimingParams
from ..telemetry.registry import active as _telemetry_active
from .base import Backend, DeviceResult, ProgramRequest, chip_state_digest
from .registry import register_backend

__all__ = ["PlanBackend"]

# Opcodes of the compiled dispatch table.
_ACT, _PRE, _PREA, _RD, _WR = range(5)


@dataclass(frozen=True)
class _CompiledSequence:
    """One command chunk, lowered for replay.

    ``ops`` rows are ``(opcode, absolute_cycle, bank, row, data)``;
    ``counter_deltas``/``events`` reproduce exactly what ``SoftMC.run``
    would count and emit for one device running this chunk.
    """

    ops: tuple[tuple[int, int, int, int, object], ...]
    end_cycle: int
    counter_deltas: tuple[tuple[str, int], ...]
    events: tuple[tuple[str, dict], ...]


_CompiledStep = Union[_CompiledSequence, LeakStep]


def _compile(program: Program, timing: TimingParams) -> list[_CompiledStep]:
    compiled: list[_CompiledStep] = []
    base = 0
    for step in program.steps:
        if isinstance(step, LeakStep):
            compiled.append(step)
            continue
        compiled.append(_compile_sequence(step, timing, base))
        base += step.duration
    return compiled


def _compile_sequence(sequence: CommandSequence, timing: TimingParams,
                      base: int) -> _CompiledSequence:
    plan = plan_for(timing, sequence)
    deltas: dict[str, int] = {"controller.sequences": 1}
    if sequence.op:  # pragma: no cover - assembled programs carry no op
        deltas[f"controller.seq.{sequence.op}"] = 1
    events: list[tuple[str, dict]] = [("sequence", {
        "label": sequence.label,
        "op": sequence.op,
        "start_cycle": base,
        "duration": sequence.duration,
        "n_commands": len(sequence),
    })]
    ops: list[tuple[int, int, int, int, object]] = []
    for index, timed in enumerate(sequence):
        command = timed.command
        cycle = base + timed.cycle
        if isinstance(command, Activate):
            ops.append((_ACT, cycle, command.bank, command.row, None))
        elif isinstance(command, Precharge):
            ops.append((_PRE, cycle, command.bank, 0, None))
        elif isinstance(command, PrechargeAll):
            ops.append((_PREA, cycle, 0, 0, None))
        elif isinstance(command, ReadRow):
            ops.append((_RD, cycle, command.bank, command.row, None))
        elif isinstance(command, WriteRow):
            ops.append((_WR, cycle, command.bank, command.row,
                        np.asarray(command.data, dtype=bool)))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown command {command!r}")
        deltas["controller.commands"] = deltas.get("controller.commands", 0) + 1
        kind_key = f"controller.{command.KIND.lower()}"
        deltas[kind_key] = deltas.get(kind_key, 0) + 1
        violations = plan.violations[index]
        if violations:
            deltas["controller.jedec_violations"] = (
                deltas.get("controller.jedec_violations", 0) + len(violations))
            for violation in violations:
                key = f"controller.jedec.{violation.constraint.lower()}"
                deltas[key] = deltas.get(key, 0) + 1
        events.append(("command", {
            "cmd": command.KIND,
            "bank": getattr(command, "bank", None),
            "row": getattr(command, "row", None),
            "cycle": cycle,
            "violations": list(plan.violation_events[index]),
        }))
    return _CompiledSequence(
        ops=tuple(ops), end_cycle=base + sequence.duration,
        counter_deltas=tuple(deltas.items()), events=tuple(events))


@register_backend
class PlanBackend(Backend):
    """Compiled replay: one lowering pass, then flat per-device dispatch."""

    name = "plan"
    description = "compiled-plan replay (lower once, replay per device)"

    def lane_width(self, auto: int, batch: int | None) -> int:
        # Experiments dispatch scalar under this backend: the compiled
        # replay applies to *programs*; experiment-level compilation is
        # ROADMAP item 2.
        return 1

    def _execute(self, request: ProgramRequest) -> tuple[DeviceResult, ...]:
        compiled = _compile(request.program, TimingParams())
        return tuple(
            self._replay(group_id, int(serial), request, compiled)
            for group_id, serial in request.devices)

    @staticmethod
    def _replay(group_id: str, serial: int, request: ProgramRequest,
                compiled: list[_CompiledStep]) -> DeviceResult:
        chip = DramChip(group_id, geometry=request.geometry, serial=serial,
                        master_seed=request.master_seed)
        telemetry = _telemetry_active()
        reads: list[np.ndarray] = []
        cycle = 0
        activate = chip.activate
        precharge = chip.precharge
        precharge_all = chip.precharge_all
        settle = chip.settle
        row_buffer = chip.row_buffer_logical
        write_open = chip.write_open
        for step in compiled:
            if isinstance(step, LeakStep):
                chip.advance_time(step.seconds)
                continue
            if telemetry is not None:
                for name, delta in step.counter_deltas:
                    telemetry.count(name, delta)
                for kind, fields in step.events:
                    telemetry.emit(kind, fields)
            for opcode, op_cycle, bank, row, data in step.ops:
                if opcode == _ACT:
                    activate(bank, row, op_cycle)
                elif opcode == _PRE:
                    precharge(bank, op_cycle)
                elif opcode == _PREA:
                    precharge_all(op_cycle)
                elif opcode == _RD:
                    settle(op_cycle)
                    reads.append(row_buffer(bank, row))
                else:  # _WR
                    settle(op_cycle)
                    write_open(bank, row, data)
            cycle = step.end_cycle
            chip.finish(cycle)
        return DeviceResult(
            group=group_id, serial=serial, reads=tuple(reads),
            cycles=cycle, dropped_commands=int(chip.dropped_commands),
            state_digest=chip_state_digest(chip))
