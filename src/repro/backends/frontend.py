"""Trace-driven frontend: run SoftMC program files on any backend.

``python -m repro run-program prog.sfc --backend batched --devices 4``
parses a SoftMC/DRAM-Bender-style assembly program (see
:mod:`repro.controller.program`; ``LEAK`` makes retention studies
expressible) and executes it over a deterministic device fleet on any
registered backend.  Stdout carries only the backend-agnostic
:meth:`~repro.backends.base.ProgramOutcome.render` text, so outputs from
conforming backends diff clean — the ``backend-conformance`` CI job
relies on that.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..controller.program import Program, ProgramError, assemble_program
from ..dram.parameters import GeometryParams
from ..errors import ReproError
from .base import ProgramOutcome, ProgramRequest
from .registry import BackendError, available_backends, get_backend

__all__ = ["add_run_program_arguments", "build_request", "load_program",
           "main", "run_program_cli"]


def load_program(path: str | Path) -> Program:
    """Read and assemble a SoftMC program file."""
    path = Path(path)
    try:
        source = path.read_text()
    except OSError as error:
        raise BackendError(f"cannot read program {path}: {error}") from None
    return assemble_program(source, label=path.name)


def build_request(program: Program, *, devices: int = 1,
                  groups: tuple[str, ...] = ("B",), seed: int = 2022,
                  geometry: GeometryParams | None = None) -> ProgramRequest:
    """A fleet request: ``devices`` modules cycling through ``groups``."""
    if devices < 1:
        raise BackendError(f"--devices must be >= 1, got {devices}")
    if not groups:
        raise BackendError("at least one device group is required")
    serials = {group: 0 for group in groups}
    specs = []
    for index in range(devices):
        group = groups[index % len(groups)]
        specs.append((group, serials[group]))
        serials[group] += 1
    return ProgramRequest(
        program=program, devices=tuple(specs),
        geometry=geometry or GeometryParams(), master_seed=seed)


def add_run_program_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="SoftMC program file (.sfc)")
    parser.add_argument("--backend", default="scalar",
                        choices=available_backends(),
                        help="execution engine (conformance-gated: every "
                             "choice produces byte-identical output)")
    parser.add_argument("--devices", type=int, default=1, metavar="N",
                        help="fleet size (serials 0..N-1 per group)")
    parser.add_argument("--groups", nargs="*", default=["B"], metavar="G",
                        help="vendor groups to cycle devices through "
                             "(default: B)")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--columns", type=int, default=64,
                        help="row width in bits (WR payloads must match)")
    parser.add_argument("--rows-per-subarray", type=int, default=16)
    parser.add_argument("--subarrays", type=int, default=2)
    parser.add_argument("--banks", type=int, default=2)
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a repro-trace/1 JSON-lines event trace")


def run_program_cli(arguments: argparse.Namespace) -> int:
    """Handler behind ``python -m repro run-program``."""
    try:
        program = load_program(arguments.program)
        geometry = GeometryParams(
            n_banks=arguments.banks,
            subarrays_per_bank=arguments.subarrays,
            rows_per_subarray=arguments.rows_per_subarray,
            columns=arguments.columns)
        request = build_request(
            program, devices=arguments.devices,
            groups=tuple(arguments.groups), seed=arguments.seed,
            geometry=geometry)
        backend = get_backend(arguments.backend)
        started = time.perf_counter()
        outcome = backend.execute_program(request,
                                          trace_path=arguments.trace_out)
    except (ProgramError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _report(outcome, backend.name, arguments,
            time.perf_counter() - started)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro run-program ...``)."""
    parser = argparse.ArgumentParser(
        prog="repro run-program",
        description="Execute a SoftMC assembly program on any registered "
                    "backend over a deterministic device fleet.")
    add_run_program_arguments(parser)
    return run_program_cli(parser.parse_args(argv))


def _report(outcome: ProgramOutcome, backend_name: str,
            arguments: argparse.Namespace, elapsed_s: float) -> None:
    # Stdout is the deterministic, backend-agnostic surface; everything
    # engine-specific goes to stderr so backends diff clean.
    print(outcome.render(), end="")
    print(f"# backend {backend_name}: {len(outcome.devices)} device(s) "
          f"in {elapsed_s:.3f}s", file=sys.stderr)
    if arguments.trace_out:
        print(f"# trace written to {arguments.trace_out}", file=sys.stderr)
