"""The batched backend: all devices as lanes of one vectorized engine.

Every requested ``(group, serial)`` module becomes a lane of a
:class:`~repro.dram.batched.BatchedChip` (fabricated bit-identically to
the scalar fleet member), and the whole program replays across all lanes
at once through :class:`~repro.controller.batched.BatchedSoftMC`.  Lane
``i`` is cycle- and state-identical to scalar device ``i``; telemetry
counters multiply by the lane count exactly as the scalar per-device
loop would accumulate them.
"""

from __future__ import annotations

from ..controller.batched import BatchedSoftMC
from ..controller.program import LeakStep
from ..dram.batched import BatchedChip
from .base import Backend, DeviceResult, ProgramRequest, lane_state_digest
from .registry import register_backend

__all__ = ["BatchedBackend"]


@register_backend
class BatchedBackend(Backend):
    """Vectorized engine: one lane per device, NumPy over the fleet axis."""

    name = "batched"
    description = "vectorized lanes (BatchedSoftMC over a device fleet)"

    def lane_width(self, auto: int, batch: int | None) -> int:
        if auto < 1:
            return 1
        if batch is None:
            return auto
        return max(1, min(int(batch), auto))

    def _execute(self, request: ProgramRequest) -> tuple[DeviceResult, ...]:
        device = BatchedChip.from_fleet(
            request.devices, geometry=request.geometry,
            master_seed=request.master_seed)
        mc = BatchedSoftMC(device)
        lanes = mc.all_lanes()
        reads_per_lane: list[list] = [[] for _ in lanes]
        for step in request.program.steps:
            if isinstance(step, LeakStep):
                device.advance_time(step.seconds, lanes)
            else:
                for block in mc.run(step, lanes):
                    for index in lanes:
                        reads_per_lane[index].append(block[index].copy())
        return tuple(
            DeviceResult(
                group=group_id, serial=int(serial),
                reads=tuple(reads_per_lane[index]),
                cycles=int(mc.cycles[index]),
                dropped_commands=int(device.dropped_commands[index]),
                state_digest=lane_state_digest(device, index))
            for index, (group_id, serial) in enumerate(request.devices))
