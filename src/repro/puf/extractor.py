"""Von Neumann randomness extractor (Section VI-B2).

Raw PUF responses are biased (the per-group Hamming weight is not 0.5), so
before feeding them to the NIST suite the paper whitens them with a
modified Von Neumann extractor: consume bits in non-overlapping pairs,
emit the first bit of each discordant pair, discard concordant pairs.  If
the input bits are independent with any fixed bias p, the output bits are
exactly unbiased — at the cost of throughput (p(1-p) output bits per input
bit on average).
"""

from __future__ import annotations

import numpy as np

__all__ = ["von_neumann_extract", "extraction_efficiency"]


def von_neumann_extract(bits: np.ndarray) -> np.ndarray:
    """Whiten a bit vector; returns the (shorter) unbiased stream.

    A trailing unpaired bit is discarded.

    >>> von_neumann_extract(np.array([0, 1, 1, 0, 1, 1, 0, 0])).tolist()
    [0, 1]
    """
    flat = np.asarray(bits, dtype=bool).reshape(-1)
    usable = flat[: flat.size // 2 * 2].reshape(-1, 2)
    discordant = usable[:, 0] != usable[:, 1]
    return usable[discordant, 0].astype(np.uint8)


def extraction_efficiency(bias: float) -> float:
    """Expected output/input ratio for i.i.d. input bits of weight ``bias``.

    >>> round(extraction_efficiency(0.5), 3)
    0.25
    """
    if not 0.0 <= bias <= 1.0:
        raise ValueError("bias must be in [0, 1]")
    return bias * (1.0 - bias)
