"""Device-batched Frac PUF: one challenge, every module at once.

:class:`BatchedFracPuf` mirrors :class:`~repro.puf.frac_puf.FracPuf`
over a :class:`~repro.dram.batched.BatchedChip` whose lanes are distinct
modules (a :meth:`~repro.dram.batched.BatchedChip.from_fleet` batch).
Each challenge is evaluated for all lanes in one vectorized pass through
:class:`~repro.controller.batched.BatchedSoftMC`: the reserved-row fill,
the in-DRAM row copy, the ten Frac operations and the destructive read
are each a single batched command sequence instead of L scalar ones.

The byte-identity contract of the batched engine applies: lane ``i`` of
``evaluate_many`` equals the scalar ``FracPuf(make_chip(...))`` response
for module ``i``, bit for bit, because every lane draws from the same
noise stream the scalar module would own.  Noise epochs (the repeated
measurements of the intra-HD studies) are swept with
:meth:`reseed_noise`, matching the scalar
:meth:`~repro.dram.chip.DramChip.reseed_noise` tree.
"""

from __future__ import annotations

import numpy as np

from ..core.batched_ops import BatchedFracDram
from ..dram.batched import BatchedChip
from ..errors import ConfigurationError, UnsupportedOperationError
from .frac_puf import PUF_N_FRAC, Challenge

__all__ = ["BatchedFracPuf"]


class BatchedFracPuf:
    """Challenge/response PUF over a batch of simulated modules."""

    def __init__(self, device: BatchedChip, *,
                 n_frac: int = PUF_N_FRAC) -> None:
        if n_frac < 1:
            raise ConfigurationError("n_frac must be >= 1")
        self.bfd = BatchedFracDram(device)
        for group in device.groups:
            if group.decoder.enforces_command_spacing:
                raise UnsupportedOperationError(
                    f"group {group.group_id} drops out-of-spec commands; "
                    "a Frac-based PUF is impossible on it (Table I)")
        self.n_frac = n_frac
        self._prepared_reserved: set[tuple[int, int]] = set()

    @property
    def n_lanes(self) -> int:
        return self.bfd.n_lanes

    @property
    def response_bits(self) -> int:
        return self.bfd.columns

    def reseed_noise(self, epoch: int) -> None:
        """Start a new measurement-noise epoch on every module lane."""
        self.bfd.device.reseed_noise(epoch)

    def _reserved_row(self, bank: int, row: int) -> int:
        """The reserved all-ones row in the challenge row's sub-array.

        Lanes execute the same challenge stream, so the lazy one-time
        fill is shared batch state: the first challenge into a sub-array
        fills the reserved row on every lane at once.
        """
        rows_per_subarray = int(self.bfd.device.geometry.rows_per_subarray)
        subarray = row // rows_per_subarray
        reserved = (subarray + 1) * rows_per_subarray - 1
        if reserved == row:
            raise ConfigurationError(
                f"row {row} is the reserved initialization row; "
                "challenge a different row")
        key = (bank, subarray)
        if key not in self._prepared_reserved:
            lanes = self.bfd.all_lanes()
            self.bfd.fill_row(bank, [reserved] * len(lanes), True, lanes)
            self._prepared_reserved.add(key)
        return reserved

    def evaluate(self, challenge: Challenge) -> np.ndarray:
        """Response bits for every lane, ``(n_lanes, response_bits)``."""
        bank, row = challenge.bank, challenge.row
        reserved = self._reserved_row(bank, row)
        lanes = self.bfd.all_lanes()
        self.bfd.row_copy(bank, [reserved] * len(lanes),
                          [row] * len(lanes), lanes)
        self.bfd.frac(bank, [row] * len(lanes), self.n_frac, lanes)
        return self.bfd.read_row(bank, [row] * len(lanes), lanes)

    def evaluate_many(self, challenges: list[Challenge]) -> np.ndarray:
        """Stacked responses, ``(n_lanes, len(challenges), response_bits)``.

        Lane ``i`` of the result equals what the scalar
        ``FracPuf.evaluate_many`` would return for module ``i``.
        """
        if not challenges:
            return np.empty((self.n_lanes, 0, self.response_bits), dtype=bool)
        return np.stack([self.evaluate(challenge)
                         for challenge in challenges], axis=1)
