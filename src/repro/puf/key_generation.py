"""Cryptographic key generation from PUF responses (fuzzy extraction).

PUF responses are noisy (intra-HD up to ~5%) and biased, so they cannot
be used as keys directly.  The standard construction — used by PUFKY and
cited by the paper as a PUF application [31, 32] — is a *fuzzy extractor*:

* **enroll**: draw a random key, encode it with an error-correcting code,
  XOR the codeword with the PUF response; the XOR ("helper data") is
  public and reveals (information-theoretically) nothing about the key as
  long as the response has enough min-entropy.

* **reconstruct**: XOR the helper data with a fresh (noisy) response and
  decode; as long as the response flipped fewer bits than the code
  corrects, the original key returns exactly.

This module implements the classic repetition-code fuzzy extractor: each
key bit is spread over ``repetition`` response bits and reconstructed by
majority vote — simple, from scratch, and strong enough for the Frac
PUF's ~1% intra-HD (a 5x repetition corrects any 2 flips per group; the
per-bit failure rate at p = 0.05 is below 1e-3, at p = 0.01 below 1e-5).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, InsufficientDataError
from .frac_puf import Challenge, FracPuf

__all__ = ["HelperData", "FuzzyExtractor", "key_failure_probability"]


def key_failure_probability(bit_error_rate: float, repetition: int,
                            key_bits: int) -> float:
    """Probability that at least one key bit mis-reconstructs.

    A key bit fails when more than ``repetition // 2`` of its response
    bits flipped (binomial tail).
    """
    from scipy.stats import binom

    threshold = repetition // 2
    per_bit = float(binom.sf(threshold, repetition, bit_error_rate))
    return 1.0 - (1.0 - per_bit) ** key_bits


@dataclass(frozen=True)
class HelperData:
    """Public helper data bound to one (device, challenge list) pair."""

    mask: np.ndarray          # codeword XOR response
    repetition: int
    key_bits: int
    key_check: bytes          # hash for reconstruction verification

    def __post_init__(self) -> None:
        if self.mask.size != self.repetition * self.key_bits:
            raise ConfigurationError("helper mask size mismatch")


class FuzzyExtractor:
    """Repetition-code fuzzy extractor over Frac-PUF responses."""

    def __init__(self, puf: FracPuf, challenges: list[Challenge], *,
                 repetition: int = 5, key_bits: int = 128) -> None:
        if repetition < 3 or repetition % 2 == 0:
            raise ConfigurationError("repetition must be odd and >= 3")
        if key_bits < 1:
            raise ConfigurationError("key_bits must be >= 1")
        self.puf = puf
        self.challenges = list(challenges)
        self.repetition = repetition
        self.key_bits = key_bits
        needed = repetition * key_bits
        available = len(self.challenges) * puf.response_bits
        if available < needed:
            raise InsufficientDataError(
                f"need {needed} response bits, challenges provide {available}")

    # ------------------------------------------------------------------

    def _response_bits(self) -> np.ndarray:
        stream = self.puf.concatenated_bitstream(self.challenges)
        return stream[: self.repetition * self.key_bits].astype(bool)

    @staticmethod
    def _encode(key: np.ndarray, repetition: int) -> np.ndarray:
        return np.repeat(key.astype(bool), repetition)

    @staticmethod
    def _decode(codeword: np.ndarray, repetition: int) -> np.ndarray:
        groups = codeword.reshape(-1, repetition)
        return groups.sum(axis=1) * 2 > repetition

    @staticmethod
    def _check(key: np.ndarray) -> bytes:
        packed = np.packbits(key.astype(np.uint8))
        return hashlib.sha256(packed.tobytes()).digest()

    # ------------------------------------------------------------------

    def enroll(self, rng: np.random.Generator) -> tuple[np.ndarray, HelperData]:
        """Generate a fresh key and its public helper data."""
        key = rng.integers(0, 2, size=self.key_bits).astype(bool)
        codeword = self._encode(key, self.repetition)
        response = self._response_bits()
        helper = HelperData(
            mask=codeword ^ response,
            repetition=self.repetition,
            key_bits=self.key_bits,
            key_check=self._check(key),
        )
        return key, helper

    def reconstruct(self, helper: HelperData) -> np.ndarray:
        """Recover the key from a fresh noisy response + helper data.

        Raises :class:`InsufficientDataError` if the reconstructed key
        fails the integrity check (too many response flips).
        """
        if helper.repetition != self.repetition or helper.key_bits != self.key_bits:
            raise ConfigurationError("helper data parameters mismatch")
        response = self._response_bits()
        codeword = helper.mask ^ response
        key = self._decode(codeword, self.repetition)
        if self._check(key) != helper.key_check:
            raise InsufficientDataError(
                "key reconstruction failed (response too noisy)")
        return key
