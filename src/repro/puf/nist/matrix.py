"""NIST test 5: binary matrix rank (SP800-22 section 2.5)."""

from __future__ import annotations

import numpy as np

from .common import TestResult, as_bits, igamc, not_applicable

__all__ = ["binary_matrix_rank_test", "gf2_rank"]

_M = 32
_Q = 32

# Asymptotic probabilities of rank M, M-1, and <= M-2 for random MxM
# GF(2) matrices (section 3.5).
_P_FULL = 0.2888
_P_MINUS_1 = 0.5776
_P_REST = 1.0 - _P_FULL - _P_MINUS_1


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a 0/1 matrix over GF(2) via vectorized Gaussian elimination.

    The column loop survives (each pivot depends on the previous one) but
    the pivot search and the row elimination are whole-array operations
    instead of per-row Python bit twiddling.
    """
    working = np.array(matrix, dtype=bool)
    rows, cols = working.shape
    rank = 0
    for col in range(cols - 1, -1, -1):
        pivots = np.flatnonzero(working[rank:, col])
        if pivots.size == 0:
            continue
        pivot_index = rank + int(pivots[0])
        if pivot_index != rank:
            working[[rank, pivot_index]] = working[[pivot_index, rank]]
        eliminate = working[:, col].copy()
        eliminate[rank] = False
        working[eliminate] ^= working[rank]
        rank += 1
        if rank == rows:
            break
    return rank


def binary_matrix_rank_test(sequence) -> TestResult:
    """Binary matrix rank test with 32x32 matrices."""
    bits = as_bits(sequence)
    n = bits.size
    matrix_bits = _M * _Q
    n_matrices = n // matrix_bits
    if n_matrices < 38:
        return not_applicable(
            "matrix-rank", f"needs >= 38 matrices (38*1024 bits), got {n_matrices}")
    matrices = bits[: n_matrices * matrix_bits].reshape(n_matrices, _M, _Q)
    ranks = np.asarray([gf2_rank(matrix) for matrix in matrices])
    count_full = int(np.count_nonzero(ranks == _M))
    count_minus_1 = int(np.count_nonzero(ranks == _M - 1))
    count_rest = n_matrices - count_full - count_minus_1
    chi_squared = (
        (count_full - _P_FULL * n_matrices) ** 2 / (_P_FULL * n_matrices)
        + (count_minus_1 - _P_MINUS_1 * n_matrices) ** 2 / (_P_MINUS_1 * n_matrices)
        + (count_rest - _P_REST * n_matrices) ** 2 / (_P_REST * n_matrices)
    )
    p_value = igamc(1.0, chi_squared / 2.0)
    return TestResult("matrix-rank", (p_value,))
