"""Second-level NIST analysis over multiple sequences (SP800-22 sec. 4.2).

Testing a single stream at alpha = 0.01 false-rejects ~1% of the time per
test, so NIST's recommended procedure splits the data into m sequences and
applies two aggregate criteria per test:

* **proportion** — the fraction of sequences with p >= alpha must lie in
  the confidence band  (1 - alpha) ± 3 sqrt(alpha (1 - alpha) / m);

* **uniformity** — the p-values must be uniform on [0, 1): a chi-squared
  over ten bins whose own p-value (``igamc(9/2, chi2/2)``) must exceed
  1e-4.

This is the statistically sound version of the paper's "all 15 tests
passed" claim and what the multi-module experiment uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Sequence

import numpy as np

from .common import DEFAULT_ALPHA, TestResult, igamc
from .suite import ALL_TESTS, SuiteResult, run_all

__all__ = ["TestAssessment", "MultiSequenceAssessment", "assess_sequences"]

#: NIST's uniformity cutoff for the second-level chi-squared p-value.
UNIFORMITY_THRESHOLD: float = 1e-4


@dataclass(frozen=True)
class TestAssessment:
    """Aggregate verdict for one test across all sequences."""

    #: The Test- prefix is NIST terminology, not a pytest case.
    __test__: ClassVar[bool] = False

    name: str
    p_values: tuple[float, ...]
    n_sequences: int
    alpha: float

    @property
    def applicable(self) -> bool:
        return bool(self.p_values)

    @property
    def proportion(self) -> float:
        if not self.p_values:
            return float("nan")
        return sum(1 for p in self.p_values if p >= self.alpha) / len(self.p_values)

    @property
    def proportion_band(self) -> tuple[float, float]:
        expected = 1.0 - self.alpha
        if not self.p_values:
            return expected, expected
        margin = 3.0 * math.sqrt(self.alpha * (1.0 - self.alpha)
                                 / len(self.p_values))
        return max(0.0, expected - margin), min(1.0, expected + margin)

    @property
    def max_allowed_failures(self) -> int:
        """Largest failure count consistent with randomness at 99.9%.

        NIST's 3-sigma proportion band is a normal approximation that
        breaks down for small sequence counts (it then tolerates zero
        failures, rejecting genuinely random data with high probability).
        The exact binomial tail gives the equivalent criterion at any m.
        """
        from scipy.stats import binom

        if not self.p_values:
            return 0
        return int(binom.ppf(0.999, len(self.p_values), self.alpha))

    @property
    def proportion_ok(self) -> bool:
        if not self.applicable:
            return False
        failures = sum(1 for p in self.p_values if p < self.alpha)
        return failures <= self.max_allowed_failures

    @property
    def uniformity_p(self) -> float:
        """Chi-squared uniformity of the p-values over ten bins."""
        if len(self.p_values) < 2:
            return float("nan")
        counts, _ = np.histogram(self.p_values, bins=10, range=(0.0, 1.0))
        expected = len(self.p_values) / 10.0
        chi_squared = float(np.sum((counts - expected) ** 2 / expected))
        return igamc(9.0 / 2.0, chi_squared / 2.0)

    @property
    def uniformity_ok(self) -> bool:
        uniformity = self.uniformity_p
        return math.isnan(uniformity) or uniformity >= UNIFORMITY_THRESHOLD

    def passed(self) -> bool:
        return self.applicable and self.proportion_ok and self.uniformity_ok

    def summary(self) -> str:
        if not self.applicable:
            return f"{self.name:<28s}  SKIPPED (not applicable on any sequence)"
        low, _ = self.proportion_band
        verdict = "PASS" if self.passed() else "FAIL"
        uniformity = self.uniformity_p
        uniformity_text = ("n/a" if math.isnan(uniformity)
                           else f"{uniformity:.4f}")
        return (f"{self.name:<28s}  proportion={self.proportion:.3f} "
                f"(min {low:.3f})  uniformity-p={uniformity_text}  {verdict}")


@dataclass(frozen=True)
class MultiSequenceAssessment:
    """Second-level verdicts for the full suite."""

    assessments: tuple[TestAssessment, ...]
    n_sequences: int
    alpha: float

    @property
    def all_passed(self) -> bool:
        return all(a.passed() for a in self.assessments if a.applicable)

    @property
    def n_applicable(self) -> int:
        return sum(1 for a in self.assessments if a.applicable)

    def format_table(self) -> str:
        lines = [f"NIST second-level assessment over {self.n_sequences} "
                 f"sequences (alpha={self.alpha})"]
        lines.extend(a.summary() for a in self.assessments)
        passed = sum(1 for a in self.assessments if a.passed())
        lines.append(f"=> {passed}/{self.n_applicable} applicable tests passed")
        return "\n".join(lines)


def _collect(results_by_sequence: Sequence[SuiteResult],
             alpha: float) -> tuple[TestAssessment, ...]:
    n_tests = len(ALL_TESTS)
    names = [test.__name__.replace("_test", "").replace("_", "-")
             for test in ALL_TESTS]
    assessments = []
    for index in range(n_tests):
        p_values: list[float] = []
        name = names[index]
        for suite in results_by_sequence:
            result: TestResult = suite.results[index]
            name = result.name
            if result.applicable:
                # Every p-value is an independent uniform sample under the
                # null (NIST assesses multi-p tests like serial and the
                # excursions per p-value, not by their minimum).
                p_values.extend(result.p_values)
        assessments.append(TestAssessment(
            name=name, p_values=tuple(p_values),
            n_sequences=len(results_by_sequence), alpha=alpha))
    return tuple(assessments)


def assess_sequences(sequences: Sequence[np.ndarray], *,
                     alpha: float = DEFAULT_ALPHA,
                     linear_complexity_max_blocks: int | None = 400,
                     ) -> MultiSequenceAssessment:
    """Run the suite on each sequence and apply the second-level criteria."""
    if len(sequences) < 2:
        raise ValueError("second-level assessment needs >= 2 sequences")
    suites = [run_all(sequence, alpha=alpha,
                      linear_complexity_max_blocks=linear_complexity_max_blocks)
              for sequence in sequences]
    return MultiSequenceAssessment(
        assessments=_collect(suites, alpha),
        n_sequences=len(sequences),
        alpha=alpha,
    )
