"""NIST test 6: discrete Fourier transform / spectral (section 2.6)."""

from __future__ import annotations

import math

import numpy as np

from .common import TestResult, as_bits, erfc, not_applicable

__all__ = ["dft_test"]


def dft_test(sequence) -> TestResult:
    """Detect periodic features via the magnitude spectrum."""
    bits = as_bits(sequence)
    n = bits.size
    if n < 1000:
        return not_applicable("dft", f"needs n >= 1000, got {n}")
    signal = 2.0 * bits.astype(np.float64) - 1.0
    magnitudes = np.abs(np.fft.rfft(signal))[: n // 2]
    threshold = math.sqrt(math.log(1.0 / 0.05) * n)
    expected_below = 0.95 * n / 2.0
    observed_below = int(np.count_nonzero(magnitudes < threshold))
    d = (observed_below - expected_below) / math.sqrt(n * 0.95 * 0.05 / 4.0)
    p_value = float(erfc(abs(d) / math.sqrt(2.0)))
    return TestResult("dft", (p_value,))
