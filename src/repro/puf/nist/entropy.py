"""NIST tests 11 and 12: serial and approximate entropy."""

from __future__ import annotations

import math

import numpy as np

from .common import TestResult, as_bits, igamc, not_applicable

__all__ = ["serial_test", "approximate_entropy_test"]


def _pattern_counts(bits: np.ndarray, m: int) -> np.ndarray:
    """Counts of all overlapping m-bit patterns with wrap-around."""
    if m == 0:
        return np.asarray([bits.size])
    extended = np.concatenate([bits, bits[: m - 1]])
    windows = np.lib.stride_tricks.sliding_window_view(extended, m)[: bits.size]
    powers = 1 << np.arange(m - 1, -1, -1)
    values = windows @ powers
    return np.bincount(values, minlength=1 << m)


def _psi_squared(bits: np.ndarray, m: int) -> float:
    """The psi^2_m statistic of section 2.11."""
    if m <= 0:
        return 0.0
    counts = _pattern_counts(bits, m)
    n = bits.size
    return float((1 << m) / n * np.sum(counts.astype(np.float64) ** 2) - n)


def serial_test(sequence, m: int = 5) -> TestResult:
    """Serial test (section 2.11): uniformity of overlapping m-patterns."""
    bits = as_bits(sequence)
    n = bits.size
    if m < 2 or n < (1 << (m + 2)):
        return not_applicable("serial", f"needs n >= 2^(m+2) with m={m}, got {n}")
    psi_m = _psi_squared(bits, m)
    psi_m1 = _psi_squared(bits, m - 1)
    psi_m2 = _psi_squared(bits, m - 2)
    delta_1 = psi_m - psi_m1
    delta_2 = psi_m - 2.0 * psi_m1 + psi_m2
    p_value_1 = igamc(2.0 ** (m - 2), delta_1 / 2.0)
    p_value_2 = igamc(2.0 ** (m - 3), delta_2 / 2.0)
    return TestResult("serial", (p_value_1, p_value_2))


def approximate_entropy_test(sequence, m: int = 2) -> TestResult:
    """Approximate entropy test (section 2.12)."""
    bits = as_bits(sequence)
    n = bits.size
    if n < (1 << (m + 5)):
        return not_applicable(
            "approximate-entropy", f"needs n >= 2^(m+5) with m={m}, got {n}")

    def phi(block_length: int) -> float:
        if block_length == 0:
            return 0.0
        counts = _pattern_counts(bits, block_length)
        proportions = counts[counts > 0] / n
        return float(np.sum(proportions * np.log(proportions)))

    ap_en = phi(m) - phi(m + 1)
    chi_squared = 2.0 * n * (math.log(2.0) - ap_en)
    p_value = igamc(2.0 ** (m - 1), chi_squared / 2.0)
    return TestResult("approximate-entropy", (p_value,))
