"""NIST tests 3 and 4: runs, and longest run of ones in a block."""

from __future__ import annotations

import math

import numpy as np

from .common import TestResult, as_bits, erfc, igamc, not_applicable

__all__ = ["runs_test", "longest_run_test"]


def runs_test(sequence) -> TestResult:
    """Runs test (SP800-22 section 2.3)."""
    bits = as_bits(sequence)
    n = bits.size
    if n < 100:
        return not_applicable("runs", f"needs n >= 100, got {n}")
    proportion = float(np.mean(bits))
    if abs(proportion - 0.5) >= 2.0 / math.sqrt(n):
        # Frequency prerequisite failed; NIST reports p = 0.
        return TestResult("runs", (0.0,),
                          note="frequency prerequisite failed")
    v_obs = int(np.count_nonzero(np.diff(bits))) + 1
    numerator = abs(v_obs - 2.0 * n * proportion * (1.0 - proportion))
    denominator = 2.0 * math.sqrt(2.0 * n) * proportion * (1.0 - proportion)
    p_value = float(erfc(numerator / denominator))
    return TestResult("runs", (p_value,))


# (block size M) -> (K, clip range, category probabilities), section 2.4.
# Categories are the longest-run length clipped into [low, high]: e.g. for
# M=8 the categories are <=1, 2, 3, >=4.
_LONGEST_RUN_TABLES: dict[int, tuple[int, tuple[int, int], tuple[float, ...]]] = {
    8: (3, (1, 4), (0.2148, 0.3672, 0.2305, 0.1875)),
    128: (5, (4, 9),
          (0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124)),
    10000: (6, (10, 16),
            (0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727)),
}


def _longest_run_of_ones(block: np.ndarray) -> int:
    longest = current = 0
    for bit in block:
        current = current + 1 if bit else 0
        if current > longest:
            longest = current
    return longest


def longest_run_test(sequence) -> TestResult:
    """Longest run of ones in a block (section 2.4).

    Block size auto-selects per NIST: M=8 for n >= 128, M=128 for
    n >= 6272, M=10000 for n >= 750000.
    """
    bits = as_bits(sequence)
    n = bits.size
    if n < 128:
        return not_applicable("longest-run", f"needs n >= 128, got {n}")
    if n >= 750000:
        block_size = 10000
    elif n >= 6272:
        block_size = 128
    else:
        block_size = 8
    k, (low, high), probabilities = _LONGEST_RUN_TABLES[block_size]
    n_blocks = n // block_size
    blocks = bits[: n_blocks * block_size].reshape(n_blocks, block_size)

    # Longest run per block: zero positions (with sentinels) bracket runs.
    longest = np.zeros(n_blocks, dtype=int)
    padded = np.zeros((n_blocks, block_size + 2), dtype=np.int8)
    padded[:, 1:-1] = blocks
    for index in range(n_blocks):
        zero_positions = np.flatnonzero(padded[index] == 0)
        longest[index] = int(np.max(np.diff(zero_positions))) - 1

    clipped = np.clip(longest, low, high)
    counts = np.asarray(
        [int(np.count_nonzero(clipped == value)) for value in range(low, high + 1)])
    expected = np.asarray(probabilities) * n_blocks
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    p_value = igamc(k / 2.0, chi_squared / 2.0)
    return TestResult("longest-run", (p_value,))
