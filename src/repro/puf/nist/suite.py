"""Runner for the 15-test NIST SP800-22 suite (Section VI-B2).

The paper feeds one million whitened bits per module into the suite and
reports that all 15 tests pass.  :func:`run_all` reproduces that check and
:class:`SuiteResult` renders the same pass/fail table.
"""

from __future__ import annotations

from dataclasses import dataclass


from .common import DEFAULT_ALPHA, TestResult, as_bits
from .complexity import linear_complexity_test
from .entropy import approximate_entropy_test, serial_test
from .excursions import random_excursions_test, random_excursions_variant_test
from .frequency import block_frequency_test, cumulative_sums_test, frequency_test
from .matrix import binary_matrix_rank_test
from .runs import longest_run_test, runs_test
from .spectral import dft_test
from .template import non_overlapping_template_test, overlapping_template_test
from .universal import universal_test

__all__ = ["SuiteResult", "run_all", "ALL_TESTS"]

#: All 15 NIST tests in SP800-22 order.
ALL_TESTS = (
    frequency_test,
    block_frequency_test,
    runs_test,
    longest_run_test,
    binary_matrix_rank_test,
    dft_test,
    non_overlapping_template_test,
    overlapping_template_test,
    universal_test,
    linear_complexity_test,
    serial_test,
    approximate_entropy_test,
    cumulative_sums_test,
    random_excursions_test,
    random_excursions_variant_test,
)


@dataclass(frozen=True)
class SuiteResult:
    """All individual test outcomes plus the aggregate verdict."""

    results: tuple[TestResult, ...]
    alpha: float = DEFAULT_ALPHA

    @property
    def n_passed(self) -> int:
        return sum(1 for result in self.results if result.passed(self.alpha))

    @property
    def n_applicable(self) -> int:
        return sum(1 for result in self.results if result.applicable)

    @property
    def all_passed(self) -> bool:
        """True when every applicable test passes (the paper's criterion)."""
        return all(result.passed(self.alpha)
                   for result in self.results if result.applicable)

    def format_table(self) -> str:
        lines = [f"NIST SP800-22 suite (alpha={self.alpha})"]
        lines.extend(result.summary(self.alpha) for result in self.results)
        lines.append(
            f"=> {self.n_passed}/{self.n_applicable} applicable tests passed")
        return "\n".join(lines)


def run_all(sequence, *, alpha: float = DEFAULT_ALPHA,
            linear_complexity_max_blocks: int | None = 400) -> SuiteResult:
    """Run the full suite on a bit sequence.

    ``linear_complexity_max_blocks`` bounds the slowest test's work on
    multi-megabit streams (statistically valid; noted in the result).
    """
    bits = as_bits(sequence)
    results = []
    for test in ALL_TESTS:
        if test is linear_complexity_test:
            results.append(test(bits, max_blocks=linear_complexity_max_blocks))
        else:
            results.append(test(bits))
    return SuiteResult(tuple(results), alpha)
