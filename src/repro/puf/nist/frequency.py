"""NIST tests 1, 2, and 13: frequency (monobit), block frequency, and
cumulative sums.  Section and parameter numbering follows SP800-22 rev 1a.
"""

from __future__ import annotations

import math

import numpy as np

from .common import TestResult, as_bits, erfc, igamc, not_applicable

__all__ = ["frequency_test", "block_frequency_test", "cumulative_sums_test"]


def frequency_test(sequence) -> TestResult:
    """Monobit frequency test (SP800-22 section 2.1)."""
    bits = as_bits(sequence)
    n = bits.size
    if n < 100:
        return not_applicable("frequency", f"needs n >= 100, got {n}")
    s_n = np.sum(2 * bits.astype(np.int64) - 1)
    s_obs = abs(s_n) / math.sqrt(n)
    p_value = float(erfc(s_obs / math.sqrt(2.0)))
    return TestResult("frequency", (p_value,))


def block_frequency_test(sequence, block_size: int = 128) -> TestResult:
    """Frequency within a block (section 2.2)."""
    bits = as_bits(sequence)
    n = bits.size
    if n < 100 or n < block_size:
        return not_applicable("block-frequency", f"needs n >= 100, got {n}")
    n_blocks = n // block_size
    trimmed = bits[: n_blocks * block_size].reshape(n_blocks, block_size)
    proportions = trimmed.mean(axis=1)
    chi_squared = 4.0 * block_size * float(np.sum((proportions - 0.5) ** 2))
    p_value = igamc(n_blocks / 2.0, chi_squared / 2.0)
    return TestResult("block-frequency", (p_value,))


def _truncated_div(numerator: int, denominator: int) -> int:
    """C-style integer division (truncation toward zero).

    The NIST reference implementation computes the summation bounds of
    section 2.13 with C ``int`` arithmetic; matching it exactly keeps our
    p-values aligned with the published known-answer examples.
    """
    quotient = numerator // denominator
    if numerator % denominator != 0 and (numerator < 0) != (denominator < 0):
        quotient += 1
    return quotient


def _cusum_p_value(z: int, n: int) -> float:
    """The double-sum tail expression of section 2.13 (vectorized)."""
    from scipy.special import ndtr

    if z == 0:
        return 0.0
    sqrt_n = math.sqrt(n)
    k_high = _truncated_div(_truncated_div(n, z) - 1, 4)
    k_first = np.arange(_truncated_div(_truncated_div(-n, z) + 1, 4),
                        k_high + 1)
    k_second = np.arange(_truncated_div(_truncated_div(-n, z) - 3, 4),
                         k_high + 1)
    total = 1.0
    total -= float(np.sum(ndtr((4 * k_first + 1) * z / sqrt_n)
                          - ndtr((4 * k_first - 1) * z / sqrt_n)))
    total += float(np.sum(ndtr((4 * k_second + 3) * z / sqrt_n)
                          - ndtr((4 * k_second + 1) * z / sqrt_n)))
    return float(min(max(total, 0.0), 1.0))


def cumulative_sums_test(sequence) -> TestResult:
    """Cumulative sums test, forward and backward modes (section 2.13)."""
    bits = as_bits(sequence)
    n = bits.size
    if n < 100:
        return not_applicable("cumulative-sums", f"needs n >= 100, got {n}")
    steps = 2 * bits.astype(np.int64) - 1
    forward = np.cumsum(steps)
    backward = np.cumsum(steps[::-1])
    p_forward = _cusum_p_value(int(np.max(np.abs(forward))), n)
    p_backward = _cusum_p_value(int(np.max(np.abs(backward))), n)
    return TestResult("cumulative-sums", (p_forward, p_backward))
