"""NIST test 9: Maurer's universal statistical test (section 2.9)."""

from __future__ import annotations

import math

import numpy as np

from .common import TestResult, as_bits, erfc, not_applicable

__all__ = ["universal_test"]

# (L) -> (expected value, variance) from SP800-22 table in section 2.9.
_EXPECTED: dict[int, tuple[float, float]] = {
    6: (5.2177052, 2.954),
    7: (6.1962507, 3.125),
    8: (7.1836656, 3.238),
    9: (8.1764248, 3.311),
    10: (9.1723243, 3.356),
    11: (10.170032, 3.384),
    12: (11.168765, 3.401),
}

# Minimum sequence length for each block size L (n >= (Q + K) * L with
# Q = 10 * 2^L and K = 1000 * 2^L as recommended).
_MIN_N: tuple[tuple[int, int], ...] = (
    (12, 5242880),
    (11, 2654208),
    (10, 1342400),
    (9, 904960),
    (8, 387840),
    (7, 259200),
    (6, 96256),  # relaxed entry point so ~100 kbit streams are testable
)


def universal_test(sequence) -> TestResult:
    """Maurer's "universal statistical" compression-based test."""
    bits = as_bits(sequence)
    n = bits.size
    block_size = 0
    for candidate, minimum in _MIN_N:
        if n >= minimum:
            block_size = candidate
            break
    if block_size == 0:
        return not_applicable("universal", f"needs n >= 96256, got {n}")
    q = 10 * (1 << block_size)
    k = n // block_size - q
    if k <= 0:
        return not_applicable("universal", "not enough blocks after init segment")

    # Pack each L-bit block into an integer.
    usable = bits[: (q + k) * block_size].reshape(-1, block_size)
    powers = 1 << np.arange(block_size - 1, -1, -1)
    values = usable @ powers

    last_seen = np.zeros(1 << block_size, dtype=np.int64)
    for index in range(q):
        last_seen[values[index]] = index + 1

    total = 0.0
    log2 = math.log(2.0)
    # Process the K test blocks in chunks to stay vectorized where possible.
    for index in range(q, q + k):
        value = values[index]
        total += math.log(index + 1 - last_seen[value]) / log2
        last_seen[value] = index + 1

    fn = total / k
    expected, variance = _EXPECTED[block_size]
    c = 0.7 - 0.8 / block_size + (4 + 32 / block_size) * (k ** (-3 / block_size)) / 15
    sigma = c * math.sqrt(variance / k)
    p_value = float(erfc(abs(fn - expected) / (math.sqrt(2.0) * sigma)))
    return TestResult("universal", (p_value,))
