"""From-scratch NIST SP800-22 statistical test suite (all 15 tests)."""

from .assessment import (
    MultiSequenceAssessment,
    TestAssessment,
    assess_sequences,
)
from .common import DEFAULT_ALPHA, TestResult
from .complexity import berlekamp_massey, linear_complexity_test
from .entropy import approximate_entropy_test, serial_test
from .excursions import random_excursions_test, random_excursions_variant_test
from .frequency import block_frequency_test, cumulative_sums_test, frequency_test
from .matrix import binary_matrix_rank_test, gf2_rank
from .runs import longest_run_test, runs_test
from .spectral import dft_test
from .suite import ALL_TESTS, SuiteResult, run_all
from .template import (
    aperiodic_templates,
    non_overlapping_template_sweep,
    non_overlapping_template_test,
    overlapping_template_test,
)
from .universal import universal_test

__all__ = [
    "ALL_TESTS",
    "MultiSequenceAssessment",
    "TestAssessment",
    "assess_sequences",
    "DEFAULT_ALPHA",
    "SuiteResult",
    "TestResult",
    "approximate_entropy_test",
    "berlekamp_massey",
    "binary_matrix_rank_test",
    "block_frequency_test",
    "cumulative_sums_test",
    "dft_test",
    "frequency_test",
    "gf2_rank",
    "linear_complexity_test",
    "longest_run_test",
    "aperiodic_templates",
    "non_overlapping_template_sweep",
    "non_overlapping_template_test",
    "overlapping_template_test",
    "random_excursions_test",
    "random_excursions_variant_test",
    "run_all",
    "runs_test",
    "serial_test",
    "universal_test",
]
