"""NIST test 10: linear complexity (section 2.10).

Uses a Berlekamp-Massey implementation over GF(2) with polynomials packed
into Python integers, so the inner loop runs on C-level big-int XORs
instead of Python-level bit lists — fast enough to process hundreds of
500-bit blocks.
"""

from __future__ import annotations


import numpy as np

from .common import TestResult, as_bits, igamc, not_applicable

__all__ = ["linear_complexity_test", "berlekamp_massey"]

_K = 6
_PI = (0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833)


def berlekamp_massey(bits: np.ndarray) -> int:
    """Linear complexity (shortest LFSR length) of a 0/1 sequence.

    The connection polynomials live in NumPy uint8 vectors so both the
    discrepancy (a dot product) and the polynomial update (a shifted XOR)
    are vectorized.
    """
    s = np.asarray(bits, dtype=np.uint8).reshape(-1)
    n = s.size
    c = np.zeros(n + 1, dtype=np.uint8)
    b = np.zeros(n + 1, dtype=np.uint8)
    c[0] = b[0] = 1
    length = 0
    m = -1
    for i in range(n):
        # Discrepancy: s[i] + sum_{j=1..L} c_j * s[i-j]  (mod 2).
        if length:
            discrepancy = (int(s[i]) + int(c[1:length + 1] @ s[i - length:i][::-1])) & 1
        else:
            discrepancy = int(s[i])
        if discrepancy:
            previous_c = c.copy()
            shift = i - m
            c[shift:] ^= b[: n + 1 - shift]
            if 2 * length <= i:
                length = i + 1 - length
                m = i
                b = previous_c
    return length


def linear_complexity_test(sequence, block_size: int = 500,
                           max_blocks: int | None = None) -> TestResult:
    """Linear complexity test over ``block_size``-bit blocks.

    ``max_blocks`` caps the work for very long streams.  NIST requires at
    least 200 blocks for the chi-squared over the seven T-classes to be
    sound (the rarest class expects only ~1% of blocks); below that the
    test reports not-applicable rather than risking false rejects.
    """
    bits = as_bits(sequence)
    n = bits.size
    n_blocks = n // block_size
    if n_blocks < 200:
        return not_applicable(
            "linear-complexity",
            f"needs >= 200 blocks of {block_size}, got {n_blocks}")
    note = ""
    if max_blocks is not None and n_blocks > max_blocks:
        note = f"subsampled {max_blocks}/{n_blocks} blocks"
        n_blocks = max_blocks
    blocks = bits[: n_blocks * block_size].reshape(n_blocks, block_size)

    mu = (block_size / 2.0
          + (9.0 + (-1.0) ** (block_size + 1)) / 36.0
          - (block_size / 3.0 + 2.0 / 9.0) / 2.0 ** block_size)
    sign = (-1.0) ** block_size

    counts = np.zeros(_K + 1, dtype=int)
    for block in blocks:
        complexity = berlekamp_massey(block)
        t = sign * (complexity - mu) + 2.0 / 9.0
        if t <= -2.5:
            counts[0] += 1
        elif t <= -1.5:
            counts[1] += 1
        elif t <= -0.5:
            counts[2] += 1
        elif t <= 0.5:
            counts[3] += 1
        elif t <= 1.5:
            counts[4] += 1
        elif t <= 2.5:
            counts[5] += 1
        else:
            counts[6] += 1

    expected = np.asarray(_PI) * n_blocks
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    p_value = igamc(_K / 2.0, chi_squared / 2.0)
    return TestResult("linear-complexity", (p_value,), note=note)
