"""NIST tests 14 and 15: random excursions and random excursions variant."""

from __future__ import annotations

import math

import numpy as np

from .common import TestResult, as_bits, erfc, igamc, not_applicable

__all__ = ["random_excursions_test", "random_excursions_variant_test"]

_STATES = (-4, -3, -2, -1, 1, 2, 3, 4)
_VARIANT_STATES = tuple(x for x in range(-9, 10) if x != 0)


def _walk_and_cycle_index(bits: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Random walk, per-step cycle index, and the cycle count J.

    A cycle runs from just after one zero of the walk to (and including)
    the next zero; the final partial segment (if the walk does not end at
    zero) counts as a cycle too, per the NIST reference implementation.
    """
    walk = np.cumsum(2 * bits.astype(np.int64) - 1)
    zeros = walk == 0
    # Steps after a zero belong to the next cycle.
    cycle_index = np.concatenate([[0], np.cumsum(zeros)[:-1]])
    j = int(zeros.sum())
    if not zeros[-1]:
        j += 1  # trailing partial cycle
    return walk, cycle_index, j


def _pi_k(k: int, x: int) -> float:
    """P(state x visited exactly k times in a cycle), section 3.14."""
    ax = abs(x)
    if k == 0:
        return 1.0 - 1.0 / (2.0 * ax)
    if k < 5:
        return (1.0 / (4.0 * ax * ax)) * (1.0 - 1.0 / (2.0 * ax)) ** (k - 1)
    return (1.0 / (2.0 * ax)) * (1.0 - 1.0 / (2.0 * ax)) ** 4


def random_excursions_test(sequence) -> TestResult:
    """Random excursions test (section 2.14): one p-value per state."""
    bits = as_bits(sequence)
    n = bits.size
    if n < 10 ** 5:
        return not_applicable("random-excursions", f"needs n >= 1e5, got {n}")
    walk, cycle_index, j = _walk_and_cycle_index(bits)
    if j < max(500, int(0.005 * math.sqrt(n))):
        return not_applicable(
            "random-excursions", f"too few cycles (J={j}) for validity")
    p_values = []
    for state in _STATES:
        visits_per_cycle = np.bincount(cycle_index[walk == state],
                                       minlength=j)
        observed = np.bincount(np.minimum(visits_per_cycle, 5), minlength=6)
        expected = np.asarray([j * _pi_k(k, state) for k in range(6)])
        chi_squared = float(np.sum((observed - expected) ** 2 / expected))
        p_values.append(igamc(5.0 / 2.0, chi_squared / 2.0))
    return TestResult("random-excursions", tuple(p_values))


def random_excursions_variant_test(sequence) -> TestResult:
    """Random excursions variant (section 2.15): one p-value per state."""
    bits = as_bits(sequence)
    n = bits.size
    if n < 10 ** 5:
        return not_applicable(
            "random-excursions-variant", f"needs n >= 1e5, got {n}")
    walk, _, j = _walk_and_cycle_index(bits)
    if j < max(500, int(0.005 * math.sqrt(n))):
        return not_applicable(
            "random-excursions-variant", f"too few cycles (J={j}) for validity")
    p_values = []
    for state in _VARIANT_STATES:
        xi = int(np.count_nonzero(walk == state))
        denominator = math.sqrt(2.0 * j * (4.0 * abs(state) - 2.0))
        p_values.append(float(erfc(abs(xi - j) / denominator)))
    return TestResult("random-excursions-variant", tuple(p_values))
