"""NIST tests 7 and 8: non-overlapping and overlapping template matching."""

from __future__ import annotations


import numpy as np

from .common import TestResult, as_bits, igamc, not_applicable

__all__ = ["aperiodic_templates", "non_overlapping_template_sweep",
           "non_overlapping_template_test", "overlapping_template_test"]

#: Default 9-bit aperiodic template from the NIST reference set.
DEFAULT_TEMPLATE: tuple[int, ...] = (0, 0, 0, 0, 0, 0, 0, 0, 1)


def _is_aperiodic(bits: tuple[int, ...]) -> bool:
    """A template is aperiodic if no proper prefix equals the suffix of
    the same length (it cannot overlap a shifted copy of itself)."""
    m = len(bits)
    return all(bits[shift:] != bits[: m - shift] for shift in range(1, m))


def aperiodic_templates(m: int = 9) -> tuple[tuple[int, ...], ...]:
    """All aperiodic templates of length ``m`` (148 for m=9).

    The NIST reference distribution ships these as data files; they are
    fully determined by the aperiodicity condition, so we generate them.
    """
    templates = []
    for value in range(1 << m):
        bits = tuple(value >> (m - 1 - i) & 1 for i in range(m))
        if _is_aperiodic(bits):
            templates.append(bits)
    return tuple(templates)


def _match_positions(block: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Boolean vector: template match starting at each position."""
    m = template.size
    if block.size < m:
        return np.zeros(0, dtype=bool)
    windows = np.lib.stride_tricks.sliding_window_view(block, m)
    return np.all(windows == template, axis=1)


def _block_matches(blocks: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Per-block boolean match matrix, one sliding-window pass for all
    blocks at once."""
    windows = np.lib.stride_tricks.sliding_window_view(
        blocks, template.size, axis=1)
    return np.all(windows == template, axis=2)


def _greedy_count(matches: np.ndarray, m: int) -> int:
    """Non-overlapping scan restarting ``m`` after each accepted match."""
    count = 0
    next_free = 0
    for position in np.flatnonzero(matches):
        if position >= next_free:
            count += 1
            next_free = int(position) + m
    return count


def non_overlapping_template_test(sequence,
                                  template: tuple[int, ...] = DEFAULT_TEMPLATE,
                                  n_blocks: int = 8) -> TestResult:
    """Non-overlapping template matching (section 2.7).

    The sequence splits into ``n_blocks`` blocks; within a block the search
    restarts *after* each match (non-overlapping scan).  An aperiodic
    template can never match twice within ``m`` positions (its prefixes
    and suffixes differ by construction), so for the NIST template set
    the non-overlapping count equals the plain match count and the whole
    test is one broadcast comparison; the positional scan only runs for
    caller-supplied periodic templates.
    """
    bits = as_bits(sequence)
    tmpl = np.asarray(template, dtype=np.uint8)
    m = tmpl.size
    n = bits.size
    block_size = n // n_blocks
    if block_size < 2 * m:
        return not_applicable(
            "non-overlapping-template",
            f"block size {block_size} too small for template of {m}")
    blocks = bits[:n_blocks * block_size].reshape(n_blocks, block_size)
    matches = _block_matches(blocks, tmpl)
    if _is_aperiodic(tuple(int(bit) for bit in tmpl)):
        counts = np.count_nonzero(matches, axis=1)
    else:
        counts = np.asarray([_greedy_count(row, m) for row in matches])
    mean = (block_size - m + 1) / 2.0 ** m
    variance = block_size * (1.0 / 2.0 ** m - (2.0 * m - 1.0) / 2.0 ** (2 * m))
    chi_squared = float(np.sum((counts - mean) ** 2 / variance))
    p_value = igamc(n_blocks / 2.0, chi_squared / 2.0)
    return TestResult("non-overlapping-template", (p_value,))


def non_overlapping_template_sweep(sequence, m: int = 9,
                                   n_blocks: int = 8,
                                   max_templates: int | None = None,
                                   ) -> TestResult:
    """The full NIST variant: one p-value per aperiodic template.

    The reference suite evaluates all 148 aperiodic 9-bit templates and
    reports each p-value; the test passes under the second-level criteria
    (or, single-sequence, when the sub-alpha count stays within the
    binomial band — handled by the assessment layer).  ``max_templates``
    subsamples evenly for quick runs.
    """
    bits = as_bits(sequence)
    templates = aperiodic_templates(m)
    if max_templates is not None and len(templates) > max_templates:
        stride = len(templates) // max_templates
        templates = templates[::stride][:max_templates]
    p_values = []
    for template in templates:
        result = non_overlapping_template_test(bits, template, n_blocks)
        if not result.applicable:
            return not_applicable("non-overlapping-template-sweep",
                                  result.note)
        p_values.extend(result.p_values)
    return TestResult("non-overlapping-template-sweep", tuple(p_values),
                      note=f"{len(templates)} templates")


# Section 2.8 class probabilities for m=9, M=1032 (K=5).
_OVERLAP_PI = (0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865)
_OVERLAP_K = 5
_OVERLAP_M = 1032


def overlapping_template_test(sequence, template_length: int = 9) -> TestResult:
    """Overlapping template matching with the all-ones template (section 2.8)."""
    bits = as_bits(sequence)
    n = bits.size
    n_blocks = n // _OVERLAP_M
    if n_blocks < 1 or n < 10 ** 6 // 10:
        return not_applicable(
            "overlapping-template", f"needs n >= 100000, got {n}")
    tmpl = np.ones(template_length, dtype=np.uint8)
    blocks = bits[:n_blocks * _OVERLAP_M].reshape(n_blocks, _OVERLAP_M)
    occurrences = np.count_nonzero(_block_matches(blocks, tmpl), axis=1)
    counts = np.bincount(np.minimum(occurrences, _OVERLAP_K),
                         minlength=_OVERLAP_K + 1)
    expected = np.asarray(_OVERLAP_PI) * n_blocks
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    p_value = igamc(_OVERLAP_K / 2.0, chi_squared / 2.0)
    return TestResult("overlapping-template", (p_value,))
