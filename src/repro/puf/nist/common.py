"""Shared machinery for the NIST SP800-22 statistical test suite.

Every test consumes a binary sequence (NumPy array of 0/1) and returns a
:class:`TestResult` with one or more p-values.  A test passes when all of
its p-values are at or above the significance level (NIST default 0.01).
Some tests have minimum-length or structural prerequisites; when unmet the
result is flagged ``applicable=False`` instead of failing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfc, gammaincc

__all__ = ["TestResult", "as_bits", "igamc", "erfc", "DEFAULT_ALPHA"]

DEFAULT_ALPHA: float = 0.01


def igamc(a: float, x: float) -> float:
    """Upper regularized incomplete gamma function (NIST's ``igamc``)."""
    return float(gammaincc(a, x))


def as_bits(sequence) -> np.ndarray:
    """Normalize input to a flat uint8 array of 0/1 values."""
    bits = np.asarray(sequence)
    if bits.dtype == bool:
        return bits.astype(np.uint8).reshape(-1)
    bits = bits.reshape(-1)
    if not np.isin(bits, (0, 1)).all():
        raise ValueError("sequence must contain only 0/1 values")
    return bits.astype(np.uint8)


@dataclass(frozen=True)
class TestResult:
    """Outcome of one NIST test."""

    name: str
    p_values: tuple[float, ...]
    applicable: bool = True
    note: str = ""

    def passed(self, alpha: float = DEFAULT_ALPHA) -> bool:
        """True when applicable and every p-value clears ``alpha``."""
        if not self.applicable:
            return False
        return all(p >= alpha for p in self.p_values)

    @property
    def min_p(self) -> float:
        return min(self.p_values) if self.p_values else float("nan")

    def summary(self, alpha: float = DEFAULT_ALPHA) -> str:
        if not self.applicable:
            return f"{self.name:<28s}  SKIPPED ({self.note})"
        verdict = "PASS" if self.passed(alpha) else "FAIL"
        return f"{self.name:<28s}  min-p={self.min_p:.4f}  {verdict}"


def not_applicable(name: str, note: str) -> TestResult:
    """Helper for prerequisite failures."""
    return TestResult(name=name, p_values=(), applicable=False, note=note)
