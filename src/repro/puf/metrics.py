"""PUF quality metrics: intra-/inter-device Hamming distance studies.

Intra-HD — distance between two responses of the *same* device to the
*same* challenge — measures reliability; ideally zero.  Inter-HD —
distance between responses of *different* devices to the same challenge —
measures uniqueness; ideally 0.5.  The decision margin of an
authentication system is the gap between the maximum intra-HD and the
minimum inter-HD (Figures 11 and 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.stats import hamming_distance, hamming_weight
from ..errors import InsufficientDataError

__all__ = ["HdStudy", "intra_hd_distances", "inter_hd_distances", "response_weights"]


def intra_hd_distances(trials: Sequence[np.ndarray]) -> np.ndarray:
    """Intra-HDs from repeated response collections.

    ``trials[t][c]`` is device/challenge response ``c`` at repetition
    ``t``; distances pair each repetition with the first (enrollment)
    collection, per challenge.
    """
    if len(trials) < 2:
        raise InsufficientDataError("need >= 2 repetitions for intra-HD")
    reference = trials[0]
    distances = []
    for later in trials[1:]:
        if later.shape != reference.shape:
            raise InsufficientDataError("repetition shapes differ")
        for ref_response, response in zip(reference, later):
            distances.append(hamming_distance(ref_response, response))
    return np.asarray(distances)


def inter_hd_distances(responses_by_device: Sequence[np.ndarray]) -> np.ndarray:
    """Inter-HDs across devices answering the same challenge set.

    ``responses_by_device[d][c]`` is device ``d``'s response to challenge
    ``c``; distances compare every device pair on every challenge.
    """
    n_devices = len(responses_by_device)
    if n_devices < 2:
        raise InsufficientDataError("need >= 2 devices for inter-HD")
    distances = []
    for i in range(n_devices):
        for j in range(i + 1, n_devices):
            for response_i, response_j in zip(responses_by_device[i],
                                              responses_by_device[j]):
                distances.append(hamming_distance(response_i, response_j))
    return np.asarray(distances)


def response_weights(responses: Sequence[np.ndarray]) -> float:
    """Mean Hamming weight across a set of responses (Figure 11 labels)."""
    return float(np.mean([hamming_weight(response) for response in responses]))


@dataclass(frozen=True)
class HdStudy:
    """Summary of an intra/inter HD comparison."""

    intra: np.ndarray
    inter: np.ndarray

    @property
    def max_intra(self) -> float:
        return float(np.max(self.intra))

    @property
    def min_inter(self) -> float:
        return float(np.min(self.inter))

    @property
    def margin(self) -> float:
        """Authentication margin; positive means the PUF separates cleanly."""
        return self.min_inter - self.max_intra

    @property
    def separates(self) -> bool:
        return self.margin > 0
