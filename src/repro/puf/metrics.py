"""PUF quality metrics: intra-/inter-device Hamming distance studies.

Intra-HD — distance between two responses of the *same* device to the
*same* challenge — measures reliability; ideally zero.  Inter-HD —
distance between responses of *different* devices to the same challenge —
measures uniqueness; ideally 0.5.  The decision margin of an
authentication system is the gap between the maximum intra-HD and the
minimum inter-HD (Figures 11 and 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.stats import (hamming_distance, hamming_weight,
                              pairwise_hamming_distances)
from ..errors import InsufficientDataError

__all__ = ["HdStudy", "intra_hd_distances", "inter_hd_distances", "response_weights"]


def intra_hd_distances(trials: Sequence[np.ndarray]) -> np.ndarray:
    """Intra-HDs from repeated response collections.

    ``trials[t][c]`` is device/challenge response ``c`` at repetition
    ``t``; distances pair each repetition with the first (enrollment)
    collection, per challenge, in repetition-major challenge-minor order
    — computed as one broadcast XOR against the enrollment plane.
    """
    if len(trials) < 2:
        raise InsufficientDataError("need >= 2 repetitions for intra-HD")
    reference = trials[0]
    for later in trials[1:]:
        if later.shape != reference.shape:
            raise InsufficientDataError("repetition shapes differ")
    stacked = np.asarray([np.asarray(trial, dtype=bool) for trial in trials])
    if stacked.shape[1] == 0:
        return np.asarray([])
    if stacked.ndim != 3:
        raise ValueError(
            f"expected a 1-D bit vector, got shape {stacked.shape[2:]}")
    if stacked.shape[2] == 0:
        raise InsufficientDataError("cannot compute HD of empty vectors")
    return np.mean(stacked[1:] ^ stacked[0], axis=2).reshape(-1)


def inter_hd_distances(responses_by_device: Sequence[np.ndarray]) -> np.ndarray:
    """Inter-HDs across devices answering the same challenge set.

    ``responses_by_device[d][c]`` is device ``d``'s response to challenge
    ``c``; distances compare every device pair on every challenge, in
    pair-major challenge-minor order.  Uniform (challenges x bits) blocks
    go through the broadcast
    :func:`~repro.analysis.stats.pairwise_hamming_distances`; ragged
    inputs fall back to the per-pair scalar loop (which truncates each
    pair to the shorter challenge list, as before).
    """
    n_devices = len(responses_by_device)
    if n_devices < 2:
        raise InsufficientDataError("need >= 2 devices for inter-HD")
    devices = [np.asarray(device, dtype=bool)
               for device in responses_by_device]
    if len({device.shape for device in devices}) == 1 and devices[0].ndim == 2:
        n_challenges, n_bits = devices[0].shape
        if n_challenges == 0:
            return np.asarray([])
        if n_bits == 0:
            raise InsufficientDataError("cannot compute HD of empty vectors")
        return pairwise_hamming_distances(devices)
    return np.asarray([
        hamming_distance(response_i, response_j)
        for i in range(n_devices)
        for j in range(i + 1, n_devices)
        for response_i, response_j in zip(devices[i], devices[j])])


def response_weights(responses: Sequence[np.ndarray]) -> float:
    """Mean Hamming weight across a set of responses (Figure 11 labels)."""
    return float(np.mean([hamming_weight(response) for response in responses]))


@dataclass(frozen=True)
class HdStudy:
    """Summary of an intra/inter HD comparison."""

    intra: np.ndarray
    inter: np.ndarray

    @property
    def max_intra(self) -> float:
        return float(np.max(self.intra))

    @property
    def min_inter(self) -> float:
        return float(np.min(self.inter))

    @property
    def margin(self) -> float:
        """Authentication margin; positive means the PUF separates cleanly."""
        return self.min_inter - self.max_intra

    @property
    def separates(self) -> bool:
        return self.margin > 0
