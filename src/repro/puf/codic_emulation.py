"""Leak-based emulation of CODIC-sig on off-the-shelf DRAM (Section VI-B1).

CODIC (Orosa et al., ISCA'21) proposed a *modified* DRAM with a command
that drives cells to Vdd/2, enabling a fast, robust PUF.  Its authors also
described an off-the-shelf fallback: disable refresh and wait ~48 hours
for the charge to leak toward the sensing threshold, then read.  The
FracDRAM paper's argument is quantitative: the fallback works but is
"too time-consuming to be considered for practical use", whereas ten Frac
operations reach the same offset-dominated regime in 175 ns.

This module implements the fallback so the comparison is executable: both
PUFs run on the same simulated chip, and :func:`speedup_vs_codic` reports
the ~10^11 evaluation-latency gap.

A further qualitative gap the simulation exposes: after 48 hours most
cells are still far from the sensing threshold, so the fallback's response
is dominated by the per-cell *leakage map* (a retention PUF, like prior
DRAM PUFs [35-38] the paper criticizes) rather than by the sense-amp
offsets that make the Frac/CODIC response environment-robust.
"""

from __future__ import annotations

import numpy as np

from ..core.ops import FracDram
from ..errors import ConfigurationError
from .frac_puf import Challenge, evaluation_time_us

__all__ = ["CodicEmulationPuf", "CODIC_LEAK_HOURS", "speedup_vs_codic"]

#: The 48-hour leak interval quoted by the CODIC authors.
CODIC_LEAK_HOURS: float = 48.0


class CodicEmulationPuf:
    """PUF responses via refresh-disabled leakage instead of Frac."""

    def __init__(self, device, *, leak_hours: float = CODIC_LEAK_HOURS) -> None:
        if leak_hours <= 0:
            raise ConfigurationError("leak_hours must be positive")
        self.fd = FracDram(device)
        self.leak_hours = leak_hours

    @property
    def evaluation_time_s(self) -> float:
        """Dominated by the leak interval (readout is negligible)."""
        return self.leak_hours * 3600.0

    def evaluate(self, challenge: Challenge) -> np.ndarray:
        """Store ones, pause refresh for ``leak_hours``, read the row.

        Note the side effect shared with real hardware: *every* row of the
        device leaks during the wait (refresh is globally paused), so any
        other live data is at risk — another practicality gap vs Frac.
        """
        bank, row = challenge.bank, challenge.row
        self.fd.fill_row(bank, row, True)
        self.fd.precharge_all()
        self.fd.advance_time(self.evaluation_time_s)
        return self.fd.read_row(bank, row)

    def evaluate_many(self, challenges: list[Challenge]) -> np.ndarray:
        return np.stack([self.evaluate(challenge) for challenge in challenges])


def speedup_vs_codic(leak_hours: float = CODIC_LEAK_HOURS) -> float:
    """Frac-PUF evaluation-latency advantage over the leak fallback."""
    codic_seconds = leak_hours * 3600.0
    frac_seconds = evaluation_time_us() * 1e-6
    return codic_seconds / frac_seconds
