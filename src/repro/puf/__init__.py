"""Frac-based PUF: challenge/response, metrics, whitening, NIST suite, auth."""

from .auth import AuthDecision, Authenticator
from .batched_puf import BatchedFracPuf
from .codic_emulation import CODIC_LEAK_HOURS, CodicEmulationPuf, speedup_vs_codic
from .extractor import extraction_efficiency, von_neumann_extract
from .frac_puf import PUF_N_FRAC, Challenge, FracPuf, evaluation_time_us
from .key_generation import FuzzyExtractor, HelperData, key_failure_probability
from .metrics import HdStudy, inter_hd_distances, intra_hd_distances, response_weights

__all__ = [
    "AuthDecision",
    "Authenticator",
    "BatchedFracPuf",
    "CODIC_LEAK_HOURS",
    "CodicEmulationPuf",
    "speedup_vs_codic",
    "Challenge",
    "FracPuf",
    "HdStudy",
    "PUF_N_FRAC",
    "evaluation_time_us",
    "FuzzyExtractor",
    "HelperData",
    "key_failure_probability",
    "extraction_efficiency",
    "inter_hd_distances",
    "intra_hd_distances",
    "response_weights",
    "von_neumann_extract",
]
