"""Frac-based Physically Unclonable Function (Section VI-B).

A challenge selects a DRAM row; the response is that row's readout after
the cell voltages have been driven to ~Vdd/2 by ten Frac operations.  The
sense amplifier — a per-column comparator with a manufacturing-unique
offset — then "amplifies" Vdd/2 to a stable, device-unique bit.  Because
the comparator is ratio-metric, the response barely moves with supply
voltage or temperature, matching CODIC's robustness without any DRAM
modification.

Evaluation cost (Section VI-B2): preparation is one in-DRAM row copy from
a reserved all-ones row (18 cycles) plus ten Frac operations (70 cycles) =
88 cycles; readout of the 8 KB segment dominates the 1.5 us total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..controller.sequences import FRAC_OP_CYCLES, ROW_COPY_CYCLES
from ..core.ops import FracDram
from ..dram.parameters import MEMORY_CYCLE_NS
from ..errors import ConfigurationError, UnsupportedOperationError

__all__ = ["Challenge", "FracPuf", "PUF_N_FRAC", "evaluation_time_us"]

#: Frac operations per PUF evaluation — "ten Frac operations are enough to
#: generate a voltage close to Vdd/2 for PUF" (Section VI-B1).
PUF_N_FRAC: int = 10

#: Paper segment size: 8 KB, one full module row.
PAPER_SEGMENT_BITS: int = 8 * 1024 * 8

#: Module data bus width in bits (DDR3 UDIMM rank).
BUS_WIDTH_BITS: int = 64


@dataclass(frozen=True)
class Challenge:
    """A PUF challenge: the address of the memory segment to evaluate."""

    bank: int
    row: int

    def __post_init__(self) -> None:
        if self.bank < 0 or self.row < 0:
            raise ConfigurationError("challenge addresses must be non-negative")


def evaluation_time_us(row_bits: int = PAPER_SEGMENT_BITS,
                       optimized: bool = False) -> float:
    """Evaluation latency model of Section VI-B2.

    The 88-cycle preparation (one row copy + ten Frac) is followed by the
    8 KB readout, which dominates.  SoftMC streams the readout over the
    64-bit bus at double data rate (128 bits per 2.5 ns memory cycle) —
    88 + 512 cycles = 1.5 us, the paper's figure.  An optimized controller
    hides the preparation behind the previous segment's readout and
    interleaves bursts across banks for twice the effective readout
    throughput, giving ~0.7 us.
    """
    preparation_cycles = ROW_COPY_CYCLES + PUF_N_FRAC * FRAC_OP_CYCLES
    ddr_bits_per_cycle = 2 * BUS_WIDTH_BITS
    if optimized:
        total_cycles = row_bits / (2 * ddr_bits_per_cycle)
    else:
        total_cycles = preparation_cycles + row_bits / ddr_bits_per_cycle
    return total_cycles * MEMORY_CYCLE_NS / 1000.0


class FracPuf:
    """Challenge/response PUF over one simulated module (or chip)."""

    def __init__(self, device, *, n_frac: int = PUF_N_FRAC) -> None:
        if n_frac < 1:
            raise ConfigurationError("n_frac must be >= 1")
        self.fd = FracDram(device)
        if not self.fd.can_frac:
            raise UnsupportedOperationError(
                f"group {self.fd.group.group_id} drops out-of-spec commands; "
                "a Frac-based PUF is impossible on it (Table I)")
        self.n_frac = n_frac
        self._prepared_reserved: set[tuple[int, int]] = set()

    @property
    def response_bits(self) -> int:
        return self.fd.columns

    def _reserved_row(self, bank: int, row: int) -> int:
        """The reserved all-ones row in the challenge row's sub-array."""
        rows_per_subarray = int(self.fd.device.geometry.rows_per_subarray)
        subarray = row // rows_per_subarray
        reserved = (subarray + 1) * rows_per_subarray - 1
        if reserved == row:
            raise ConfigurationError(
                f"row {row} is the reserved initialization row; "
                "challenge a different row")
        key = (bank, subarray)
        if key not in self._prepared_reserved:
            self.fd.fill_row(bank, reserved, True)
            self._prepared_reserved.add(key)
        return reserved

    def evaluate(self, challenge: Challenge) -> np.ndarray:
        """Produce the response bits for ``challenge``.

        Initializes the row to all ones with an 18-cycle in-DRAM copy,
        issues ``n_frac`` Frac operations, and destructively reads the
        row.  Each evaluation re-derives the response from the analog
        state, so repeated evaluations measure true intra-device noise.
        """
        bank, row = challenge.bank, challenge.row
        reserved = self._reserved_row(bank, row)
        self.fd.row_copy(bank, reserved, row)
        self.fd.frac(bank, row, self.n_frac)
        return self.fd.read_row(bank, row)

    def evaluate_many(self, challenges: list[Challenge]) -> np.ndarray:
        """Stacked responses (len(challenges), response_bits)."""
        if not challenges:
            return np.empty((0, self.response_bits), dtype=bool)
        return np.stack([self.evaluate(challenge) for challenge in challenges])

    def concatenated_bitstream(self, challenges: list[Challenge]) -> np.ndarray:
        """Responses joined end-to-end, as fed to the NIST suite."""
        return self.evaluate_many(challenges).reshape(-1)
