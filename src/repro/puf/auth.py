"""PUF-based device authentication (the use case motivating Section VI-B).

An :class:`Authenticator` enrolls devices by storing reference responses
to a private challenge set, then authenticates an unknown device by
re-evaluating the challenges and accepting the enrolled identity with the
smallest mean Hamming distance, provided it clears the decision threshold.
The threshold sits between the expected intra-HD (~0) and the minimum
inter-HD (>= 0.27 in the paper), so both false accepts and false rejects
are negligible.

Matching is vectorized: the enrollment database keeps a stacked
``(n_enrolled, n_challenges, bits)`` reference matrix and a probe is
scored against every enrolled identity in one broadcast XOR
(:func:`match_probe`).  Ties keep the first-enrolled identity, exactly
as the historical per-device loop did.  :mod:`repro.service` builds its
serving path on the same matcher, so the scalar and served decisions
are identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, InsufficientDataError
from .frac_puf import Challenge, FracPuf

__all__ = ["AuthDecision", "Authenticator", "match_probe"]

#: Default accept threshold: comfortably above the paper's max intra-HD
#: (0.07 across environments) and below its min inter-HD (0.27).
DEFAULT_THRESHOLD: float = 0.15


@dataclass(frozen=True)
class AuthDecision:
    """Outcome of an authentication attempt."""

    accepted: bool
    device_id: str | None
    mean_distance: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.accepted:
            return f"accepted as {self.device_id!r} (HD={self.mean_distance:.3f})"
        return f"rejected (best HD={self.mean_distance:.3f})"


def match_probe(references: np.ndarray, probe: np.ndarray,
                ) -> tuple[int, float]:
    """Best enrolled index for a probe, plus its mean Hamming distance.

    ``references`` is the stacked ``(n_enrolled, n_challenges, bits)``
    matrix, ``probe`` a ``(n_challenges, bits)`` response set.  The
    per-identity distance is the mean of per-challenge normalized HDs —
    computed with the same reduction order as the historical scalar loop
    (per-challenge mean first, then the mean over challenges), so the
    floats are bit-identical.  Ties resolve to the lowest index, i.e.
    first-enrolled-wins.
    """
    if references.ndim != 3:
        raise ValueError(
            f"expected (n_enrolled, n_challenges, bits) references, got "
            f"shape {references.shape}")
    if references.shape[0] == 0:
        raise InsufficientDataError("no devices enrolled")
    if probe.shape != references.shape[1:]:
        raise ValueError(
            f"length mismatch: {references.shape[1:]} vs {probe.shape}")
    if probe.size == 0:
        raise InsufficientDataError("cannot compute HD of empty vectors")
    per_challenge = np.mean(references ^ probe[np.newaxis], axis=2)
    distances = np.mean(per_challenge, axis=1)
    index = int(np.argmin(distances))
    return index, float(distances[index])


class Authenticator:
    """Enrollment database + matching logic."""

    def __init__(self, challenges: list[Challenge],
                 threshold: float = DEFAULT_THRESHOLD) -> None:
        if not challenges:
            raise ConfigurationError("need at least one challenge")
        if not 0.0 < threshold < 0.5:
            raise ConfigurationError("threshold must be in (0, 0.5)")
        self.challenges = list(challenges)
        self.threshold = threshold
        self._ids: list[str] = []
        self._references: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None

    @property
    def enrolled_ids(self) -> tuple[str, ...]:
        return tuple(self._ids)

    @property
    def references(self) -> np.ndarray:
        """The stacked ``(n_enrolled, n_challenges, bits)`` matrix."""
        if self._matrix is None:
            if not self._references:
                raise InsufficientDataError("no devices enrolled")
            self._matrix = np.stack(self._references).astype(bool)
        return self._matrix

    def enroll(self, device_id: str, puf: FracPuf) -> None:
        """Record the device's reference responses."""
        self.enroll_response(device_id, puf.evaluate_many(self.challenges))

    def enroll_response(self, device_id: str, reference: np.ndarray) -> None:
        """Record pre-evaluated reference responses for ``device_id``."""
        if device_id in self._ids:
            raise ConfigurationError(f"device {device_id!r} already enrolled")
        reference = np.asarray(reference, dtype=bool)
        expected = (len(self.challenges),)
        if reference.ndim != 2 or reference.shape[:1] != expected:
            raise ConfigurationError(
                f"reference must be (n_challenges, bits) = ({expected[0]}, "
                f"*), got shape {reference.shape}")
        self._ids.append(device_id)
        self._references.append(reference)
        self._matrix = None  # stacked matrix rebuilt on next use

    def authenticate(self, puf: FracPuf) -> AuthDecision:
        """Identify the device behind ``puf`` against the enrollment DB."""
        return self.decide(puf.evaluate_many(self.challenges))

    def decide(self, probe: np.ndarray) -> AuthDecision:
        """Match a pre-evaluated ``(n_challenges, bits)`` response set."""
        index, best_distance = match_probe(self.references,
                                           np.asarray(probe, dtype=bool))
        accepted = best_distance <= self.threshold
        return AuthDecision(accepted,
                            self._ids[index] if accepted else None,
                            best_distance)
