"""PUF-based device authentication (the use case motivating Section VI-B).

An :class:`Authenticator` enrolls devices by storing reference responses
to a private challenge set, then authenticates an unknown device by
re-evaluating the challenges and accepting the enrolled identity with the
smallest mean Hamming distance, provided it clears the decision threshold.
The threshold sits between the expected intra-HD (~0) and the minimum
inter-HD (>= 0.27 in the paper), so both false accepts and false rejects
are negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.stats import hamming_distance
from ..errors import ConfigurationError, InsufficientDataError
from .frac_puf import Challenge, FracPuf

__all__ = ["AuthDecision", "Authenticator"]

#: Default accept threshold: comfortably above the paper's max intra-HD
#: (0.07 across environments) and below its min inter-HD (0.27).
DEFAULT_THRESHOLD: float = 0.15


@dataclass(frozen=True)
class AuthDecision:
    """Outcome of an authentication attempt."""

    accepted: bool
    device_id: str | None
    mean_distance: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.accepted:
            return f"accepted as {self.device_id!r} (HD={self.mean_distance:.3f})"
        return f"rejected (best HD={self.mean_distance:.3f})"


class Authenticator:
    """Enrollment database + matching logic."""

    def __init__(self, challenges: list[Challenge],
                 threshold: float = DEFAULT_THRESHOLD) -> None:
        if not challenges:
            raise ConfigurationError("need at least one challenge")
        if not 0.0 < threshold < 0.5:
            raise ConfigurationError("threshold must be in (0, 0.5)")
        self.challenges = list(challenges)
        self.threshold = threshold
        self._enrolled: dict[str, np.ndarray] = {}

    @property
    def enrolled_ids(self) -> tuple[str, ...]:
        return tuple(self._enrolled)

    def enroll(self, device_id: str, puf: FracPuf) -> None:
        """Record the device's reference responses."""
        if device_id in self._enrolled:
            raise ConfigurationError(f"device {device_id!r} already enrolled")
        self._enrolled[device_id] = puf.evaluate_many(self.challenges)

    def authenticate(self, puf: FracPuf) -> AuthDecision:
        """Identify the device behind ``puf`` against the enrollment DB."""
        if not self._enrolled:
            raise InsufficientDataError("no devices enrolled")
        probe = puf.evaluate_many(self.challenges)
        best_id: str | None = None
        best_distance = float("inf")
        for device_id, reference in self._enrolled.items():
            distance = float(np.mean([
                hamming_distance(ref, got) for ref, got in zip(reference, probe)]))
            if distance < best_distance:
                best_id, best_distance = device_id, distance
        accepted = best_distance <= self.threshold
        return AuthDecision(accepted, best_id if accepted else None, best_distance)
