"""FracDRAM reproduction: fractional values in (simulated) off-the-shelf DRAM.

A full, simulation-based reproduction of *FracDRAM: Fractional Values in
Off-the-Shelf DRAM* (Gao, Tziantzioulis, Wentzlaff — MICRO 2022).  See
DESIGN.md for the system inventory and EXPERIMENTS.md for paper-vs-measured
results.

Quickstart::

    from repro import DramChip, FracDram

    chip = DramChip("B")              # SK Hynix group B (Table I)
    fd = FracDram(chip)
    fd.fill_row(bank=0, row=1, value=True)
    fd.frac(bank=0, row=1, n_frac=10)  # ~Vdd/2 in the whole row
    response = fd.read_row(bank=0, row=1)   # destructive PUF-style readout
"""

from .controller import SoftMC
from .core import (
    FMajConfig,
    FracDram,
    MajVerifyResult,
    MultiRowPlan,
    RefreshManager,
    TernaryStore,
    verify_frac_by_maj3,
)
from .dram import (
    DramChip,
    DramModule,
    Environment,
    GeometryParams,
    GroupProfile,
    GROUPS,
    get_group,
    group_ids,
)
from .errors import (
    AddressError,
    CommandSequenceError,
    ConfigurationError,
    InsufficientDataError,
    RefreshViolationError,
    ReproError,
    TimingViolationError,
    UnsupportedOperationError,
)

__version__ = "1.0.0"

__all__ = [
    "AddressError",
    "CommandSequenceError",
    "ConfigurationError",
    "DramChip",
    "DramModule",
    "Environment",
    "FMajConfig",
    "FracDram",
    "GROUPS",
    "GeometryParams",
    "GroupProfile",
    "InsufficientDataError",
    "MajVerifyResult",
    "MultiRowPlan",
    "RefreshManager",
    "RefreshViolationError",
    "ReproError",
    "SoftMC",
    "TernaryStore",
    "TimingViolationError",
    "UnsupportedOperationError",
    "__version__",
    "get_group",
    "group_ids",
    "verify_frac_by_maj3",
]
