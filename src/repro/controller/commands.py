"""DRAM command model for the software memory controller.

Commands are small frozen dataclasses; a :class:`CommandSequence` is an
ordered list of :class:`TimedCommand` with cycle offsets relative to the
sequence start plus an explicit total ``duration`` (the idle tail needed
for the last command to complete is part of the sequence, exactly like the
paper's "7 memory cycles for a Frac: two command cycles plus five idle
cycles").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterator, Sequence

import numpy as np

from ..errors import CommandSequenceError

__all__ = [
    "Command",
    "Activate",
    "Precharge",
    "PrechargeAll",
    "ReadRow",
    "WriteRow",
    "TimedCommand",
    "CommandSequence",
]


@dataclass(frozen=True)
class Command:
    """Base class for DRAM bus commands."""

    #: Short bus mnemonic family ("ACT", "PRE", ...) — stable identifiers
    #: used by telemetry counters and the ``repro-trace/1`` event schema.
    KIND: ClassVar[str] = "CMD"

    def mnemonic(self) -> str:
        return type(self).__name__.upper()


@dataclass(frozen=True)
class Activate(Command):
    """Open ``row`` in ``bank`` (raise its word-line)."""

    bank: int
    row: int

    KIND = "ACT"

    def mnemonic(self) -> str:
        return f"ACT(b{self.bank},r{self.row})"


@dataclass(frozen=True)
class Precharge(Command):
    """Close all rows in ``bank`` and precharge its bit-lines."""

    bank: int

    KIND = "PRE"

    def mnemonic(self) -> str:
        return f"PRE(b{self.bank})"


@dataclass(frozen=True)
class PrechargeAll(Command):
    """Precharge every bank."""

    KIND = "PREA"

    def mnemonic(self) -> str:
        return "PREA"


@dataclass(frozen=True)
class ReadRow(Command):
    """Sample the sensed row buffer of ``row`` (whole-row burst read).

    The real controller would issue column READs; the model samples the
    full row buffer at once, which is equivalent for our experiments and
    keeps the data path simple.
    """

    bank: int
    row: int

    KIND = "RD"

    def mnemonic(self) -> str:
        return f"RD(b{self.bank},r{self.row})"


@dataclass(frozen=True)
class WriteRow(Command):
    """Drive ``data`` (a logical bit vector) into the open row."""

    bank: int
    row: int
    data: tuple[bool, ...]

    KIND = "WR"

    def mnemonic(self) -> str:
        return f"WR(b{self.bank},r{self.row})"

    @staticmethod
    def from_bits(bank: int, row: int, bits: Sequence[bool]) -> "WriteRow":
        return WriteRow(bank, row, tuple(bool(b) for b in np.asarray(bits).ravel()))


@dataclass(frozen=True)
class TimedCommand:
    """A command scheduled at a cycle offset from sequence start."""

    cycle: int
    command: Command

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise CommandSequenceError("command cycle offsets must be >= 0")


@dataclass(frozen=True)
class CommandSequence:
    """An immutable, time-ordered command stream.

    ``duration`` includes the trailing idle cycles needed for the final
    command to complete; concatenating sequences back-to-back is therefore
    always electrically safe *for in-spec sequences* (FracDRAM sequences
    are deliberately not in-spec, but their builders still account for the
    completion tail).
    """

    commands: tuple[TimedCommand, ...]
    duration: int
    label: str = ""
    #: Machine-readable operation tag set by the sequence builders
    #: ("frac", "half-m", "row-copy", ...); "" for ad-hoc or mixed
    #: sequences.  Telemetry keys per-operation counters off this.
    op: str = ""

    def __post_init__(self) -> None:
        previous = -1
        for timed in self.commands:
            if timed.cycle <= previous:
                raise CommandSequenceError(
                    f"commands must be strictly increasing in time: "
                    f"{timed.command.mnemonic()} at cycle {timed.cycle} "
                    f"follows cycle {previous}")
            previous = timed.cycle
        if self.commands and self.duration <= self.commands[-1].cycle:
            raise CommandSequenceError(
                "sequence duration must extend past the last command")
        if self.duration < 0:
            raise CommandSequenceError("duration must be non-negative")

    def __iter__(self) -> Iterator[TimedCommand]:
        return iter(self.commands)

    def __len__(self) -> int:
        return len(self.commands)

    def shifted(self, offset: int) -> "CommandSequence":
        """Copy with all cycle offsets moved by ``offset`` (>= 0 result)."""
        return CommandSequence(
            tuple(TimedCommand(tc.cycle + offset, tc.command) for tc in self.commands),
            self.duration + offset,
            self.label,
            self.op,
        )

    def then(self, other: "CommandSequence") -> "CommandSequence":
        """Concatenate ``other`` after this sequence completes."""
        shifted = other.shifted(self.duration)
        return CommandSequence(
            self.commands + shifted.commands,
            shifted.duration,
            label=f"{self.label}+{other.label}".strip("+"),
            op=self.op if self.op == other.op else "",
        )

    def command_counts(self) -> dict[str, int]:
        """Commands per bus-mnemonic family ({"ACT": 2, "PRE": 2, ...})."""
        counts: dict[str, int] = {}
        for timed in self.commands:
            kind = timed.command.KIND
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def describe(self) -> str:
        """Human-readable one-line-per-command trace."""
        lines = [f"# {self.label or 'sequence'} ({self.duration} cycles)"]
        lines.extend(
            f"  @{timed.cycle:>4d}  {timed.command.mnemonic()}"
            for timed in self.commands)
        return "\n".join(lines)


def sequence(commands: Sequence[TimedCommand], duration: int,
             label: str = "") -> CommandSequence:
    """Convenience constructor accepting any command iterable."""
    return CommandSequence(tuple(commands), duration, label)
