"""Builders for every command sequence the paper uses.

Each builder returns a :class:`CommandSequence` with offsets in 2.5 ns
memory cycles, including the completion tail, so the controller's cycle
counter directly yields the latency figures the paper reports:

* ``frac_sequence`` — 7 cycles per Frac (ACT, PRE back-to-back + 5 idle),
  Section III-A.
* ``row_copy_sequence`` — 18 cycles (ComputeDRAM-style copy through the
  driven bit-lines), Section VI-A.1.
* ``multi_row_sequence`` — ACT(R1)-PRE-ACT(R2) with zero idle cycles, then
  enough idle time for the sense amplifiers to fire (the MAJ3 / F-MAJ
  charge-sharing compute), Section II-D.
* ``half_m_sequence`` — the same four-row activation interrupted by a
  trailing PRECHARGE before the sense amps fire, Section III-B.
"""

from __future__ import annotations

from typing import Sequence as SequenceType


from ..dram.parameters import ElectricalParams, TimingParams
from .commands import (
    Activate,
    CommandSequence,
    Precharge,
    PrechargeAll,
    ReadRow,
    TimedCommand,
    WriteRow,
)

__all__ = [
    "precharge_all_sequence",
    "write_row_sequence",
    "read_row_sequence",
    "refresh_row_sequence",
    "frac_sequence",
    "multi_row_sequence",
    "half_m_sequence",
    "row_copy_sequence",
    "FRAC_OP_CYCLES",
    "ROW_COPY_CYCLES",
]

#: Latency of one Frac operation: 2 command cycles + 5 idle (Section III-A).
FRAC_OP_CYCLES: int = 7

#: Latency of one in-DRAM row copy (Section VI-A.1).
ROW_COPY_CYCLES: int = 18


def precharge_all_sequence(timing: TimingParams | None = None) -> CommandSequence:
    """Close every bank; used to reach a known idle state."""
    timing = timing or TimingParams()
    return CommandSequence(
        (TimedCommand(0, PrechargeAll()),), timing.t_rp,
        label="precharge-all", op="precharge-all")


def write_row_sequence(bank: int, row: int, bits: SequenceType[bool],
                       timing: TimingParams | None = None) -> CommandSequence:
    """In-spec ACTIVATE, whole-row WRITE, PRECHARGE."""
    timing = timing or TimingParams()
    return CommandSequence(
        (
            TimedCommand(0, Activate(bank, row)),
            TimedCommand(timing.t_rcd, WriteRow.from_bits(bank, row, bits)),
            TimedCommand(timing.t_ras, Precharge(bank)),
        ),
        timing.row_cycle,
        label=f"write-row b{bank} r{row}",
        op="write-row",
    )


def read_row_sequence(bank: int, row: int,
                      timing: TimingParams | None = None) -> CommandSequence:
    """In-spec ACTIVATE, whole-row READ, PRECHARGE (destructive for
    fractional values: the sense amplifiers rail the cells)."""
    timing = timing or TimingParams()
    return CommandSequence(
        (
            TimedCommand(0, Activate(bank, row)),
            TimedCommand(timing.t_rcd, ReadRow(bank, row)),
            TimedCommand(timing.t_ras, Precharge(bank)),
        ),
        timing.row_cycle,
        label=f"read-row b{bank} r{row}",
        op="read-row",
    )


def refresh_row_sequence(bank: int, row: int,
                         timing: TimingParams | None = None) -> CommandSequence:
    """Per-row refresh: activate (restore) and close."""
    timing = timing or TimingParams()
    return CommandSequence(
        (
            TimedCommand(0, Activate(bank, row)),
            TimedCommand(timing.t_ras, Precharge(bank)),
        ),
        timing.row_cycle,
        label=f"refresh b{bank} r{row}",
        op="refresh",
    )


def frac_sequence(bank: int, row: int, n_frac: int = 1,
                  timing: TimingParams | None = None) -> CommandSequence:
    """``n_frac`` back-to-back Frac operations on ``row``.

    Each Frac is ACT at cycle t, PRE at t+1 — the PRECHARGE interrupts the
    activation before the sense amps fire, leaving the cell at the shared
    fractional voltage — followed by the 5 idle cycles the PRECHARGE needs
    to complete before the next ACT may start (7 cycles total).
    """
    if n_frac < 1:
        raise ValueError("n_frac must be >= 1")
    timing = timing or TimingParams()
    commands = []
    for index in range(n_frac):
        start = index * FRAC_OP_CYCLES
        commands.append(TimedCommand(start, Activate(bank, row)))
        commands.append(TimedCommand(start + 1, Precharge(bank)))
    return CommandSequence(
        tuple(commands), n_frac * FRAC_OP_CYCLES,
        label=f"frac x{n_frac} b{bank} r{row}", op="frac")


def multi_row_sequence(bank: int, r1: int, r2: int,
                       timing: TimingParams | None = None,
                       electrical: ElectricalParams | None = None,
                       ) -> CommandSequence:
    """ACT(R1)-PRE-ACT(R2) with zero idle cycles, then let the SAs fire.

    This is the ComputeDRAM multi-row-activation: the PRE at cycle 1 is
    aborted by the ACT at cycle 2, the decoder glitch opens the extra
    row(s), charge sharing decides the bit-line, and after the sense-enable
    delay the amplified majority value is restored into *all* open rows.
    The final PRECHARGE closes everything.
    """
    timing = timing or TimingParams()
    electrical = electrical or ElectricalParams()
    settle_at = 2 + electrical.sense_enable_cycles + 2
    return CommandSequence(
        (
            TimedCommand(0, Activate(bank, r1)),
            TimedCommand(1, Precharge(bank)),
            TimedCommand(2, Activate(bank, r2)),
            TimedCommand(settle_at, Precharge(bank)),
        ),
        settle_at + timing.t_rp,
        label=f"multi-row-act b{bank} ({r1},{r2})",
        op="multi-row-act",
    )


def half_m_sequence(bank: int, r1: int, r2: int,
                    timing: TimingParams | None = None) -> CommandSequence:
    """Four-row activation interrupted before the sense amps fire.

    The trailing PRE at cycle 4 lands inside the sense-enable window of the
    ACT at cycle 2, so the shared (fractional) voltages are frozen into the
    cells of all four opened rows (Figure 4).
    """
    timing = timing or TimingParams()
    return CommandSequence(
        (
            TimedCommand(0, Activate(bank, r1)),
            TimedCommand(1, Precharge(bank)),
            TimedCommand(2, Activate(bank, r2)),
            TimedCommand(4, Precharge(bank)),
        ),
        4 + timing.t_rp,
        label=f"half-m b{bank} ({r1},{r2})",
        op="half-m",
    )


def row_copy_sequence(bank: int, src: int, dst: int,
                      timing: TimingParams | None = None,
                      electrical: ElectricalParams | None = None,
                      ) -> CommandSequence:
    """ComputeDRAM-style in-DRAM row copy (18 cycles).

    ACT(src) runs long enough for the sense amps to fire; the PRE-ACT(dst)
    pair then aborts the close while the bit-lines are still driven, so the
    destination row is overwritten with the sensed source data.
    """
    timing = timing or TimingParams()
    electrical = electrical or ElectricalParams()
    pre_at = electrical.sense_enable_cycles + 1
    act_dst_at = pre_at + 1
    final_pre_at = act_dst_at + electrical.sense_enable_cycles + 2
    return CommandSequence(
        (
            TimedCommand(0, Activate(bank, src)),
            TimedCommand(pre_at, Precharge(bank)),
            TimedCommand(act_dst_at, Activate(bank, dst)),
            TimedCommand(final_pre_at, Precharge(bank)),
        ),
        final_pre_at + timing.t_rp + 1,
        label=f"row-copy b{bank} {src}->{dst}",
        op="row-copy",
    )
