"""Batched SoftMC: one compiled sequence replayed across trial lanes.

:class:`BatchedSoftMC` drives a :class:`~repro.dram.batched.BatchedChip`.
Each :meth:`run` call issues one *template* :class:`CommandSequence` to a
set of lanes at once: the sequence shape (cycle offsets, command kinds,
banks) is lane-uniform, while row addresses and write data may vary per
lane via ``lane_rows`` / ``lane_data`` overrides.  That split is exactly
what makes the compiled-plan cache (:mod:`repro.controller.plan`) sound
here — JEDEC violations never depend on rows or data, so one plan
annotates every lane and counter increments are simply multiplied by the
lane count.

The convenience wrappers mirror :class:`~repro.controller.softmc.SoftMC`
one-for-one but take per-lane row vectors.  ``write_row`` builds its
template with an *empty* :class:`WriteRow` payload and ships the real
bits through ``lane_data`` as a NumPy array, skipping the per-trial
``tuple(bool(b) ...)`` conversion that dominates the scalar write path.

Strict (JEDEC-raising) mode is deliberately not offered: validation
campaigns run scalar.  Per-lane cycle counters live in ``self.cycles``
(lane ``i`` of a batch is cycle-identical to scalar trial ``i``).
"""

from __future__ import annotations

from typing import Sequence as SequenceType

import numpy as np

from ..dram.batched import BatchedChip
from ..dram.parameters import MEMORY_CYCLE_NS, ElectricalParams, TimingParams
from ..telemetry.registry import active as _telemetry_active
from .commands import (
    Activate,
    CommandSequence,
    Precharge,
    PrechargeAll,
    ReadRow,
    TimedCommand,
    WriteRow,
)
from .plan import plan_for
from . import sequences as seq

__all__ = ["BatchedSoftMC"]


class BatchedSoftMC:
    """Software memory controller replaying sequences across lanes."""

    def __init__(self, device: BatchedChip, *,
                 timing: TimingParams | None = None,
                 electrical: ElectricalParams | None = None) -> None:
        self.device = device
        self.timing = timing or TimingParams()
        self.electrical = electrical or device.groups[0].electrical
        #: Per-lane cycle counters (lane i mirrors scalar trial i).
        self.cycles = np.zeros(device.n_lanes, dtype=np.int64)

    @property
    def n_lanes(self) -> int:
        return self.device.n_lanes

    def all_lanes(self) -> list[int]:
        return list(range(self.device.n_lanes))

    def elapsed_ns(self, lane: int) -> float:
        """Wall-clock bus time consumed so far by ``lane``."""
        return int(self.cycles[lane]) * MEMORY_CYCLE_NS

    # ------------------------------------------------------------------
    # core engine
    # ------------------------------------------------------------------

    def run(self, sequence: CommandSequence, lanes: SequenceType[int], *,
            lane_rows: dict[int, SequenceType[int]] | None = None,
            lane_data: dict[int, np.ndarray] | None = None,
            ) -> list[np.ndarray]:
        """Issue ``sequence`` on every lane in ``lanes`` at once.

        ``lane_rows[i]`` overrides the row of command ``i`` per lane (in
        ``lanes`` order); ``lane_data[i]`` the write payload (``(L, C)``
        bool, or ``(C,)`` broadcast).  Returns one ``(L, C)`` array per
        READ, in issue order.
        """
        lane_rows = lane_rows or {}
        lane_data = lane_data or {}
        telemetry = _telemetry_active()
        plan = None
        if telemetry is not None:
            plan = plan_for(self.timing, sequence)
            self._record_sequence(telemetry, sequence, lanes)
        reads: list[np.ndarray] = []
        base = self.cycles.copy()
        for index, timed in enumerate(sequence):
            command = timed.command
            cycles = base + timed.cycle
            rows = lane_rows.get(index)
            if rows is None and hasattr(command, "row"):
                rows = [command.row] * len(lanes)
            if telemetry is not None:
                self._record_command(
                    telemetry, command, cycles, lanes, rows,
                    plan.violations[index], plan.violation_events[index])
            if isinstance(command, Activate):
                self.device.activate(command.bank, rows, lanes, cycles)
            elif isinstance(command, Precharge):
                self.device.precharge(command.bank, lanes, cycles)
            elif isinstance(command, PrechargeAll):
                self.device.precharge_all(lanes, cycles)
            elif isinstance(command, ReadRow):
                self.device.settle(lanes, cycles)
                reads.append(self.device.row_buffer_logical(
                    command.bank, rows, lanes))
            elif isinstance(command, WriteRow):
                self.device.settle(lanes, cycles)
                data = lane_data.get(index)
                if data is None:
                    data = np.asarray(command.data, dtype=bool)
                self.device.write_open(command.bank, rows, lanes, data)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown command {command!r}")
        lane_arr = np.asarray(lanes, dtype=np.intp)
        self.cycles[lane_arr] = base[lane_arr] + sequence.duration
        self.device.finish(lanes, self.cycles)
        return reads

    def idle(self, cycles: int, lanes: SequenceType[int]) -> None:
        """Advance the bus clock without issuing commands."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.cycles[np.asarray(lanes, dtype=np.intp)] += cycles
        self.device.finish(lanes, self.cycles)

    def _record_sequence(self, telemetry, sequence: CommandSequence,
                         lanes: SequenceType[int]) -> None:
        n_lanes = len(lanes)
        telemetry.count("controller.sequences", n_lanes)
        if sequence.op:
            telemetry.count(f"controller.seq.{sequence.op}", n_lanes)
            if sequence.op == "frac":
                # One Frac operation per ACT/PRE pair, per lane.
                telemetry.count("controller.frac_ops",
                                (len(sequence) // 2) * n_lanes)
        for lane in lanes:
            telemetry.emit("sequence", {
                "label": sequence.label,
                "op": sequence.op,
                "start_cycle": int(self.cycles[lane]),
                "duration": sequence.duration,
                "n_commands": len(sequence),
            })

    def _record_command(self, telemetry, command, cycles: np.ndarray,
                        lanes: SequenceType[int],
                        rows: SequenceType[int] | None,
                        violations, violation_events) -> None:
        n_lanes = len(lanes)
        telemetry.count("controller.commands", n_lanes)
        telemetry.count(f"controller.{command.KIND.lower()}", n_lanes)
        if violations:
            telemetry.count("controller.jedec_violations",
                            len(violations) * n_lanes)
            for violation in violations:
                telemetry.count(
                    f"controller.jedec.{violation.constraint.lower()}",
                    n_lanes)
        # One pre-rendered violation list per compiled plan, shared by
        # every lane's event — never mutated downstream.
        events = list(violation_events)
        for index, lane in enumerate(lanes):
            telemetry.emit("command", {
                "cmd": command.KIND,
                "bank": getattr(command, "bank", None),
                "row": int(rows[index]) if rows is not None else None,
                "cycle": int(cycles[lane]),
                "violations": events,
            })

    # ------------------------------------------------------------------
    # convenience wrappers (one per paper sequence, rows per lane)
    # ------------------------------------------------------------------

    def precharge_all(self, lanes: SequenceType[int]) -> None:
        self.run(seq.precharge_all_sequence(self.timing), lanes)

    def write_row(self, bank: int, rows: SequenceType[int],
                  bits: np.ndarray, lanes: SequenceType[int]) -> None:
        """In-spec ACT/WRITE/PRE; ``bits`` is ``(L, C)`` or broadcast ``(C,)``."""
        timing = self.timing
        row0 = int(rows[0])
        template = CommandSequence(
            (
                TimedCommand(0, Activate(bank, row0)),
                TimedCommand(timing.t_rcd, WriteRow(bank, row0, ())),
                TimedCommand(timing.t_ras, Precharge(bank)),
            ),
            timing.row_cycle,
            label=f"write-row b{bank} r{row0}",
            op="write-row",
        )
        self.run(template, lanes, lane_rows={0: rows, 1: rows},
                 lane_data={1: bits})

    def fill_row(self, bank: int, rows: SequenceType[int], value: bool,
                 lanes: SequenceType[int]) -> None:
        """Store all-ones or all-zeros into each lane's row."""
        bits = np.full(int(self.device.columns), bool(value))
        self.write_row(bank, rows, bits, lanes)

    def read_row(self, bank: int, rows: SequenceType[int],
                 lanes: SequenceType[int]) -> np.ndarray:
        (data,) = self.run(
            seq.read_row_sequence(bank, int(rows[0]), self.timing),
            lanes, lane_rows={0: rows, 1: rows})
        return data

    def refresh_row(self, bank: int, rows: SequenceType[int],
                    lanes: SequenceType[int]) -> None:
        self.run(seq.refresh_row_sequence(bank, int(rows[0]), self.timing),
                 lanes, lane_rows={0: rows})

    def frac(self, bank: int, rows: SequenceType[int],
             n_frac: int, lanes: SequenceType[int]) -> None:
        """Issue ``n_frac`` Frac operations on each lane's row."""
        template = seq.frac_sequence(bank, int(rows[0]), n_frac, self.timing)
        lane_rows = {2 * index: rows for index in range(n_frac)}
        self.run(template, lanes, lane_rows=lane_rows)

    def multi_row_activate(self, bank: int, r1s: SequenceType[int],
                           r2s: SequenceType[int],
                           lanes: SequenceType[int]) -> None:
        template = seq.multi_row_sequence(
            bank, int(r1s[0]), int(r2s[0]), self.timing, self.electrical)
        self.run(template, lanes, lane_rows={0: r1s, 2: r2s})

    def half_m(self, bank: int, r1s: SequenceType[int],
               r2s: SequenceType[int], lanes: SequenceType[int]) -> None:
        template = seq.half_m_sequence(
            bank, int(r1s[0]), int(r2s[0]), self.timing)
        self.run(template, lanes, lane_rows={0: r1s, 2: r2s})

    def row_copy(self, bank: int, srcs: SequenceType[int],
                 dsts: SequenceType[int], lanes: SequenceType[int]) -> None:
        template = seq.row_copy_sequence(
            bank, int(srcs[0]), int(dsts[0]), self.timing, self.electrical)
        self.run(template, lanes, lane_rows={0: srcs, 2: dsts})
