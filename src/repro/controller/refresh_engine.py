"""The JEDEC REFRESH command and auto-refresh scheduling.

Real controllers do not refresh rows one by one through ACT/PRE; they
issue all-bank ``REF`` commands every tREFI (7.8 us) and the DRAM's
internal counter walks the rows — 8192 REF commands cover the array every
64 ms.  Section III-C's hazard is precisely this machinery: a REF landing
while a fractional value is live destroys it, and the application cannot
see the internal counter.

:class:`AutoRefreshEngine` reproduces the mechanism:

* a per-device refresh counter advanced by :meth:`refresh`, mirroring the
  DRAM-internal row counter (all banks refresh the same row index),
* :meth:`elapse` — advance simulated time while issuing the REF commands
  a controller would have issued, honouring an optional *pause window*
  (the paper's mitigation: hold refresh while fractional state is live),
* bookkeeping of which rows a fractional-value application must fear.

This sits *below* :class:`repro.core.refresh.RefreshManager` (the policy
layer); the engine is the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.parameters import TimingParams
from ..errors import ConfigurationError
from .softmc import SoftMC

__all__ = ["AutoRefreshEngine", "RefreshTrace"]


@dataclass(frozen=True)
class RefreshTrace:
    """What one ``elapse`` call did."""

    elapsed_s: float
    ref_commands: int
    rows_refreshed: tuple[tuple[int, int], ...]  # (bank, row) pairs
    skipped_while_paused: int


class AutoRefreshEngine:
    """All-bank auto refresh with an internal row counter."""

    def __init__(self, mc: SoftMC, *, timing: TimingParams | None = None) -> None:
        self.mc = mc
        self.timing = timing or mc.timing
        self.row_counter = 0
        self.paused = False
        self.total_ref_commands = 0

    # ------------------------------------------------------------------

    @property
    def rows_per_bank(self) -> int:
        return int(self.mc.device.rows_per_bank)  # type: ignore[attr-defined]

    @property
    def refresh_interval_s(self) -> float:
        """tREFI scaled to the simulated array.

        Real DDR3 spreads 8192 REFs over 64 ms; the simulated array has
        fewer rows, so the same 64 ms retention guarantee needs one REF
        per row per 64 ms window.
        """
        return (self.timing.retention_window_ms / 1000.0) / self.rows_per_bank

    # ------------------------------------------------------------------

    def pause(self) -> None:
        """Hold refresh (the Section III-C mitigation)."""
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def refresh(self) -> tuple[tuple[int, int], ...]:
        """Issue one all-bank REF: the counter row refreshes in every bank."""
        device = self.mc.device
        row = self.row_counter
        refreshed = []
        for bank in range(int(device.n_banks)):
            self.mc.refresh_row(bank, row)
            refreshed.append((bank, row))
        self.row_counter = (self.row_counter + 1) % self.rows_per_bank
        self.total_ref_commands += 1
        return tuple(refreshed)

    def elapse(self, seconds: float) -> RefreshTrace:
        """Advance time, issuing the REFs a controller would schedule.

        While paused, time still passes but no REF is issued — rows leak,
        exactly the exposure the paper's applications accept for their
        sub-64 ms lifetimes.
        """
        if seconds < 0:
            raise ConfigurationError("seconds must be non-negative")
        interval = self.refresh_interval_s
        n_refs = int(seconds / interval)
        refreshed: list[tuple[int, int]] = []
        skipped = 0
        remaining = seconds
        device = self.mc.device
        for _ in range(n_refs):
            device.advance_time(interval)  # type: ignore[attr-defined]
            remaining -= interval
            if self.paused:
                skipped += 1
            else:
                refreshed.extend(self.refresh())
        if remaining > 0:
            device.advance_time(remaining)  # type: ignore[attr-defined]
        return RefreshTrace(
            elapsed_s=seconds,
            ref_commands=n_refs - skipped,
            rows_refreshed=tuple(refreshed),
            skipped_while_paused=skipped,
        )

    # ------------------------------------------------------------------

    def window_until_row(self, bank_row: int) -> float:
        """Seconds until the counter reaches ``bank_row`` — the safe window
        an application has before auto refresh touches that row."""
        distance = (bank_row - self.row_counter) % self.rows_per_bank
        return distance * self.refresh_interval_s
