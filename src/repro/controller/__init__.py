"""Software memory controller: commands, sequence builders, SoftMC engine."""

from .commands import (
    Activate,
    Command,
    CommandSequence,
    Precharge,
    PrechargeAll,
    ReadRow,
    TimedCommand,
    WriteRow,
)
from .sequences import (
    FRAC_OP_CYCLES,
    ROW_COPY_CYCLES,
    frac_sequence,
    half_m_sequence,
    multi_row_sequence,
    precharge_all_sequence,
    read_row_sequence,
    refresh_row_sequence,
    row_copy_sequence,
    write_row_sequence,
)
from .program import (
    Assembler,
    LeakStep,
    Program,
    ProgramError,
    assemble,
    assemble_program,
    disassemble,
)
from .refresh_engine import AutoRefreshEngine, RefreshTrace
from .scheduler import BankScheduler, InterleaveResult, interleave
from .trace import LeakEntry, TraceEntry, TraceRecorder, trace_to_program
from .softmc import DeviceLike, JedecChecker, SoftMC

__all__ = [
    "Activate",
    "Assembler",
    "AutoRefreshEngine",
    "BankScheduler",
    "InterleaveResult",
    "LeakEntry",
    "LeakStep",
    "Program",
    "RefreshTrace",
    "TraceEntry",
    "TraceRecorder",
    "interleave",
    "trace_to_program",
    "ProgramError",
    "assemble",
    "assemble_program",
    "disassemble",
    "Command",
    "CommandSequence",
    "DeviceLike",
    "FRAC_OP_CYCLES",
    "JedecChecker",
    "Precharge",
    "PrechargeAll",
    "ROW_COPY_CYCLES",
    "ReadRow",
    "SoftMC",
    "TimedCommand",
    "WriteRow",
    "frac_sequence",
    "half_m_sequence",
    "multi_row_sequence",
    "precharge_all_sequence",
    "read_row_sequence",
    "refresh_row_sequence",
    "row_copy_sequence",
    "write_row_sequence",
]
