"""Command-trace recording and replay.

Debugging out-of-spec DRAM behaviour lives and dies by knowing *exactly*
what went on the bus.  :class:`TraceRecorder` wraps a :class:`SoftMC` and
logs every issued command with its absolute cycle, the sequence label it
came from, and summaries of data payloads.  It also hooks the device's
``advance_time`` (retention pauses become :class:`LeakEntry` events) and
keeps every READ result, so a recorded run carries everything needed to
check a replay byte-for-byte.  Traces render as text (and round-trip
through the SoftMC program assembler via :func:`trace_to_program` /
:meth:`TraceRecorder.program_text`), so a failing experiment can be
reduced to a replayable command stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from ..dram.parameters import MEMORY_CYCLE_NS
from .commands import Command, CommandSequence
from .softmc import SoftMC

__all__ = ["LeakEntry", "TraceEntry", "TraceRecorder", "trace_to_program"]


@dataclass(frozen=True)
class TraceEntry:
    """One command as it went on the bus."""

    absolute_cycle: int
    command: Command
    sequence_label: str

    @property
    def time_ns(self) -> float:
        return self.absolute_cycle * MEMORY_CYCLE_NS

    def render(self) -> str:
        return (f"@{self.absolute_cycle:>8d} ({self.time_ns:>10.1f} ns)  "
                f"{self.command.mnemonic():<18s}  # {self.sequence_label}")


@dataclass(frozen=True)
class LeakEntry:
    """A bus pause (``advance_time``) between command sequences."""

    absolute_cycle: int
    seconds: float

    def render(self) -> str:
        return (f"@{self.absolute_cycle:>8d} "
                f"{'(bus paused)':>15s}  LEAK {self.seconds!r}")


#: Anything the recorder logs, in bus order.
TraceEvent = Union[TraceEntry, LeakEntry]


class TraceRecorder:
    """Records every command a SoftMC issues (and every retention pause).

    Usage::

        mc = SoftMC(chip)
        recorder = TraceRecorder(mc)   # wraps mc.run in place
        ... run experiment ...
        print(recorder.render())
        program = recorder.program_text()   # replayable assembly text
        recorder.stop()                # restore the unwrapped engine
    """

    def __init__(self, mc: SoftMC) -> None:
        self.mc = mc
        self.entries: list[TraceEntry] = []
        self.leaks: list[LeakEntry] = []
        #: Every READ result the wrapped controller returned, in order.
        self.reads: list[np.ndarray] = []
        self.events: list[TraceEvent] = []
        self._original_run = mc.run
        mc.run = self._recording_run  # type: ignore[method-assign]
        self._device = getattr(mc, "device", None)
        self._original_advance = getattr(self._device, "advance_time", None)
        if self._original_advance is not None:
            self._device.advance_time = self._recording_advance
        self._active = True

    # ------------------------------------------------------------------

    def _recording_run(self, sequence: CommandSequence):
        base = self.mc.cycle
        for timed in sequence:
            entry = TraceEntry(
                absolute_cycle=base + timed.cycle,
                command=timed.command,
                sequence_label=sequence.label or "sequence",
            )
            self.entries.append(entry)
            self.events.append(entry)
        result = self._original_run(sequence)
        self.reads.extend(result)
        return result

    def _recording_advance(self, dt_s: float) -> None:
        entry = LeakEntry(absolute_cycle=self.mc.cycle, seconds=float(dt_s))
        self.leaks.append(entry)
        self.events.append(entry)
        self._original_advance(dt_s)

    def stop(self) -> None:
        """Unhook from the controller and device (idempotent)."""
        if self._active:
            self.mc.run = self._original_run  # type: ignore[method-assign]
            if self._original_advance is not None:
                self._device.advance_time = self._original_advance
            self._active = False

    def clear(self) -> None:
        self.entries.clear()
        self.leaks.clear()
        self.reads.clear()
        self.events.clear()

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def commands_in(self, label_fragment: str) -> list[TraceEntry]:
        """Entries whose sequence label contains ``label_fragment``."""
        return [entry for entry in self.entries
                if label_fragment in entry.sequence_label]

    def bus_utilization(self) -> float:
        """Commands per elapsed cycle over the traced span."""
        if not self.entries:
            return 0.0
        span = (self.entries[-1].absolute_cycle
                - self.entries[0].absolute_cycle + 1)
        return len(self.entries) / span

    def render(self, limit: int | None = None) -> str:
        entries = self.entries if limit is None else self.entries[:limit]
        lines = [entry.render() for entry in entries]
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... {len(self.entries) - limit} more")
        return "\n".join(lines)

    def program_text(self, label: str = "trace") -> str:
        """The whole recording as replayable SoftMC program text.

        Includes ``LEAK`` lines for every retention pause and a trailing
        ``WAIT`` up to the controller's current cycle, so a replay ends
        on exactly the same cycle as the recorded run.
        """
        return trace_to_program(self.events, label,
                                final_cycle=self.mc.cycle)


def trace_to_program(entries: Iterable[TraceEvent],
                     label: str = "trace", *,
                     final_cycle: int | None = None) -> str:
    """Convert trace events into replayable SoftMC program text.

    ``entries`` may mix :class:`TraceEntry` commands with
    :class:`LeakEntry` pauses (in recorded bus order); pauses become
    ``LEAK`` lines with the surrounding idle cycles reconstructed as
    ``WAIT``.  ``final_cycle`` (the controller's cycle after the recorded
    run) appends the trailing idle so replayed timing matches exactly.
    """
    from .program import command_text

    events = list(entries)
    if not events:
        return f"# {label} (empty)\n"
    lines = [f"# {label}"]
    previous_cycle: int | None = None  # absolute cycle of last command
    chunk_base: int | None = None      # chunk origin after a LEAK
    if isinstance(events[0], TraceEntry):
        chunk_base = events[0].absolute_cycle
    for event in events:
        if isinstance(event, LeakEntry):
            if previous_cycle is not None:
                tail = event.absolute_cycle - previous_cycle - 1
                if tail > 0:
                    lines.append(f"WAIT {tail}")
            lines.append(f"LEAK {event.seconds!r}")
            chunk_base = event.absolute_cycle
            previous_cycle = None
            continue
        if previous_cycle is not None:
            gap = event.absolute_cycle - previous_cycle - 1
            if gap > 0:
                lines.append(f"WAIT {gap}")
        elif chunk_base is not None:
            offset = event.absolute_cycle - chunk_base
            if offset > 0:
                lines.append(f"WAIT {offset}")
        lines.append(command_text(event.command))
        previous_cycle = event.absolute_cycle
    if final_cycle is not None and previous_cycle is not None:
        tail = final_cycle - previous_cycle - 1
        if tail > 0:
            lines.append(f"WAIT {tail}")
    return "\n".join(lines) + "\n"
