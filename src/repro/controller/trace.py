"""Command-trace recording and replay.

Debugging out-of-spec DRAM behaviour lives and dies by knowing *exactly*
what went on the bus.  :class:`TraceRecorder` wraps a :class:`SoftMC` and
logs every issued command with its absolute cycle, the sequence label it
came from, and summaries of data payloads.  Traces render as text (and
round-trip through the SoftMC program assembler via
:func:`trace_to_program`), so a failing experiment can be reduced to a
replayable command stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


from ..dram.parameters import MEMORY_CYCLE_NS
from .commands import Command, CommandSequence, TimedCommand
from .softmc import SoftMC

__all__ = ["TraceEntry", "TraceRecorder", "trace_to_program"]


@dataclass(frozen=True)
class TraceEntry:
    """One command as it went on the bus."""

    absolute_cycle: int
    command: Command
    sequence_label: str

    @property
    def time_ns(self) -> float:
        return self.absolute_cycle * MEMORY_CYCLE_NS

    def render(self) -> str:
        return (f"@{self.absolute_cycle:>8d} ({self.time_ns:>10.1f} ns)  "
                f"{self.command.mnemonic():<18s}  # {self.sequence_label}")


class TraceRecorder:
    """Records every command a SoftMC issues.

    Usage::

        mc = SoftMC(chip)
        recorder = TraceRecorder(mc)   # wraps mc.run in place
        ... run experiment ...
        print(recorder.render())
        recorder.stop()                # restore the unwrapped engine
    """

    def __init__(self, mc: SoftMC) -> None:
        self.mc = mc
        self.entries: list[TraceEntry] = []
        self._original_run = mc.run
        mc.run = self._recording_run  # type: ignore[method-assign]
        self._active = True

    # ------------------------------------------------------------------

    def _recording_run(self, sequence: CommandSequence):
        base = self.mc.cycle
        for timed in sequence:
            self.entries.append(TraceEntry(
                absolute_cycle=base + timed.cycle,
                command=timed.command,
                sequence_label=sequence.label or "sequence",
            ))
        return self._original_run(sequence)

    def stop(self) -> None:
        """Unhook from the controller (idempotent)."""
        if self._active:
            self.mc.run = self._original_run  # type: ignore[method-assign]
            self._active = False

    def clear(self) -> None:
        self.entries.clear()

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def commands_in(self, label_fragment: str) -> list[TraceEntry]:
        """Entries whose sequence label contains ``label_fragment``."""
        return [entry for entry in self.entries
                if label_fragment in entry.sequence_label]

    def bus_utilization(self) -> float:
        """Commands per elapsed cycle over the traced span."""
        if not self.entries:
            return 0.0
        span = (self.entries[-1].absolute_cycle
                - self.entries[0].absolute_cycle + 1)
        return len(self.entries) / span

    def render(self, limit: int | None = None) -> str:
        entries = self.entries if limit is None else self.entries[:limit]
        lines = [entry.render() for entry in entries]
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... {len(self.entries) - limit} more")
        return "\n".join(lines)


def trace_to_program(entries: Iterable[TraceEntry],
                     label: str = "trace") -> str:
    """Convert trace entries into replayable SoftMC program text."""
    from .program import disassemble

    entries = list(entries)
    if not entries:
        return f"# {label} (empty)\n"
    origin = entries[0].absolute_cycle
    commands = tuple(
        TimedCommand(entry.absolute_cycle - origin, entry.command)
        for entry in entries)
    duration = commands[-1].cycle + 1
    return disassemble(CommandSequence(commands, duration, label))
