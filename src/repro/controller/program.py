"""SoftMC-style program assembly: a tiny ISA over DRAM commands.

The real SoftMC platform (Hassan et al., HPCA'17) does not accept ad-hoc
command lists; the host assembles small *programs* — instructions with
explicit waits and hardware loops — that the FPGA replays with exact
timing.  This module reproduces that workflow:

* a text assembly format (one instruction per line, ``#`` comments)::

      # one Frac operation on bank 0 row 1
      ACT 0 1
      PRE 0
      WAIT 5
      # four-row activation
      LOOP 3
        ACT 0 8
        PRE 0
        ACT 0 1
        WAIT 11
      ENDLOOP

* an :class:`Assembler` that expands loops/waits into a cycle-stamped
  :class:`CommandSequence` ready for :class:`SoftMC.run`, and

* a :func:`disassemble` that renders any ``CommandSequence`` back to the
  assembly text (round-trip tested), which doubles as a trace format for
  recording and replaying experiments.

Instruction set (mirroring SoftMC's DDR3 instructions):

==========  =============================  ==================================
mnemonic    operands                       effect
==========  =============================  ==================================
``ACT``     bank row                       ACTIVATE
``PRE``     bank                           PRECHARGE one bank
``PREA``    —                              PRECHARGE all banks
``WR``      bank row bits…                 whole-row write (bits as 0/1 str)
``RD``      bank row                       whole-row read (returned by run)
``WAIT``    cycles                         idle cycles before next command
``LOOP``    count                          repeat block ``count`` times
``ENDLOOP``  —                             close innermost loop
==========  =============================  ==================================

Commands are issued back-to-back (1 cycle apart) unless separated by
``WAIT`` — exactly the convention FracDRAM's sequences need.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..errors import CommandSequenceError
from .commands import (
    Activate,
    Command,
    CommandSequence,
    Precharge,
    PrechargeAll,
    ReadRow,
    TimedCommand,
    WriteRow,
)

__all__ = ["Assembler", "assemble", "disassemble", "ProgramError"]


class ProgramError(CommandSequenceError):
    """A SoftMC program failed to assemble."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        prefix = f"line {line_number}: " if line_number is not None else ""
        super().__init__(prefix + message)
        self.line_number = line_number


@dataclass
class _Instruction:
    line_number: int
    mnemonic: str
    operands: tuple[str, ...]


def _tokenize(source: str) -> list[_Instruction]:
    instructions = []
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        mnemonic, *operands = line.split()
        instructions.append(_Instruction(line_number, mnemonic.upper(),
                                         tuple(operands)))
    return instructions


def _parse_int(value: str, what: str, line_number: int) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise ProgramError(f"{what} must be an integer, got {value!r}",
                           line_number) from None
    if parsed < 0:
        raise ProgramError(f"{what} must be non-negative", line_number)
    return parsed


class Assembler:
    """Expands a SoftMC program into a :class:`CommandSequence`."""

    #: Commands are spaced this many cycles apart by default.
    DEFAULT_SPACING: int = 1

    def __init__(self, *, label: str = "softmc-program") -> None:
        self.label = label

    def assemble(self, source: str) -> CommandSequence:
        instructions = _tokenize(source)
        body, remainder = self._assemble_block(instructions, 0, top_level=True)
        if remainder != len(instructions):
            raise ProgramError("unexpected ENDLOOP",
                               instructions[remainder].line_number)
        commands: list[TimedCommand] = []
        cycle = 0
        for command, wait_after in body:
            commands.append(TimedCommand(cycle, command))
            cycle += self.DEFAULT_SPACING + wait_after
        return CommandSequence(tuple(commands), max(cycle, 1), self.label)

    # ------------------------------------------------------------------

    def _assemble_block(self, instructions: list[_Instruction], index: int,
                        *, top_level: bool,
                        ) -> tuple[list[tuple[Command, int]], int]:
        """Returns [(command, extra idle cycles after it)], next index."""
        body: list[tuple[Command, int]] = []

        def add_wait(cycles: int, line_number: int) -> None:
            if not body:
                raise ProgramError("WAIT before any command", line_number)
            command, wait_after = body[-1]
            body[-1] = (command, wait_after + cycles)

        while index < len(instructions):
            instruction = instructions[index]
            mnemonic = instruction.mnemonic
            operands = instruction.operands
            line = instruction.line_number
            if mnemonic == "ENDLOOP":
                if top_level:
                    raise ProgramError("ENDLOOP without LOOP", line)
                return body, index
            index += 1
            if mnemonic == "ACT":
                self._expect(operands, 2, "ACT bank row", line)
                body.append((Activate(_parse_int(operands[0], "bank", line),
                                      _parse_int(operands[1], "row", line)), 0))
            elif mnemonic == "PRE":
                self._expect(operands, 1, "PRE bank", line)
                body.append((Precharge(_parse_int(operands[0], "bank", line)), 0))
            elif mnemonic == "PREA":
                self._expect(operands, 0, "PREA", line)
                body.append((PrechargeAll(), 0))
            elif mnemonic == "RD":
                self._expect(operands, 2, "RD bank row", line)
                body.append((ReadRow(_parse_int(operands[0], "bank", line),
                                     _parse_int(operands[1], "row", line)), 0))
            elif mnemonic == "WR":
                if len(operands) != 3:
                    raise ProgramError("WR needs bank row bits", line)
                bits = operands[2]
                if set(bits) - {"0", "1"}:
                    raise ProgramError("WR bits must be a 0/1 string", line)
                body.append((WriteRow(
                    _parse_int(operands[0], "bank", line),
                    _parse_int(operands[1], "row", line),
                    tuple(bit == "1" for bit in bits)), 0))
            elif mnemonic == "WAIT":
                self._expect(operands, 1, "WAIT cycles", line)
                add_wait(_parse_int(operands[0], "cycles", line), line)
            elif mnemonic == "LOOP":
                self._expect(operands, 1, "LOOP count", line)
                count = _parse_int(operands[0], "count", line)
                if count < 1:
                    raise ProgramError("LOOP count must be >= 1", line)
                inner, index = self._assemble_block(
                    instructions, index, top_level=False)
                if index >= len(instructions) or (
                        instructions[index].mnemonic != "ENDLOOP"):
                    raise ProgramError("LOOP without ENDLOOP", line)
                index += 1  # consume ENDLOOP
                if not inner:
                    raise ProgramError("empty LOOP body", line)
                body.extend(inner * count)
            else:
                raise ProgramError(f"unknown mnemonic {mnemonic!r}", line)
        if not top_level:
            raise ProgramError("LOOP without ENDLOOP",
                               instructions[-1].line_number if instructions
                               else None)
        return body, index

    @staticmethod
    def _expect(operands: tuple[str, ...], count: int, usage: str,
                line: int) -> None:
        if len(operands) != count:
            raise ProgramError(f"expected '{usage}'", line)


def assemble(source: str, *, label: str = "softmc-program") -> CommandSequence:
    """Assemble SoftMC program text into a command sequence."""
    return Assembler(label=label).assemble(source)


def disassemble(sequence: CommandSequence) -> str:
    """Render a command sequence as replayable SoftMC program text.

    Inter-command gaps larger than one cycle become ``WAIT`` lines, so
    ``assemble(disassemble(seq))`` reproduces the exact timing.
    """
    lines = [f"# {sequence.label or 'sequence'}"]
    previous_cycle: int | None = None
    for timed in sequence:
        if previous_cycle is not None:
            gap = timed.cycle - previous_cycle - 1
            if gap > 0:
                lines.append(f"WAIT {gap}")
        command = timed.command
        if isinstance(command, Activate):
            lines.append(f"ACT {command.bank} {command.row}")
        elif isinstance(command, Precharge):
            lines.append(f"PRE {command.bank}")
        elif isinstance(command, PrechargeAll):
            lines.append("PREA")
        elif isinstance(command, ReadRow):
            lines.append(f"RD {command.bank} {command.row}")
        elif isinstance(command, WriteRow):
            bits = "".join("1" if bit else "0" for bit in command.data)
            lines.append(f"WR {command.bank} {command.row} {bits}")
        else:  # pragma: no cover - defensive
            raise CommandSequenceError(f"cannot disassemble {command!r}")
        previous_cycle = timed.cycle
    tail = sequence.duration - (previous_cycle if previous_cycle is not None
                                else 0) - 1
    if tail > 0:
        lines.append(f"WAIT {tail}")
    return "\n".join(lines) + "\n"
