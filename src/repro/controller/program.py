"""SoftMC-style program assembly: a tiny ISA over DRAM commands.

The real SoftMC platform (Hassan et al., HPCA'17) does not accept ad-hoc
command lists; the host assembles small *programs* — instructions with
explicit waits and hardware loops — that the FPGA replays with exact
timing.  This module reproduces that workflow:

* a text assembly format (one instruction per line, ``#`` comments)::

      # one Frac operation on bank 0 row 1
      ACT 0 1
      PRE 0
      WAIT 5
      # four-row activation
      LOOP 3
        ACT 0 8
        PRE 0
        ACT 0 1
        WAIT 11
      ENDLOOP

* an :class:`Assembler` that expands loops/waits into cycle-stamped
  :class:`CommandSequence` chunks — :func:`assemble` for pure command
  streams, :func:`assemble_program` for programs that also pause the bus
  with ``LEAK`` (retention studies) — and

* a :func:`disassemble` that renders any ``CommandSequence`` back to the
  assembly text (round-trip tested), which doubles as a trace format for
  recording and replaying experiments.

Instruction set (mirroring SoftMC's DDR3 instructions):

==========  =============================  ==================================
mnemonic    operands                       effect
==========  =============================  ==================================
``ACT``     bank row                       ACTIVATE
``PRE``     bank                           PRECHARGE one bank
``PREA``    —                              PRECHARGE all banks
``WR``      bank row bits…                 whole-row write (bits as 0/1 str)
``RD``      bank row                       whole-row read (returned by run)
``WAIT``    cycles                         idle cycles before next command
``LOOP``    count                          repeat block ``count`` times
``ENDLOOP``  —                             close innermost loop
``LEAK``    seconds                        pause the bus; cells leak
==========  =============================  ==================================

Commands are issued back-to-back (1 cycle apart) unless separated by
``WAIT`` — exactly the convention FracDRAM's sequences need.  ``LEAK``
is the one instruction with no bus-command equivalent: it models powering
the module through ``seconds`` of retention time with all banks idle
(``DramChip.advance_time``), so recorded retention experiments round-trip
through the text format.  A program containing ``LEAK`` assembles to a
:class:`Program` — command-sequence chunks interleaved with
:class:`LeakStep` pauses — because the device requires every bank idle
(and the controller a finished sequence) before time may pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


from ..errors import CommandSequenceError
from .commands import (
    Activate,
    Command,
    CommandSequence,
    Precharge,
    PrechargeAll,
    ReadRow,
    TimedCommand,
    WriteRow,
)

__all__ = ["Assembler", "LeakStep", "Program", "ProgramError", "assemble",
           "assemble_program", "disassemble"]


class ProgramError(CommandSequenceError):
    """A SoftMC program failed to assemble.

    Carries the 1-based ``line_number`` and the offending ``source_line``
    text (when known), and renders both into the message so a failing
    program file is diagnosable from the exception alone.
    """

    def __init__(self, message: str, line_number: int | None = None,
                 source_line: str | None = None) -> None:
        prefix = f"line {line_number}: " if line_number is not None else ""
        suffix = f" (offending text: {source_line!r})" if source_line else ""
        super().__init__(prefix + message + suffix)
        self.message = message
        self.line_number = line_number
        self.source_line = source_line


@dataclass(frozen=True)
class LeakStep:
    """A bus pause of ``seconds`` during which idle cells leak."""

    seconds: float

    def __post_init__(self) -> None:
        if not (self.seconds > 0.0):
            raise CommandSequenceError(
                f"LEAK seconds must be positive, got {self.seconds!r}")


#: One executable step of a :class:`Program`.
ProgramStep = Union[CommandSequence, LeakStep]


@dataclass(frozen=True)
class Program:
    """An assembled SoftMC program: command chunks split at ``LEAK``\\ s.

    Each :class:`CommandSequence` step is issued through a controller's
    ``run``; each :class:`LeakStep` maps to ``device.advance_time`` (the
    chunk boundary guarantees the controller has finished the preceding
    sequence, so the banks are idle as ``advance_time`` requires).
    """

    steps: tuple[ProgramStep, ...]
    label: str = "softmc-program"

    @property
    def sequences(self) -> tuple[CommandSequence, ...]:
        return tuple(step for step in self.steps
                     if isinstance(step, CommandSequence))

    @property
    def n_commands(self) -> int:
        return sum(len(step) for step in self.sequences)

    @property
    def n_reads(self) -> int:
        return sum(1 for step in self.sequences for timed in step
                   if isinstance(timed.command, ReadRow))

    @property
    def total_cycles(self) -> int:
        return sum(step.duration for step in self.sequences)

    @property
    def leak_seconds(self) -> float:
        return sum(step.seconds for step in self.steps
                   if isinstance(step, LeakStep))

    def describe(self) -> str:
        return (f"{self.label}: {len(self.steps)} step(s), "
                f"{self.n_commands} command(s), {self.total_cycles} "
                f"cycle(s), {self.leak_seconds:g} s leak")


@dataclass
class _Instruction:
    line_number: int
    text: str
    mnemonic: str
    operands: tuple[str, ...]


def _tokenize(source: str) -> list[_Instruction]:
    instructions = []
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        mnemonic, *operands = line.split()
        instructions.append(_Instruction(line_number, line, mnemonic.upper(),
                                         tuple(operands)))
    return instructions


def _parse_int(value: str, what: str, line_number: int) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise ProgramError(f"{what} must be an integer, got {value!r}",
                           line_number) from None
    if parsed < 0:
        raise ProgramError(f"{what} must be non-negative", line_number)
    return parsed


def _parse_seconds(value: str, line_number: int) -> float:
    try:
        parsed = float(value)
    except ValueError:
        raise ProgramError(f"seconds must be a number, got {value!r}",
                           line_number) from None
    if not (parsed > 0.0):
        raise ProgramError("LEAK seconds must be positive", line_number)
    return parsed


#: An assembled block entry: a command or leak, plus idle cycles after it
#: (for a leak, the idle cycles lead the *next* command chunk).
_BodyEntry = tuple[Union[Command, LeakStep], int]


class Assembler:
    """Expands a SoftMC program into command-sequence / leak steps."""

    #: Commands are spaced this many cycles apart by default.
    DEFAULT_SPACING: int = 1

    def __init__(self, *, label: str = "softmc-program") -> None:
        self.label = label

    def assemble(self, source: str) -> CommandSequence:
        """Assemble a pure command stream (no ``LEAK``) into one sequence."""
        program = self.assemble_program(source)
        steps = program.steps
        if len(steps) != 1 or not isinstance(steps[0], CommandSequence):
            raise ProgramError(
                "program pauses the bus with LEAK; assemble it with "
                "assemble_program() and execute the resulting Program")
        return steps[0]

    def assemble_program(self, source: str) -> Program:
        """Assemble any program, splitting command chunks at ``LEAK``."""
        instructions = _tokenize(source)
        try:
            body, remainder = self._assemble_block(instructions, 0,
                                                   top_level=True)
            if remainder != len(instructions):
                raise ProgramError("unexpected ENDLOOP",
                                   instructions[remainder].line_number)
        except ProgramError as error:
            raise self._annotate(source, error) from None
        return Program(self._chunk(body), self.label)

    @staticmethod
    def _annotate(source: str, error: ProgramError) -> ProgramError:
        """Attach the offending source text to a parse error."""
        if error.line_number is None or error.source_line is not None:
            return error
        lines = source.splitlines()
        if not 1 <= error.line_number <= len(lines):  # pragma: no cover
            return error
        return ProgramError(error.message, error.line_number,
                            source_line=lines[error.line_number - 1].strip())

    def _chunk(self, body: list[_BodyEntry]) -> tuple[ProgramStep, ...]:
        """Split the flattened body into sequence chunks at leak steps."""
        steps: list[ProgramStep] = []
        commands: list[TimedCommand] = []
        cycle = 0
        for item, wait_after in body:
            if isinstance(item, LeakStep):
                if commands or cycle > 0:
                    steps.append(CommandSequence(tuple(commands),
                                                 max(cycle, 1), self.label))
                steps.append(item)
                commands = []
                cycle = wait_after  # WAIT after LEAK leads the next chunk
            else:
                commands.append(TimedCommand(cycle, item))
                cycle += self.DEFAULT_SPACING + wait_after
        if commands or cycle > 0 or not steps:
            steps.append(CommandSequence(tuple(commands), max(cycle, 1),
                                         self.label))
        return tuple(steps)

    # ------------------------------------------------------------------

    def _assemble_block(self, instructions: list[_Instruction], index: int,
                        *, top_level: bool,
                        ) -> tuple[list[_BodyEntry], int]:
        """Returns [(command-or-leak, extra idle cycles after)], next index."""
        body: list[_BodyEntry] = []

        def add_wait(cycles: int, line_number: int) -> None:
            if not body:
                raise ProgramError("WAIT before any command", line_number)
            item, wait_after = body[-1]
            body[-1] = (item, wait_after + cycles)

        while index < len(instructions):
            instruction = instructions[index]
            mnemonic = instruction.mnemonic
            operands = instruction.operands
            line = instruction.line_number
            if mnemonic == "ENDLOOP":
                if top_level:
                    raise ProgramError("ENDLOOP without LOOP", line)
                return body, index
            index += 1
            if mnemonic == "ACT":
                self._expect(operands, 2, "ACT bank row", line)
                body.append((Activate(_parse_int(operands[0], "bank", line),
                                      _parse_int(operands[1], "row", line)), 0))
            elif mnemonic == "PRE":
                self._expect(operands, 1, "PRE bank", line)
                body.append((Precharge(_parse_int(operands[0], "bank", line)), 0))
            elif mnemonic == "PREA":
                self._expect(operands, 0, "PREA", line)
                body.append((PrechargeAll(), 0))
            elif mnemonic == "RD":
                self._expect(operands, 2, "RD bank row", line)
                body.append((ReadRow(_parse_int(operands[0], "bank", line),
                                     _parse_int(operands[1], "row", line)), 0))
            elif mnemonic == "WR":
                if len(operands) != 3:
                    raise ProgramError("WR needs bank row bits", line)
                bits = operands[2]
                if set(bits) - {"0", "1"}:
                    raise ProgramError("WR bits must be a 0/1 string", line)
                body.append((WriteRow(
                    _parse_int(operands[0], "bank", line),
                    _parse_int(operands[1], "row", line),
                    tuple(bit == "1" for bit in bits)), 0))
            elif mnemonic == "WAIT":
                self._expect(operands, 1, "WAIT cycles", line)
                add_wait(_parse_int(operands[0], "cycles", line), line)
            elif mnemonic == "LEAK":
                self._expect(operands, 1, "LEAK seconds", line)
                body.append((LeakStep(_parse_seconds(operands[0], line)), 0))
            elif mnemonic == "LOOP":
                self._expect(operands, 1, "LOOP count", line)
                count = _parse_int(operands[0], "count", line)
                if count < 1:
                    raise ProgramError("LOOP count must be >= 1", line)
                inner, index = self._assemble_block(
                    instructions, index, top_level=False)
                if index >= len(instructions) or (
                        instructions[index].mnemonic != "ENDLOOP"):
                    raise ProgramError("LOOP without ENDLOOP", line)
                index += 1  # consume ENDLOOP
                if not inner:
                    raise ProgramError("empty LOOP body", line)
                body.extend(inner * count)
            else:
                raise ProgramError(f"unknown mnemonic {mnemonic!r}", line)
        if not top_level:
            raise ProgramError("LOOP without ENDLOOP",
                               instructions[-1].line_number if instructions
                               else None)
        return body, index

    @staticmethod
    def _expect(operands: tuple[str, ...], count: int, usage: str,
                line: int) -> None:
        if len(operands) != count:
            raise ProgramError(f"expected '{usage}'", line)


def assemble(source: str, *, label: str = "softmc-program") -> CommandSequence:
    """Assemble SoftMC program text into a command sequence."""
    return Assembler(label=label).assemble(source)


def assemble_program(source: str, *,
                     label: str = "softmc-program") -> Program:
    """Assemble SoftMC program text (``LEAK`` allowed) into a Program."""
    return Assembler(label=label).assemble_program(source)


def command_text(command: Command) -> str:
    """Render one command as its assembly-text line."""
    if isinstance(command, Activate):
        return f"ACT {command.bank} {command.row}"
    if isinstance(command, Precharge):
        return f"PRE {command.bank}"
    if isinstance(command, PrechargeAll):
        return "PREA"
    if isinstance(command, ReadRow):
        return f"RD {command.bank} {command.row}"
    if isinstance(command, WriteRow):
        bits = "".join("1" if bit else "0" for bit in command.data)
        return f"WR {command.bank} {command.row} {bits}"
    raise CommandSequenceError(f"cannot disassemble {command!r}")


def disassemble(sequence: CommandSequence) -> str:
    """Render a command sequence as replayable SoftMC program text.

    Inter-command gaps larger than one cycle become ``WAIT`` lines, so
    ``assemble(disassemble(seq))`` reproduces the exact timing.
    """
    lines = [f"# {sequence.label or 'sequence'}"]
    previous_cycle: int | None = None
    for timed in sequence:
        if previous_cycle is not None:
            gap = timed.cycle - previous_cycle - 1
            if gap > 0:
                lines.append(f"WAIT {gap}")
        lines.append(command_text(timed.command))
        previous_cycle = timed.cycle
    tail = sequence.duration - (previous_cycle if previous_cycle is not None
                                else 0) - 1
    if tail > 0:
        lines.append(f"WAIT {tail}")
    return "\n".join(lines) + "\n"
