"""Bank-level parallelism: interleaving independent per-bank sequences.

DRAM banks operate independently, so a controller can overlap row cycles
of different banks on the shared command bus — the standard trick that
hides row latency, and the obvious scale-out axis for ComputeDRAM-style
operations (run one majority per bank concurrently).  The only shared
resource is the command bus: one command per cycle.

:func:`interleave` merges per-bank command sequences into a single bus
schedule that preserves each bank's *internal* relative timing exactly
(FracDRAM sequences are timing-critical: stretching ACT-PRE gaps would
change the physics) while packing different banks' commands into each
other's idle cycles.  :class:`BankScheduler` wraps this for the common
"same operation on N banks" case and reports the speedup over serial
issue.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CommandSequenceError
from .commands import CommandSequence, TimedCommand

__all__ = ["interleave", "BankScheduler", "InterleaveResult"]


@dataclass(frozen=True)
class InterleaveResult:
    """The merged schedule plus its accounting."""

    sequence: CommandSequence
    serial_cycles: int
    interleaved_cycles: int

    @property
    def speedup(self) -> float:
        if self.interleaved_cycles == 0:
            return 1.0
        return self.serial_cycles / self.interleaved_cycles


def _banks_touched(sequence: CommandSequence) -> set[int]:
    banks = set()
    for timed in sequence:
        bank = getattr(timed.command, "bank", None)
        if bank is None:
            raise CommandSequenceError(
                f"{timed.command.mnemonic()} targets all banks and cannot "
                "be interleaved")
        banks.add(bank)
    return banks


def interleave(sequences: list[CommandSequence],
               label: str = "interleaved") -> InterleaveResult:
    """Merge per-bank sequences into one bus schedule.

    Each input sequence must touch a disjoint set of banks.  Internal
    relative timing of every sequence is preserved (its commands shift by
    one common offset only); offsets are chosen greedily so commands never
    collide on the bus.
    """
    if not sequences:
        raise CommandSequenceError("nothing to interleave")
    seen_banks: set[int] = set()
    for sequence in sequences:
        banks = _banks_touched(sequence)
        if banks & seen_banks:
            raise CommandSequenceError(
                f"sequences share banks {sorted(banks & seen_banks)}; "
                "interleaving requires disjoint banks")
        seen_banks |= banks

    occupied: set[int] = set()
    merged: list[TimedCommand] = []
    total_duration = 0
    for sequence in sequences:
        offsets = [timed.cycle for timed in sequence]
        shift = 0
        while any(offset + shift in occupied for offset in offsets):
            shift += 1
        for timed in sequence:
            cycle = timed.cycle + shift
            occupied.add(cycle)
            merged.append(TimedCommand(cycle, timed.command))
        total_duration = max(total_duration, sequence.duration + shift)

    merged.sort(key=lambda timed: timed.cycle)
    result_sequence = CommandSequence(tuple(merged), total_duration, label)
    serial = sum(sequence.duration for sequence in sequences)
    return InterleaveResult(
        sequence=result_sequence,
        serial_cycles=serial,
        interleaved_cycles=total_duration,
    )


class BankScheduler:
    """Run the same (or different) operations on many banks concurrently."""

    def __init__(self, mc) -> None:
        self.mc = mc

    def run_interleaved(self, sequences: list[CommandSequence],
                        label: str = "interleaved") -> InterleaveResult:
        """Merge and issue; returns the schedule accounting.

        Read data (if any) comes back through the controller as usual.
        """
        result = interleave(sequences, label)
        self.mc.run(result.sequence)
        return result
