"""Compiled command-sequence plans: JEDEC observations resolved once.

Every trial of an experiment replays the same handful of timed sequences
(write-row, frac, read-row, ...), yet :meth:`SoftMC.run` used to rebuild
a fresh :class:`JedecChecker` and re-derive the identical violation
records for every single issue.  A :class:`CompiledPlan` hoists that work
out of the per-trial path: the violation tuple of each command — and the
ready-to-trace event dictionaries — are computed once per *distinct*
sequence shape and memoized in a process-local LRU cache.

The plan key captures exactly the inputs the checker consumes:

* the :class:`~repro.dram.parameters.TimingParams` (frozen, hashable),
* per command: its sequence-relative cycle, command kind, and bank.

Row addresses and write data are deliberately excluded — the DDR3
constraints tracked by the checker (tRP/tRC/tRAS/tRCD, one-row-per-bank,
row-open) never depend on them — so sequences that differ only in target
row share one plan.  This is also what makes a plan valid for *every
lane* of a trial batch (see :mod:`repro.controller.batched`): lanes vary
rows and data, never cycles or banks, so the violations are emitted once
per compiled plan and counter increments are simply multiplied by the
lane count.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .commands import CommandSequence
from .softmc import JedecChecker, JedecViolation
from ..dram.parameters import TimingParams

__all__ = ["CompiledPlan", "compile_plan", "plan_for", "plan_key",
           "plan_cache_info", "clear_plan_cache", "PLAN_CACHE_CAPACITY"]

#: Everything the JEDEC state machine can observe about a sequence: the
#: timing parameters plus, per command, its cycle, kind and bank.
PlanKey = tuple[TimingParams, tuple[tuple[int, str, int | None], ...]]

#: Upper bound on memoized plans; far above the distinct sequence shapes
#: any experiment issues (tens), small enough to never matter in memory.
PLAN_CACHE_CAPACITY: int = 512


@dataclass(frozen=True)
class CompiledPlan:
    """Immutable per-sequence JEDEC annotation, shared across trials.

    ``violations[i]`` is the (possibly empty) violation tuple of command
    ``i``; ``violation_events[i]`` is the same data pre-rendered in the
    ``repro-trace/1`` event shape.  The event lists are shared between
    every trace event built from this plan — they are never mutated, only
    serialized.
    """

    key: PlanKey
    n_commands: int
    violations: tuple[tuple[JedecViolation, ...], ...]
    violation_events: tuple[tuple[dict[str, object], ...], ...]
    total_violations: int

    @property
    def has_violations(self) -> bool:
        return self.total_violations > 0


def plan_key(timing: TimingParams, sequence: CommandSequence) -> PlanKey:
    """Cache key: everything the JEDEC state machine can observe."""
    return (timing, tuple(
        (timed.cycle, timed.command.KIND, getattr(timed.command, "bank", None))
        for timed in sequence))


def compile_plan(timing: TimingParams, sequence: CommandSequence) -> CompiledPlan:
    """Run a fresh checker over ``sequence`` and freeze its observations."""
    checker = JedecChecker(timing)
    violations = tuple(checker.observe(timed.cycle, timed.command)
                       for timed in sequence)
    events = tuple(tuple(violation.to_event() for violation in per_command)
                   for per_command in violations)
    return CompiledPlan(
        key=plan_key(timing, sequence),
        n_commands=len(sequence),
        violations=violations,
        violation_events=events,
        total_violations=sum(len(per_command) for per_command in violations))


_cache: "OrderedDict[PlanKey, CompiledPlan]" = OrderedDict()
_hits: int = 0
_misses: int = 0


def plan_for(timing: TimingParams, sequence: CommandSequence) -> CompiledPlan:
    """Memoized :func:`compile_plan` (process-local LRU).

    The cache mutations below are exempt from the kernel-purity rule:
    ``compile_plan`` is a pure function of the key, so hit/miss history
    can change only *when* work happens, never any result a worker
    returns — and the cache dies with the worker process.
    """
    global _hits, _misses  # repro: lint-ok[FORK002]
    key = plan_key(timing, sequence)
    plan = _cache.get(key)
    if plan is not None:
        _hits += 1  # repro: lint-ok[FORK002]
        _cache.move_to_end(key)
        return plan
    _misses += 1  # repro: lint-ok[FORK002]
    plan = compile_plan(timing, sequence)
    _cache[key] = plan  # repro: lint-ok[FORK002]
    if len(_cache) > PLAN_CACHE_CAPACITY:
        _cache.popitem(last=False)  # repro: lint-ok[FORK002]
    return plan


def plan_cache_info() -> dict[str, int]:
    """Cache statistics (for tests and the performance docs)."""
    return {"size": len(_cache), "capacity": PLAN_CACHE_CAPACITY,
            "hits": _hits, "misses": _misses}


def clear_plan_cache() -> None:
    """Drop all memoized plans and reset the hit/miss counters."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0
