"""SoftMC-style software memory controller (cycle-accurate).

:class:`SoftMC` replays :class:`CommandSequence` streams against a
simulated device (:class:`~repro.dram.chip.DramChip` or
:class:`~repro.dram.module_.DramModule`), keeping a global cycle counter so
experiments can account latency exactly as the paper does (2.5 ns/cycle).

Two operating modes mirror the real SoftMC:

* **permissive** (default) — commands are issued with whatever timing the
  sequence encodes, including JEDEC violations; this is FracDRAM mode.
* **strict** — a :class:`JedecChecker` validates every inter-command gap
  and raises :class:`TimingViolationError` on the first violation; used to
  demonstrate that normal read/write/refresh traffic is in-spec while every
  FracDRAM primitive is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence as SequenceType

import numpy as np

from ..dram.parameters import MEMORY_CYCLE_NS, ElectricalParams, TimingParams
from ..errors import TimingViolationError
from ..telemetry.registry import active as _telemetry_active
from .commands import (
    Activate,
    CommandSequence,
    Precharge,
    PrechargeAll,
    ReadRow,
    WriteRow,
)
from . import sequences as seq

__all__ = ["SoftMC", "JedecChecker", "JedecViolation", "DeviceLike"]


class DeviceLike(Protocol):
    """Command-level interface shared by DramChip and DramModule."""

    n_banks: int

    def activate(self, bank: int, row: int, cycle: int) -> None: ...
    def precharge(self, bank: int, cycle: int) -> None: ...
    def precharge_all(self, cycle: int) -> None: ...
    def settle(self, cycle: int) -> None: ...
    def finish(self, cycle: int) -> None: ...
    def row_buffer_logical(self, bank: int, row: int) -> np.ndarray: ...
    def write_open(self, bank: int, row: int, bits: SequenceType[bool]) -> None: ...


@dataclass(frozen=True)
class JedecViolation:
    """One JEDEC constraint broken by a command (observe-mode record)."""

    constraint: str
    message: str
    required_cycles: int | None = None
    actual_cycles: int | None = None

    def to_error(self) -> TimingViolationError:
        return TimingViolationError(
            self.message, constraint=self.constraint,
            required_cycles=self.required_cycles,
            actual_cycles=self.actual_cycles)

    def to_event(self) -> dict[str, object]:
        """The ``violations`` entry shape of the ``repro-trace/1`` schema."""
        return {"constraint": self.constraint,
                "required_cycles": self.required_cycles,
                "actual_cycles": self.actual_cycles}


class JedecChecker:
    """Validates command gaps against the JEDEC DDR3 timing constraints.

    Two entry points share one state machine: :meth:`check` raises on the
    first violation (strict mode), while :meth:`observe` records every
    violation *and keeps tracking state*, which is what lets the tracer
    flag each out-of-spec command in an intentionally violating FracDRAM
    stream without aborting it.
    """

    def __init__(self, timing: TimingParams) -> None:
        self.timing = timing
        far_past = -(10 ** 9)
        self._last_act: dict[int, int] = {}
        self._last_pre: dict[int, int] = {}
        self._open: dict[int, bool] = {}
        self._far_past = far_past

    def _bank_state(self, bank: int) -> tuple[int, int, bool]:
        return (
            self._last_act.get(bank, self._far_past),
            self._last_pre.get(bank, self._far_past),
            self._open.get(bank, False),
        )

    def observe(self, cycle: int, command) -> tuple[JedecViolation, ...]:
        """Advance the state machine; return violations (possibly empty)."""
        timing = self.timing
        violations: list[JedecViolation] = []
        if isinstance(command, Activate):
            last_act, last_pre, is_open = self._bank_state(command.bank)
            if is_open:
                violations.append(JedecViolation(
                    "one-row-per-bank",
                    f"ACT to bank {command.bank} while a row is open"))
            if cycle - last_pre < timing.t_rp:
                violations.append(JedecViolation(
                    "tRP",
                    f"ACT {cycle - last_pre} cycles after PRE (tRP={timing.t_rp})",
                    required_cycles=timing.t_rp,
                    actual_cycles=cycle - last_pre))
            if cycle - last_act < timing.t_rc:
                violations.append(JedecViolation(
                    "tRC",
                    f"ACT {cycle - last_act} cycles after ACT (tRC={timing.t_rc})",
                    required_cycles=timing.t_rc,
                    actual_cycles=cycle - last_act))
            self._last_act[command.bank] = cycle
            self._open[command.bank] = True
        elif isinstance(command, Precharge):
            last_act, _, is_open = self._bank_state(command.bank)
            if is_open and cycle - last_act < timing.t_ras:
                violations.append(JedecViolation(
                    "tRAS",
                    f"PRE {cycle - last_act} cycles after ACT (tRAS={timing.t_ras})",
                    required_cycles=timing.t_ras,
                    actual_cycles=cycle - last_act))
            self._last_pre[command.bank] = cycle
            self._open[command.bank] = False
        elif isinstance(command, PrechargeAll):
            for bank in sorted(self._open):
                last_act = self._last_act.get(bank, self._far_past)
                if self._open[bank] and cycle - last_act < timing.t_ras:
                    violations.append(JedecViolation(
                        "tRAS",
                        f"PREA {cycle - last_act} cycles after ACT on bank {bank}",
                        required_cycles=timing.t_ras,
                        actual_cycles=cycle - last_act))
            banks = sorted(set(self._last_act) | set(self._last_pre)
                           | set(self._open))
            for bank in banks:
                self._last_pre[bank] = cycle
                self._open[bank] = False
        elif isinstance(command, (ReadRow, WriteRow)):
            last_act, _, is_open = self._bank_state(command.bank)
            if not is_open:
                violations.append(JedecViolation(
                    "row-open",
                    f"column access to bank {command.bank} with no open row"))
            if cycle - last_act < timing.t_rcd:
                violations.append(JedecViolation(
                    "tRCD",
                    f"column access {cycle - last_act} cycles after ACT "
                    f"(tRCD={timing.t_rcd})",
                    required_cycles=timing.t_rcd,
                    actual_cycles=cycle - last_act))
        return tuple(violations)

    def check(self, cycle: int, command) -> None:
        """Strict mode: raise on the first violation of ``command``."""
        violations = self.observe(cycle, command)
        if violations:
            raise violations[0].to_error()


class SoftMC:
    """Software memory controller driving one simulated device."""

    def __init__(self, device: DeviceLike, *, timing: TimingParams | None = None,
                 electrical: ElectricalParams | None = None,
                 strict: bool = False) -> None:
        self.device = device
        self.timing = timing or TimingParams()
        self.electrical = electrical or getattr(
            getattr(device, "group", None), "electrical", None) or ElectricalParams()
        self.strict = strict
        self.cycle: int = 0

    # ------------------------------------------------------------------
    # core engine
    # ------------------------------------------------------------------

    @property
    def elapsed_ns(self) -> float:
        """Wall-clock bus time consumed so far."""
        return self.cycle * MEMORY_CYCLE_NS

    def run(self, sequence: CommandSequence) -> list[np.ndarray]:
        """Issue a sequence starting at the current cycle.

        Returns the data of every READ in the sequence, in issue order.
        With telemetry active, every command is counted and traced with
        its JEDEC-violation flags (the checker runs in observe mode, so
        intentionally out-of-spec FracDRAM streams are annotated rather
        than aborted; strict mode still raises on the first violation).
        """
        telemetry = _telemetry_active()
        plan = None
        if self.strict or telemetry is not None:
            from .plan import plan_for

            # JEDEC observations are a pure function of (timing, cycles,
            # kinds, banks), so identical sequence shapes across trials
            # share one compiled, LRU-cached plan instead of re-running
            # the checker per issue.
            plan = plan_for(self.timing, sequence)
        if telemetry is not None:
            self._record_sequence(telemetry, sequence)
        reads: list[np.ndarray] = []
        base = self.cycle
        for index, timed in enumerate(sequence):
            cycle = base + timed.cycle
            command = timed.command
            if plan is not None:
                violations = plan.violations[index]
                if violations and self.strict:
                    raise violations[0].to_error()
                if telemetry is not None:
                    self._record_command(telemetry, command, cycle, violations,
                                         plan.violation_events[index])
            if isinstance(command, Activate):
                self.device.activate(command.bank, command.row, cycle)
            elif isinstance(command, Precharge):
                self.device.precharge(command.bank, cycle)
            elif isinstance(command, PrechargeAll):
                self.device.precharge_all(cycle)
            elif isinstance(command, ReadRow):
                self.device.settle(cycle)
                reads.append(self.device.row_buffer_logical(command.bank, command.row))
            elif isinstance(command, WriteRow):
                self.device.settle(cycle)
                self.device.write_open(command.bank, command.row,
                                       np.asarray(command.data, dtype=bool))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown command {command!r}")
        self.cycle = base + sequence.duration
        self.device.finish(self.cycle)
        return reads

    def _record_sequence(self, telemetry, sequence: CommandSequence) -> None:
        """Count and trace one sequence issue (telemetry active only)."""
        telemetry.count("controller.sequences")
        if sequence.op:
            telemetry.count(f"controller.seq.{sequence.op}")
            if sequence.op == "frac":
                # One Frac operation per ACT/PRE pair (Section III-A).
                telemetry.count("controller.frac_ops", len(sequence) // 2)
        telemetry.emit("sequence", {
            "label": sequence.label,
            "op": sequence.op,
            "start_cycle": self.cycle,
            "duration": sequence.duration,
            "n_commands": len(sequence),
        })

    def _record_command(self, telemetry, command, cycle: int,
                        violations: tuple[JedecViolation, ...],
                        violation_events: tuple[dict, ...] | None = None,
                        ) -> None:
        """Count and trace one issued command (telemetry active only)."""
        telemetry.count("controller.commands")
        telemetry.count(f"controller.{command.KIND.lower()}")
        if violations:
            telemetry.count("controller.jedec_violations", len(violations))
            for violation in violations:
                telemetry.count(
                    f"controller.jedec.{violation.constraint.lower()}")
        if violation_events is None:
            violation_events = tuple(violation.to_event()
                                     for violation in violations)
        telemetry.emit("command", {
            "cmd": command.KIND,
            "bank": getattr(command, "bank", None),
            "row": getattr(command, "row", None),
            "cycle": cycle,
            "violations": list(violation_events),
        })

    def idle(self, cycles: int) -> None:
        """Advance the bus clock without issuing commands."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.cycle += cycles
        self.device.finish(self.cycle)

    # ------------------------------------------------------------------
    # convenience wrappers (one per paper sequence)
    # ------------------------------------------------------------------

    def precharge_all(self) -> None:
        self.run(seq.precharge_all_sequence(self.timing))

    def write_row(self, bank: int, row: int, bits: SequenceType[bool]) -> None:
        self.run(seq.write_row_sequence(bank, row, bits, self.timing))

    def fill_row(self, bank: int, row: int, value: bool) -> None:
        """Store all-ones or all-zeros into a row."""
        width = _device_columns(self.device)
        self.write_row(bank, row, np.full(width, bool(value)))

    def read_row(self, bank: int, row: int) -> np.ndarray:
        (data,) = self.run(seq.read_row_sequence(bank, row, self.timing))
        return data

    def refresh_row(self, bank: int, row: int) -> None:
        self.run(seq.refresh_row_sequence(bank, row, self.timing))

    def frac(self, bank: int, row: int, n_frac: int = 1) -> None:
        """Issue ``n_frac`` Frac operations (Section III-A)."""
        self.run(seq.frac_sequence(bank, row, n_frac, self.timing))

    def multi_row_activate(self, bank: int, r1: int, r2: int) -> None:
        """ComputeDRAM multi-row activation with sense-amp completion."""
        self.run(seq.multi_row_sequence(bank, r1, r2, self.timing, self.electrical))

    def half_m(self, bank: int, r1: int, r2: int) -> None:
        """Interrupted four-row activation (Section III-B)."""
        self.run(seq.half_m_sequence(bank, r1, r2, self.timing))

    def row_copy(self, bank: int, src: int, dst: int) -> None:
        """In-DRAM row copy (18 cycles, Section VI-A.1)."""
        self.run(seq.row_copy_sequence(bank, src, dst, self.timing, self.electrical))


def _device_columns(device: DeviceLike) -> int:
    columns = getattr(device, "columns", None)
    if columns is None:  # pragma: no cover - defensive
        raise AttributeError("device exposes no column count")
    return int(columns)
