"""Retention-time profiling (Sections IV-B1 and V-A, Figure 6).

The retention method turns the invisible cell voltage into an observable:
the higher the starting voltage, the longer the cell holds a readable one.
The profiler reproduces the paper's procedure exactly:

1. store all-ones into the target row;
2. issue ``n_frac`` Frac operations (zero for the baseline);
3. stop all command traffic for time ``t`` (simulated leakage);
4. read the row; bits that read zero have retention below ``t``.

Repeating with increasing ``t`` brackets each cell's retention into the
paper's six coarse ranges: 0, 0-10 min, 10-30 min, 30-60 min, 1-12 h,
> 12 h.  A retention of exactly zero means the final Frac already pushed
the voltage below the sensing threshold.

Cells are then classified by how their retention range moves as more Frac
operations are issued (Figure 6's bracket numbers):

* ``long`` — always in the > 12 h bucket (never profiled down);
* ``monotonic`` — retention never increases and strictly decreases at
  least once: the proof-of-concept population (~55% in the paper);
* ``other`` — irregular movement, attributed to variable retention time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.batched_ops import BatchedFracDram
from ..core.ops import FracDram

__all__ = [
    "RETENTION_PROBE_TIMES_S",
    "RETENTION_BUCKET_LABELS",
    "N_BUCKETS",
    "BatchedRetentionProfiler",
    "CellCategory",
    "RetentionProfile",
    "RetentionProfiler",
    "classify_cells",
]

#: Probe times bracketing the paper's six buckets (seconds).
RETENTION_PROBE_TIMES_S: tuple[float, ...] = (0.0, 600.0, 1800.0, 3600.0, 43200.0)

RETENTION_BUCKET_LABELS: tuple[str, ...] = (
    "0", "0-10min", "10-30min", "30-60min", "1-12h", ">12h")

N_BUCKETS: int = len(RETENTION_BUCKET_LABELS)


class CellCategory:
    """Figure 6 cell categories."""

    LONG = "long"
    MONOTONIC = "monotonic"
    OTHER = "other"


@dataclass(frozen=True)
class RetentionProfile:
    """Bucket indices per (frac count, column) for one profiled row.

    ``buckets[i, c]`` is the retention bucket of column ``c`` after
    ``n_fracs[i]`` Frac operations; bucket ``N_BUCKETS - 1`` is > 12 h.
    """

    n_fracs: tuple[int, ...]
    buckets: np.ndarray

    def pdf(self, frac_index: int) -> np.ndarray:
        """Probability density over the six buckets at one Frac count."""
        counts = np.bincount(self.buckets[frac_index], minlength=N_BUCKETS)
        return counts / counts.sum()

    def pdf_matrix(self) -> np.ndarray:
        """(len(n_fracs), N_BUCKETS) PDF heat-map column data (Figure 6)."""
        return np.stack([self.pdf(i) for i in range(len(self.n_fracs))])

    def category_fractions(self) -> dict[str, float]:
        categories = classify_cells(self.buckets)
        total = categories.size
        return {
            CellCategory.LONG: float(np.mean(categories == CellCategory.LONG)),
            CellCategory.MONOTONIC: float(
                np.mean(categories == CellCategory.MONOTONIC)),
            CellCategory.OTHER: float(np.mean(categories == CellCategory.OTHER)),
        } if total else {}


def classify_cells(buckets: np.ndarray) -> np.ndarray:
    """Classify each column by its bucket trajectory across Frac counts.

    ``buckets`` has shape (n_frac_settings, n_columns).
    """
    top = N_BUCKETS - 1
    always_top = np.all(buckets == top, axis=0)
    non_increasing = np.all(np.diff(buckets, axis=0) <= 0, axis=0)
    decreases = np.any(np.diff(buckets, axis=0) < 0, axis=0)
    monotonic = non_increasing & decreases & ~always_top
    categories = np.full(buckets.shape[1], CellCategory.OTHER, dtype=object)
    categories[monotonic] = CellCategory.MONOTONIC
    categories[always_top] = CellCategory.LONG
    return categories


class RetentionProfiler:
    """Runs the bracketing procedure on rows of one device."""

    def __init__(self, fd: FracDram, *,
                 probe_times_s: Sequence[float] = RETENTION_PROBE_TIMES_S) -> None:
        if list(probe_times_s) != sorted(probe_times_s):
            raise ValueError("probe times must be ascending")
        self.fd = fd
        self.probe_times_s = tuple(probe_times_s)

    def _alive_after(self, bank: int, row: int, n_frac: int,
                     wait_s: float) -> np.ndarray:
        """One pass: init ones, Frac, leak, read; True where the bit held."""
        self.fd.fill_row(bank, row, True)
        if n_frac > 0:
            self.fd.frac(bank, row, n_frac)
        if wait_s > 0:
            # Chips with command-spacing checks drop the Frac PRECHARGEs
            # and leave the row open; close everything before leaking.
            self.fd.precharge_all()
            self.fd.advance_time(wait_s)
        return self.fd.read_row(bank, row).astype(bool)

    def bucket_row(self, bank: int, row: int, n_frac: int) -> np.ndarray:
        """Retention bucket index per column for one Frac count."""
        n_cols = self.fd.columns
        bucket = np.full(n_cols, N_BUCKETS - 1, dtype=int)
        resolved = np.zeros(n_cols, dtype=bool)
        for probe_index, wait_s in enumerate(self.probe_times_s):
            alive = self._alive_after(bank, row, n_frac, wait_s)
            newly_dead = ~alive & ~resolved
            bucket[newly_dead] = probe_index
            resolved |= newly_dead
            if resolved.all():
                break
        return bucket

    def profile_row(self, bank: int, row: int,
                    n_fracs: Sequence[int] = (0, 1, 2, 3, 4, 5),
                    ) -> RetentionProfile:
        """Full Figure 6 profile of one row across Frac counts."""
        buckets = np.stack(
            [self.bucket_row(bank, row, n) for n in n_fracs])
        return RetentionProfile(tuple(n_fracs), buckets)

    def profile_rows(self, targets: Sequence[tuple[int, int]],
                     n_fracs: Sequence[int] = (0, 1, 2, 3, 4, 5),
                     ) -> RetentionProfile:
        """Profile several (bank, row) targets and pool their columns."""
        profiles = [self.profile_row(bank, row, n_fracs) for bank, row in targets]
        pooled = np.concatenate([p.buckets for p in profiles], axis=1)
        return RetentionProfile(tuple(n_fracs), pooled)


class BatchedRetentionProfiler:
    """The bracketing procedure across all lanes of a batched device.

    Lane ``i`` of the batch produces bit-for-bit the profile the scalar
    :class:`RetentionProfiler` produces on lane ``i``'s donor chip: the
    per-probe early exit (stop probing a row once every column has
    resolved) is tracked per lane, so a lane that resolves early simply
    drops out of the remaining probe passes — exactly the commands (and
    noise draws) its scalar run would have skipped.
    """

    def __init__(self, bfd: BatchedFracDram, *,
                 probe_times_s: Sequence[float] = RETENTION_PROBE_TIMES_S) -> None:
        if list(probe_times_s) != sorted(probe_times_s):
            raise ValueError("probe times must be ascending")
        self.bfd = bfd
        self.probe_times_s = tuple(probe_times_s)

    def _alive_after(self, bank: int, sub_rows: Sequence[int], n_frac: int,
                     wait_s: float, lanes: Sequence[int]) -> np.ndarray:
        """One pass over ``lanes``; returns ``(len(lanes), C)`` bools."""
        self.bfd.fill_row(bank, sub_rows, True, lanes)
        if n_frac > 0:
            self.bfd.frac(bank, sub_rows, n_frac, lanes)
        if wait_s > 0:
            # Chips with command-spacing checks drop the Frac PRECHARGEs
            # and leave the row open; close everything before leaking.
            self.bfd.precharge_all(lanes)
            self.bfd.advance_time(wait_s, lanes)
        return self.bfd.read_row(bank, sub_rows, lanes).astype(bool)

    def bucket_row(self, bank: int, rows: Sequence[int], n_frac: int,
                   lanes: Sequence[int]) -> np.ndarray:
        """Bucket index per (lane, column); ``rows`` is indexed by lane id.

        Lanes outside ``lanes`` keep the default (> 12 h) bucket.
        """
        n_cols = self.bfd.columns
        bucket = np.full((self.bfd.n_lanes, n_cols), N_BUCKETS - 1, dtype=int)
        resolved = np.zeros((self.bfd.n_lanes, n_cols), dtype=bool)
        active = list(lanes)
        for probe_index, wait_s in enumerate(self.probe_times_s):
            sub_rows = [rows[lane] for lane in active]
            alive = self._alive_after(bank, sub_rows, n_frac, wait_s, active)
            active_arr = np.asarray(active, dtype=np.intp)
            newly_dead = ~alive & ~resolved[active_arr]
            bucket[active_arr] = np.where(
                newly_dead, probe_index, bucket[active_arr])
            resolved[active_arr] |= newly_dead
            active = [lane for lane in active if not resolved[lane].all()]
            if not active:
                break
        return bucket

    def profile_row(self, bank: int, rows: Sequence[int],
                    n_fracs: Sequence[int], lanes: Sequence[int]) -> np.ndarray:
        """``(len(n_fracs), n_lanes, C)`` buckets for one target per lane."""
        return np.stack(
            [self.bucket_row(bank, rows, n, lanes) for n in n_fracs])

    def profile_rows(self, per_lane_targets: Sequence[Sequence[tuple[int, int]]],
                     n_fracs: Sequence[int] = (0, 1, 2, 3, 4, 5),
                     lanes: Sequence[int] | None = None,
                     ) -> list[RetentionProfile]:
        """Profile one target list per lane; pool columns per lane.

        ``per_lane_targets[i]`` is the (bank, row) list for ``lanes[i]``;
        all lists must have the same length and target ``j`` must name the
        same bank on every lane (rows may differ — target sampling is
        bank-major and lane-uniform in counts, so this always holds for
        the experiment harnesses).
        """
        if lanes is None:
            lanes = list(range(self.bfd.n_lanes))
        n_targets = len(per_lane_targets[0])
        if any(len(targets) != n_targets for targets in per_lane_targets):
            raise ValueError("per-lane target lists must have equal length")
        per_target: list[np.ndarray] = []
        for j in range(n_targets):
            banks = {targets[j][0] for targets in per_lane_targets}
            if len(banks) != 1:
                raise ValueError(
                    f"target {j} names multiple banks {sorted(banks)}")
            rows = [0] * self.bfd.n_lanes
            for position, lane in enumerate(lanes):
                rows[lane] = per_lane_targets[position][j][1]
            per_target.append(
                self.profile_row(banks.pop(), rows, n_fracs, lanes))
        return [
            RetentionProfile(
                tuple(n_fracs),
                np.concatenate([pt[:, lane, :] for pt in per_target], axis=1))
            for lane in lanes
        ]
