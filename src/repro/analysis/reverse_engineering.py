"""Reverse-engineering "black-box" DRAM with fractional values
(Section VI-C).

Fractional values turn the DRAM into its own measurement instrument:

* **Sense-threshold estimation** — the Frac ladder produces a known,
  geometrically spaced family of cell voltages (0.5 + 0.5 q^n).  The
  largest n at which a column still reads one brackets that column's
  sensing threshold between two ladder rungs.

* **Charge-share-ratio estimation** — the fraction of columns reading one
  immediately after n Frac ops decays with the ladder; fitting the decay
  recovers the bit-line/cell capacitance ratio, a parameter vendors do
  not publish.

Both estimators only use commands available on real hardware (write,
Frac, read); tests validate them against the simulator's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize
from scipy.stats import norm

from ..core.ops import FracDram

__all__ = [
    "ThresholdEstimate",
    "estimate_sense_thresholds",
    "estimate_share_factor",
    "probe_opened_rows",
    "batched_probe_opened_rows",
    "discover_multi_row_pairs",
]


@dataclass(frozen=True)
class ThresholdEstimate:
    """Per-column sensing-threshold brackets from the Frac ladder.

    ``lower[c] < threshold_c <= upper[c]`` in cell-voltage units (Vdd).
    Columns whose threshold lies outside the ladder range are clamped to
    the ladder end points.
    """

    lower: np.ndarray
    upper: np.ndarray

    @property
    def midpoint(self) -> np.ndarray:
        return 0.5 * (self.lower + self.upper)

    @property
    def resolution(self) -> np.ndarray:
        """Bracket width per column (estimation uncertainty)."""
        return self.upper - self.lower


def _ladder_voltage(n_frac: int, share_factor: float, init_ones: bool) -> float:
    deviation = 0.5 if init_ones else -0.5
    return 0.5 + deviation * share_factor ** n_frac


def estimate_sense_thresholds(
    fd: FracDram,
    bank: int,
    row: int,
    *,
    max_frac: int = 8,
    share_factor: float = 0.25,
    repeats: int = 3,
) -> ThresholdEstimate:
    """Bracket each column's sensing threshold with the Frac ladder.

    For every rung n (voltage v_n, descending toward Vdd/2) the row is
    re-initialized to ones, Frac'd n times, and read; a column that reads
    one at rung n but zero at rung n+1 has its threshold in (v_{n+1}, v_n].
    ``repeats`` averages out read noise via majority voting per rung.
    """
    n_cols = fd.columns
    rung_voltages = [_ladder_voltage(n, share_factor, True)
                     for n in range(max_frac + 1)]
    reads_one = np.zeros((max_frac + 1, n_cols), dtype=bool)
    for n_frac in range(max_frac + 1):
        votes = np.zeros(n_cols, dtype=int)
        for _ in range(repeats):
            fd.fill_row(bank, row, True)
            if n_frac > 0:
                fd.frac(bank, row, n_frac)
            votes += fd.read_row(bank, row).astype(int)
        reads_one[n_frac] = votes * 2 > repeats

    # Highest rung index still reading one (thresholds are crossed from
    # above as the ladder descends).
    lower = np.full(n_cols, 0.5)
    upper = np.full(n_cols, 1.0)
    for column in range(n_cols):
        ones_at = np.flatnonzero(reads_one[:, column])
        if ones_at.size == 0:
            # Threshold above the whole ladder (reads zero even at Vdd).
            lower[column] = rung_voltages[0]
            upper[column] = 1.0
            continue
        last_one = int(ones_at.max())
        upper[column] = rung_voltages[last_one]
        if last_one < max_frac:
            lower[column] = rung_voltages[last_one + 1]
        else:
            lower[column] = 0.5
    return ThresholdEstimate(lower=lower, upper=upper)


def estimate_share_factor(
    fd: FracDram,
    bank: int,
    row: int,
    *,
    max_frac: int = 6,
    offset_sigma_guess: float = 0.05,
) -> float:
    """Estimate the per-Frac deviation contraction q = Cc / (Cb + Cc).

    The fraction of columns reading one right after n Fracs is
    ``P_n = Phi(0.5 q^n / sigma_eff)`` for threshold offsets ~ N(0,
    sigma_eff) in cell units; fitting (q, sigma_eff) to the measured
    ladder recovers q and hence the capacitance ratio Cb/Cc = 1/q - 1.
    """
    fractions = []
    for n_frac in range(1, max_frac + 1):
        fd.fill_row(bank, row, True)
        fd.frac(bank, row, n_frac)
        fractions.append(float(np.mean(fd.read_row(bank, row))))
    measured = np.asarray(fractions)
    counts = np.arange(1, max_frac + 1)

    def model(params: np.ndarray) -> np.ndarray:
        q, sigma, mean_shift = params
        deviation = 0.5 * np.clip(q, 1e-3, 0.999) ** counts
        return norm.cdf((deviation - mean_shift) / max(sigma, 1e-4))

    def loss(params: np.ndarray) -> float:
        return float(np.sum((model(params) - measured) ** 2))

    result = optimize.minimize(
        loss, x0=np.array([0.3, offset_sigma_guess, 0.0]),
        bounds=[(0.01, 0.99), (1e-4, 0.5), (-0.2, 0.2)],
        method="L-BFGS-B")
    return float(result.x[0])


def probe_opened_rows(fd: FracDram, bank: int, r1: int, r2: int,
                      rng: np.random.Generator, *,
                      changed_threshold: float = 0.15,
                      repeats: int = 2) -> tuple[int, ...]:
    """Black-box detection of the rows ``ACT(r1)-PRE-ACT(r2)`` opens.

    R1/R2 get a shared random pattern, every other row of the sub-array an
    independent one; any implicitly opened row is overwritten by the
    charge-sharing result on a sizeable fraction of columns.  Repeats with
    fresh patterns average out marginal columns.  Returns the opened
    logical rows in (R1, R2, extras...) order — the procedure behind the
    paper's Section VI-A.1 exploration, usable even on chips with
    scrambled (unknown) logical-to-physical row maps.
    """
    rows_per_subarray = int(fd.device.geometry.rows_per_subarray)
    base = (r1 // rows_per_subarray) * rows_per_subarray
    local_rows = range(base, base + rows_per_subarray)
    changed_fraction = {row: 0.0 for row in local_rows if row not in (r1, r2)}
    for _ in range(repeats):
        shared_pattern = rng.random(fd.columns) < 0.5
        contents: dict[int, np.ndarray] = {}
        for row in local_rows:
            contents[row] = (shared_pattern if row in (r1, r2)
                             else rng.random(fd.columns) < 0.5)
            fd.write_row(bank, row, contents[row])
        fd.mc.multi_row_activate(bank, r1, r2)
        for row in changed_fraction:
            readback = fd.read_row(bank, row)
            changed_fraction[row] += float(
                np.mean(readback != contents[row])) / repeats
    extras = tuple(row for row, fraction in changed_fraction.items()
                   if fraction > changed_threshold)
    return (r1, r2, *extras)


def batched_probe_opened_rows(bfd, bank: int, r1: int, r2: int,
                              rngs, lanes, *,
                              changed_threshold: float = 0.15,
                              repeats: int = 2) -> list[tuple[int, ...]]:
    """:func:`probe_opened_rows` across the lanes of a device batch.

    ``bfd`` is a :class:`~repro.core.batched_ops.BatchedFracDram`;
    ``rngs`` holds one pattern generator per entry of ``lanes``, each
    consuming draws in exactly the scalar order (shared pattern first,
    then one per non-R1/R2 row in row order, per repeat), so a lane's
    result is byte-identical to the scalar probe on its chip.
    """
    rows_per_subarray = int(bfd.device.geometry.rows_per_subarray)
    base = (r1 // rows_per_subarray) * rows_per_subarray
    local_rows = range(base, base + rows_per_subarray)
    other = [row for row in local_rows if row not in (r1, r2)]
    n = len(lanes)
    changed = {row: np.zeros(n) for row in other}
    for _ in range(repeats):
        shared = np.stack([rng.random(bfd.columns) < 0.5 for rng in rngs])
        contents: dict[int, np.ndarray] = {}
        for row in local_rows:
            contents[row] = (shared if row in (r1, r2) else np.stack(
                [rng.random(bfd.columns) < 0.5 for rng in rngs]))
            bfd.write_row(bank, [row] * n, contents[row], lanes)
        bfd.mc.multi_row_activate(bank, [r1] * n, [r2] * n, lanes)
        for row in other:
            readback = bfd.read_row(bank, [row] * n, lanes)
            changed[row] += np.mean(readback != contents[row],
                                    axis=1) / repeats
    return [
        (r1, r2, *(row for row in other
                   if changed[row][index] > changed_threshold))
        for index in range(n)]


def discover_multi_row_pairs(fd: FracDram, *, bank: int = 0,
                             subarray: int = 0, max_rows: int = 16,
                             seed: int = 7,
                             ) -> dict[tuple[int, int], tuple[int, ...]]:
    """Scan all row pairs of a sub-array for multi-row activations.

    Returns the pairs that open more than themselves, mapped to the full
    opened set — the empirical (R1, R2) table the paper's authors built
    by hand, recovered without knowledge of the vendor's address
    scramble.
    """
    import itertools

    rng = np.random.default_rng(seed)
    rows_per_subarray = int(fd.device.geometry.rows_per_subarray)
    base = subarray * rows_per_subarray
    scan = min(max_rows, rows_per_subarray)
    discovered: dict[tuple[int, int], tuple[int, ...]] = {}
    for r1, r2 in itertools.combinations(range(base, base + scan), 2):
        opened = probe_opened_rows(fd, bank, r1, r2, rng)
        if len(opened) > 2:
            discovered[(r1, r2)] = opened
    return discovered
