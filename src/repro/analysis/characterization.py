"""Whole-device characterization reports (an extended Table I).

Collects, through the command interface only, the behavioural fingerprint
of a device: capability flags, PUF Hamming weight and repeatability,
in-memory-majority coverage, Frac ladder statistics, and the retention
category split.  The result renders as one table per device — the kind
of per-module appendix a characterization paper ships.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ops import FracDram
from ..errors import UnsupportedOperationError
from .retention import CellCategory, RetentionProfiler

__all__ = ["DeviceCharacterization", "characterize_device"]


@dataclass(frozen=True)
class DeviceCharacterization:
    """Behavioural fingerprint of one device."""

    group_id: str
    vendor: str
    frac_capable: bool
    three_row: bool
    four_row: bool
    puf_hamming_weight: float
    puf_repeatability: float       # 1 - intra-HD over two collections
    maj3_coverage: float | None    # None when three-row is unsupported
    fmaj_coverage: float | None    # None when four-row is unsupported
    frac_ladder_weights: tuple[float, ...]  # readback weight vs #Frac
    retention_categories: dict[str, float]

    def format_table(self) -> str:
        def cell(value) -> str:
            if value is None:
                return "n/a"
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        rows = [
            ("group / vendor", f"{self.group_id} / {self.vendor}"),
            ("Frac capable", "yes" if self.frac_capable else "no"),
            ("three-row activation", "yes" if self.three_row else "no"),
            ("four-row activation", "yes" if self.four_row else "no"),
            ("PUF Hamming weight", cell(self.puf_hamming_weight)),
            ("PUF repeatability", cell(self.puf_repeatability)),
            ("MAJ3 coverage", cell(self.maj3_coverage)),
            ("F-MAJ coverage", cell(self.fmaj_coverage)),
            ("Frac ladder weights",
             " ".join(f"{w:.2f}" for w in self.frac_ladder_weights)),
            ("retention [long/mono/other]",
             " / ".join(f"{self.retention_categories[key]:.2f}"
                        for key in (CellCategory.LONG,
                                    CellCategory.MONOTONIC,
                                    CellCategory.OTHER))),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}s}  {value}" for name, value in rows)


def _coverage(fd: FracDram, operation: str) -> float:
    patterns = [(1, 0, 0), (0, 1, 0), (0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)]
    correct = np.ones(fd.columns, dtype=bool)
    for pattern in patterns:
        operands = [np.full(fd.columns, bool(v)) for v in pattern]
        expected = sum(pattern) >= 2
        result = (fd.maj3(0, operands) if operation == "maj3"
                  else fd.f_maj(0, operands))
        correct &= result == expected
    return float(np.mean(correct))


def characterize_device(fd: FracDram, *, puf_row: int = 3,
                        n_fracs: tuple[int, ...] = (0, 1, 2, 3),
                        ) -> DeviceCharacterization:
    """Run the full behavioural fingerprint on one device."""
    group = fd.group

    # Frac ladder: readback one-weight after n Fracs from all-ones.
    ladder = []
    for n_frac in n_fracs:
        fd.fill_row(0, puf_row, True)
        if n_frac:
            fd.frac(0, puf_row, n_frac)
        ladder.append(float(np.mean(fd.read_row(0, puf_row))))
    frac_capable = ladder[-1] < 0.98

    # PUF statistics (only meaningful when Frac works).
    if frac_capable:
        responses = []
        for _ in range(2):
            fd.fill_row(0, puf_row, True)
            fd.frac(0, puf_row, 10)
            responses.append(fd.read_row(0, puf_row).astype(bool))
        hamming_weight = float(np.mean(responses[0]))
        repeatability = 1.0 - float(np.mean(responses[0] ^ responses[1]))
    else:
        hamming_weight = 1.0
        repeatability = 1.0

    maj3_coverage = None
    if fd.can_three_row:
        maj3_coverage = _coverage(fd, "maj3")
    fmaj_coverage = None
    if fd.can_four_row:
        try:
            fmaj_coverage = _coverage(fd, "f-maj")
        except UnsupportedOperationError:  # pragma: no cover - defensive
            fmaj_coverage = None

    profiler = RetentionProfiler(fd)
    profile = profiler.profile_row(0, puf_row, n_fracs=(0, 1, 2, 3))
    categories = profile.category_fractions()

    return DeviceCharacterization(
        group_id=group.group_id,
        vendor=group.vendor,
        frac_capable=frac_capable,
        three_row=fd.can_three_row,
        four_row=fd.can_four_row,
        puf_hamming_weight=hamming_weight,
        puf_repeatability=repeatability,
        maj3_coverage=maj3_coverage,
        fmaj_coverage=fmaj_coverage,
        frac_ladder_weights=tuple(ladder),
        retention_categories=categories,
    )
