"""Analysis utilities: statistics and retention-time profiling."""

from .retention import (
    N_BUCKETS,
    RETENTION_BUCKET_LABELS,
    RETENTION_PROBE_TIMES_S,
    CellCategory,
    RetentionProfile,
    RetentionProfiler,
    classify_cells,
)
from .characterization import DeviceCharacterization, characterize_device
from .leakage_tracer import CellLeakEstimate, LeakageTracer
from .reverse_engineering import (
    ThresholdEstimate,
    discover_multi_row_pairs,
    estimate_sense_thresholds,
    estimate_share_factor,
    probe_opened_rows,
)
from .stats import (
    empirical_cdf,
    fraction,
    hamming_distance,
    hamming_weight,
    mean_confidence_interval,
    pairwise_hamming_distances,
)

__all__ = [
    "CellCategory",
    "CellLeakEstimate",
    "DeviceCharacterization",
    "characterize_device",
    "LeakageTracer",
    "ThresholdEstimate",
    "discover_multi_row_pairs",
    "estimate_sense_thresholds",
    "estimate_share_factor",
    "probe_opened_rows",
    "N_BUCKETS",
    "RETENTION_BUCKET_LABELS",
    "RETENTION_PROBE_TIMES_S",
    "RetentionProfile",
    "RetentionProfiler",
    "classify_cells",
    "empirical_cdf",
    "fraction",
    "hamming_distance",
    "hamming_weight",
    "mean_confidence_interval",
    "pairwise_hamming_distances",
]
