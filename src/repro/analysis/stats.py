"""Statistical helpers shared by the experiments.

Implements the metrics the paper reports: normalized Hamming distance and
weight (PUF, Section VI-B), empirical CDFs (F-MAJ stability, Figure 10),
and mean confidence intervals (the shaded bands of Figure 9).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy import stats as scipy_stats

from ..errors import InsufficientDataError

__all__ = [
    "hamming_distance",
    "hamming_weight",
    "pairwise_hamming_distances",
    "empirical_cdf",
    "mean_confidence_interval",
    "fraction",
]


def _as_bits(bits: Sequence[bool]) -> np.ndarray:
    array = np.asarray(bits, dtype=bool)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D bit vector, got shape {array.shape}")
    return array


def hamming_distance(a: Sequence[bool], b: Sequence[bool]) -> float:
    """Normalized Hamming distance: differing bits / total bits."""
    bits_a, bits_b = _as_bits(a), _as_bits(b)
    if bits_a.shape != bits_b.shape:
        raise ValueError(f"length mismatch: {bits_a.shape} vs {bits_b.shape}")
    if bits_a.size == 0:
        raise InsufficientDataError("cannot compute HD of empty vectors")
    return float(np.mean(bits_a ^ bits_b))


def hamming_weight(bits: Sequence[bool]) -> float:
    """Fraction of one-bits."""
    array = _as_bits(bits)
    if array.size == 0:
        raise InsufficientDataError("cannot compute weight of an empty vector")
    return float(np.mean(array))


def pairwise_hamming_distances(responses: Sequence[Sequence[bool]]) -> np.ndarray:
    """All pairwise normalized HDs among a set of equal-length responses.

    Each response may also be a 2-D (challenges x bits) matrix; the HD is
    then taken per challenge and the result ordered pair-major,
    challenge-minor — the convention of the PUF inter-HD studies.  The
    pair enumeration is the upper triangle in row-major order, computed
    as one broadcast XOR instead of a Python pair loop.
    """
    arrays = [np.asarray(r, dtype=bool) for r in responses]
    if any(array.ndim not in (1, 2) for array in arrays):
        shape = next(a.shape for a in arrays if a.ndim not in (1, 2))
        raise ValueError(f"expected a 1-D bit vector, got shape {shape}")
    stacked = np.asarray(arrays)
    count = stacked.shape[0]
    if count < 2:
        raise InsufficientDataError("need at least two responses for pairwise HD")
    i, j = np.triu_indices(count, k=1)
    return np.mean(stacked[i] ^ stacked[j], axis=-1).reshape(-1)


def empirical_cdf(values: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fractions)."""
    array = np.sort(np.asarray(list(values), dtype=float))
    if array.size == 0:
        raise InsufficientDataError("cannot compute the CDF of no samples")
    fractions = np.arange(1, array.size + 1) / array.size
    return array, fractions


def mean_confidence_interval(values: Iterable[float],
                             confidence: float = 0.95,
                             ) -> tuple[float, float, float]:
    """(mean, lower, upper) of a t-distribution confidence interval.

    With a single sample the interval degenerates to the point estimate.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise InsufficientDataError("cannot compute a CI of no samples")
    mean = float(np.mean(array))
    if array.size == 1:
        return mean, mean, mean
    sem = scipy_stats.sem(array)
    if sem == 0:
        return mean, mean, mean
    lower, upper = scipy_stats.t.interval(
        confidence, df=array.size - 1, loc=mean, scale=sem)
    return mean, float(lower), float(upper)


def fraction(mask: Sequence[bool]) -> float:
    """Fraction of True entries in a boolean mask."""
    array = np.asarray(mask, dtype=bool)
    if array.size == 0:
        raise InsufficientDataError("cannot compute a fraction of no entries")
    return float(np.mean(array))
