"""Tracing the discharge curve of individual cells (Section VI-C).

Binary writes can only probe retention from the full-Vdd point; fractional
values add intermediate starting voltages, so the same cell can be timed
from several known levels and its exponential discharge reconstructed:

    v(t) = v0 * exp(-t / tau)   =>   retention(v0) = tau * ln(v0 / theta)

Given the retention times t_a, t_b measured from two starting voltages
v_a, v_b, both tau and the sensing threshold theta of the cell follow:

    tau   = (t_a - t_b) / ln(v_a / v_b)
    theta = v_a * exp(-t_a / tau)

The tracer measures retention by bisection over leak intervals, entirely
through the command interface; tests validate the recovered tau against
the simulator's ground-truth time constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ops import FracDram
from ..dram.parameters import ElectricalParams

__all__ = ["CellLeakEstimate", "LeakageTracer"]


@dataclass(frozen=True)
class CellLeakEstimate:
    """Recovered leakage parameters for the columns of one row."""

    tau_s: np.ndarray
    threshold_v: np.ndarray
    valid: np.ndarray  # columns with a usable two-level measurement

    @property
    def n_valid(self) -> int:
        return int(np.count_nonzero(self.valid))


class LeakageTracer:
    """Two-level discharge-curve reconstruction for one row."""

    def __init__(self, fd: FracDram, *, bank: int = 0, row: int = 1,
                 electrical: ElectricalParams | None = None) -> None:
        self.fd = fd
        self.bank = bank
        self.row = row
        self.electrical = electrical or ElectricalParams()

    # ------------------------------------------------------------------

    def _prepare(self, n_frac: int) -> None:
        self.fd.fill_row(self.bank, self.row, True)
        if n_frac > 0:
            self.fd.frac(self.bank, self.row, n_frac)
        self.fd.precharge_all()

    def measure_retention(self, n_frac: int, *, t_min_s: float = 60.0,
                          t_max_s: float = 86_400.0,
                          steps: int = 16) -> np.ndarray:
        """Per-column retention time from starting level ``n_frac``.

        Scans a geometric grid of leak intervals (each probe is a fresh
        prepare-leak-read pass; reads are destructive) and reports the
        geometric midpoint of the bracketing interval.  Columns alive at
        ``t_max_s`` report ``inf``; columns dead immediately report 0.
        """
        n_cols = self.fd.columns
        times = np.geomspace(t_min_s, t_max_s, steps)
        alive_at_zero = self._alive_after(n_frac, 0.0)
        retention = np.full(n_cols, np.inf)
        resolved = ~alive_at_zero
        retention[resolved] = 0.0
        previous_time = t_min_s / np.sqrt(times[1] / times[0])
        for probe in times:
            alive = self._alive_after(n_frac, float(probe))
            newly_dead = ~alive & ~resolved
            retention[newly_dead] = np.sqrt(previous_time * probe)
            resolved |= newly_dead
            previous_time = probe
            if resolved.all():
                break
        return retention

    def _alive_after(self, n_frac: int, wait_s: float) -> np.ndarray:
        self._prepare(n_frac)
        if wait_s > 0:
            self.fd.advance_time(wait_s)
        return self.fd.read_row(self.bank, self.row).astype(bool)

    # ------------------------------------------------------------------

    def trace(self, levels: tuple[int, int] = (0, 1), *,
              t_max_s: float = 86_400.0, steps: int = 12) -> CellLeakEstimate:
        """Recover (tau, threshold) per column from two Frac levels."""
        n_a, n_b = levels
        v_a = self.electrical.frac_residual(n_a)
        v_b = self.electrical.frac_residual(n_b)
        if not v_a > v_b:
            raise ValueError("levels must give distinct descending voltages")
        t_a = self.measure_retention(n_a, t_max_s=t_max_s, steps=steps)
        t_b = self.measure_retention(n_b, t_max_s=t_max_s, steps=steps)
        valid = (np.isfinite(t_a) & np.isfinite(t_b)
                 & (t_a > 0) & (t_b > 0) & (t_a > t_b))
        log_ratio = np.log(v_a / v_b)
        with np.errstate(divide="ignore", invalid="ignore"):
            tau = np.where(valid, (t_a - t_b) / log_ratio, np.nan)
            threshold = np.where(valid, v_a * np.exp(-t_a / tau), np.nan)
        return CellLeakEstimate(tau_s=tau, threshold_v=threshold, valid=valid)
