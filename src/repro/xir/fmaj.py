"""Fused fMAJ driver: in-memory majority through the xir executor.

:class:`FusedFracDram` keeps :class:`~repro.core.batched_ops.BatchedFracDram`'s
interface and semantics but routes the in-spec phases of ``maj3``/``f_maj``
(operand stores, frac preparation, the final readout) through one compiled
:mod:`repro.xir` program each.  The multi-row activation itself stays on the
batched engine: the decoder glitch is whole-sequence physics the compiler
deliberately refuses to lower (see :mod:`repro.xir.compile`), and it both
starts and ends precharged, so fused programs on either side see an idle
device and the command stream stays byte-identical to the batched driver.

Program shapes depend only on static fields (row count, ``init_ones``,
``n_frac``), so each flow compiles once and replays across trials.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.batched_ops import BatchedFracDram
from ..core.ops import FMajConfig, MultiRowPlan
from ..dram.batched import BatchedChip
from ..errors import ConfigurationError
from . import ir
from .executor import FusedRunner

__all__ = ["FusedFracDram"]


class FusedFracDram(BatchedFracDram):
    """Drop-in :class:`BatchedFracDram` with fused maj3/f_maj phases."""

    def __init__(self, device: BatchedChip) -> None:
        super().__init__(device)
        self._runner = FusedRunner(self.mc)

    def run_program(self, ops: Sequence[ir.Op], *,
                    rows: dict[str, Sequence[int]],
                    dts: dict[str, float] | None = None,
                    lanes: Sequence[int] | None = None,
                    data: dict[str, np.ndarray] | None = None,
                    ) -> list[np.ndarray]:
        """Run an arbitrary xir program on this driver's controller."""
        return self._runner.run(ops, rows=rows, dts=dts, lanes=lanes,
                                data=data)

    def maj3(self, plan: MultiRowPlan, operands: np.ndarray,
             lanes: Sequence[int]) -> np.ndarray:
        """Majority-of-three; ``operands`` is ``(L, 3, C)`` lane-major."""
        ops, rows, data = self._store_program(plan, operands, None, lanes)
        self._runner.run(ops, rows=rows, lanes=lanes, data=data)
        self.multi_row_activate(plan, lanes)
        return self._read_result(plan, 0, lanes)

    def f_maj(self, plan: MultiRowPlan, operands: np.ndarray,
              config: FMajConfig, lanes: Sequence[int]) -> np.ndarray:
        """F-MAJ via four-row activation; ``operands`` is ``(L, 3, C)``."""
        if not 0 <= config.frac_position < plan.n_rows:
            raise ConfigurationError(
                f"frac_position {config.frac_position} outside opened set")
        frac_row = plan.opened[config.frac_position]
        store_ops, rows, data = self._store_program(
            plan, operands, config.frac_position, lanes)
        ops = (ir.WriteRow(plan.bank, "fr", config.init_ones),)
        if config.n_frac > 0:
            ops += (ir.Frac(plan.bank, "fr", config.n_frac),)
        rows["fr"] = self._uniform(frac_row, lanes)
        self._runner.run(ops + store_ops, rows=rows, lanes=lanes, data=data)
        self.multi_row_activate(plan, lanes)
        result_position = 0 if config.frac_position != 0 else 1
        return self._read_result(plan, result_position, lanes)

    def _store_program(self, plan: MultiRowPlan, operands: np.ndarray,
                       skip_position: int | None, lanes: Sequence[int],
                       ) -> tuple[tuple[ir.Op, ...], dict[str, list[int]],
                                  dict[str, np.ndarray]]:
        operands = np.asarray(operands, dtype=bool)
        target_positions = [index for index in range(plan.n_rows)
                            if index != skip_position]
        expected = (len(lanes), len(target_positions), self.columns)
        if operands.shape != expected:
            raise ConfigurationError(
                f"operand shape {operands.shape} != {expected}")
        ops: tuple[ir.Op, ...] = ()
        rows: dict[str, list[int]] = {}
        data: dict[str, np.ndarray] = {}
        for slot, position in enumerate(target_positions):
            param = f"op{slot}"
            ops += (ir.WriteData(plan.bank, param),)
            rows[param] = self._uniform(plan.opened[position], lanes)
            data[param] = operands[:, slot]
        return ops, rows, data

    def _read_result(self, plan: MultiRowPlan, position: int,
                     lanes: Sequence[int]) -> np.ndarray:
        (read,) = self._runner.run(
            (ir.ReadRow(plan.bank, "rd"),),
            rows={"rd": self._uniform(plan.opened[position], lanes)},
            lanes=lanes)
        return read
