"""Fused retention profiling (fig6) on the xir pipeline.

:class:`FusedRetentionProfiler` keeps the batched profiler's bracketing
procedure — per-lane early exit, probe-time ordering, bucket math — and
swaps only the inner measurement pass (:meth:`_alive_after`) for one
compiled xir program per ``(n_frac, wait?)`` shape.  The program shapes
repeat across every probed row, probe time and lane cohort, so the
whole figure runs on a handful of cache-hit compilations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.retention import RETENTION_PROBE_TIMES_S, BatchedRetentionProfiler
from ..core.batched_ops import BatchedFracDram
from . import ir
from .executor import FusedRunner

__all__ = ["FusedRetentionProfiler"]


class FusedRetentionProfiler(BatchedRetentionProfiler):
    """Retention bracketing with the fused measurement pass."""

    def __init__(self, bfd: BatchedFracDram, *,
                 probe_times_s: Sequence[float] = RETENTION_PROBE_TIMES_S,
                 ) -> None:
        super().__init__(bfd, probe_times_s=probe_times_s)
        self._runner = FusedRunner(bfd.mc)

    def _alive_after(self, bank: int, sub_rows: Sequence[int], n_frac: int,
                     wait_s: float, lanes: Sequence[int]) -> np.ndarray:
        ops: list[ir.Op] = [ir.WriteRow(bank, "t", True)]
        if n_frac > 0:
            ops.append(ir.Frac(bank, "t", n_frac))
        if wait_s > 0:
            # Chips with command-spacing checks drop the Frac PRECHARGEs
            # and leave the row open; close everything before leaking
            # (same shape as the batched pass).
            ops.append(ir.PrechargeAll())
            ops.append(ir.Leak("w"))
        ops.append(ir.ReadRow(bank, "t"))
        reads = self._runner.run(ops, rows={"t": sub_rows},
                                 dts={"w": wait_s}, lanes=lanes)
        return reads[0]
