"""``repro.xir``: experiment-level IR, compiler and fused executor.

The pipeline (see ``docs/performance.md``):

1. **IR** (:mod:`repro.xir.ir`) — an experiment pass as a small program
   of whole-physics ops (``WriteRow``/``Frac``/``ReadRow``/
   ``PrechargeAll``/``Leak``/``RowCopy``) with structured
   ``Repeat``/``Sweep`` regions, rows and durations as named parameters.
2. **Compiler** (:mod:`repro.xir.compile`) — lowers a program through a
   symbolic replica of the batched engine's bank state machine into a
   flat phase-op schedule, hoisting plan compilation, lane-uniform
   counter deltas, trace-event shapes, spacing predictions and the RNG
   draw regions.  Memoized per program shape.
3. **Executor** (:mod:`repro.xir.executor`) — replays a compiled
   program as whole-batch NumPy kernels on
   :class:`~repro.dram.batched.BatchedSubArray` (the ``xir_*`` entry
   points), with per-region merged RNG pre-advancement.

The ``fused`` backend (:mod:`repro.backends.fused`) routes the fig6 and
fig11 hot paths through :class:`FusedRetentionProfiler` /
:class:`FusedFracPuf`; everything stays byte-identical to the
``scalar``/``batched``/``plan`` engines (conformance-gated in
``tests/backends``).
"""

from . import ir
from .compile import (
    LoweringError,
    clear_xir_cache,
    compile_program,
    xir_cache_info,
)
from .executor import FusedRunner
from .puf import FusedFracPuf
from .retention import FusedRetentionProfiler

__all__ = [
    "FusedFracPuf",
    "FusedRetentionProfiler",
    "FusedRunner",
    "LoweringError",
    "clear_xir_cache",
    "compile_program",
    "ir",
    "xir_cache_info",
]
