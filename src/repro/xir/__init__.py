"""``repro.xir``: experiment-level IR, compiler and fused executor.

The pipeline (see ``docs/performance.md``):

1. **IR** (:mod:`repro.xir.ir`) — an experiment pass as a small program
   of whole-physics ops (``WriteRow``/``WriteData``/``Frac``/
   ``ReadRow``/``PrechargeAll``/``Leak``/``RowCopy``) with structured
   ``Repeat``/``Sweep`` regions, rows and durations as named parameters.
2. **Compiler** (:mod:`repro.xir.compile`) — lowers a program through a
   symbolic replica of the batched engine's bank state machine into a
   flat phase-op schedule, hoisting plan compilation, lane-uniform
   counter deltas, trace-event shapes, spacing predictions and the RNG
   draw regions.  Memoized per program shape.  Physics it cannot prove
   equivalent (the multi-row activation glitch) raise
   :class:`XirLoweringError` naming the offending op.
3. **Executor** (:mod:`repro.xir.executor`) — replays a compiled
   program as whole-batch NumPy kernels on
   :class:`~repro.dram.batched.BatchedSubArray` (the ``xir_*`` entry
   points), with per-region merged RNG pre-advancement and store
   collapse for non-enforce lanes.

The ``fused`` backend (:mod:`repro.backends.fused`) routes the
experiments in :data:`XIR_LOWERED_EXPERIMENTS` through the fused
drivers (:class:`FusedRetentionProfiler`, :class:`FusedFracPuf`,
:class:`FusedFracDram`); every other experiment inherits the batched
engine unchanged.  Everything stays byte-identical to the
``scalar``/``batched``/``plan`` engines (conformance-gated in
``tests/backends``).
"""

from . import ir
from .compile import (
    LoweringError,
    XirLoweringError,
    clear_xir_cache,
    compile_program,
    xir_cache_info,
)
from .executor import FusedRunner
from .fmaj import FusedFracDram
from .puf import FusedFracPuf
from .retention import FusedRetentionProfiler

#: Experiments whose hot loops run through the fused xir executor when
#: ``--backend fused`` is selected.  Everything else inherits the
#: batched engine (same results — the fused path is a perf lane, not a
#: different model).  Pinned by ``tests/xir/test_registry.py``.
XIR_LOWERED_EXPERIMENTS = ("fig6", "fig9", "fig10", "fig11", "nist")

__all__ = [
    "FusedFracDram",
    "FusedFracPuf",
    "FusedRetentionProfiler",
    "FusedRunner",
    "LoweringError",
    "XIR_LOWERED_EXPERIMENTS",
    "XirLoweringError",
    "clear_xir_cache",
    "compile_program",
    "ir",
    "xir_cache_info",
]
