"""Experiment-level IR: whole physics phases as ops, sweeps as regions.

The batched engine (PRs 3-4) vectorized the *lane* axis but still walks
every experiment inner loop primitive-by-primitive through
:class:`~repro.controller.batched.BatchedSoftMC`: each ``run`` call
re-dispatches per timed command, re-scans per-lane bookkeeping lists in
``settle``, and re-derives telemetry per issue.  ``repro.xir`` lifts the
loop one level: an experiment pass is a small *program* of *experiment
ops* (:class:`WriteRow`, :class:`Frac`, :class:`ReadRow`,
:class:`PrechargeAll`, :class:`Leak`, :class:`RowCopy`, plus the
structured :class:`Repeat`/:class:`Sweep` regions), which the compiler
(:mod:`repro.xir.compile`) lowers into a flat list of *phase ops* —
``CHARGE_SHARE``, ``SENSE``, ``WRITE``, ``FREEZE``, ``READOUT``,
``GLITCH_OVERWRITE``, ``CLOSE``, ``LEAK`` — over the full
``(lanes, rows, cols)`` state.

Ops do not carry concrete rows: they name *parameters* (``rows="target"``,
``dt="wait"``) bound at execution time, so one compiled program replays
across every sweep point, row sample and lane batch.  See
``docs/performance.md`` for the pipeline walk-through and the
byte-identity argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

__all__ = [
    "Frac",
    "Leak",
    "Op",
    "PrechargeAll",
    "ReadRow",
    "Repeat",
    "RowCopy",
    "Sweep",
    "WriteData",
    "WriteRow",
    "flatten",
    "signature",
]


@dataclass(frozen=True)
class WriteRow:
    """In-spec ACT/WRITE/PRE storing a constant fill value."""

    bank: int
    rows: str
    value: bool


@dataclass(frozen=True)
class WriteData:
    """In-spec ACT/WRITE/PRE storing per-lane data bound at run time.

    Same command template as :class:`WriteRow`, but the stored plane is
    a run-time binding (``data[rows]``, one ``(lanes, columns)`` bool
    array) instead of a compile-time constant — the op the fMAJ flows
    need to store three distinct operand planes per trial without
    recompiling per payload.
    """

    bank: int
    rows: str


@dataclass(frozen=True)
class Frac:
    """``n_frac`` back-to-back Frac operations (ACT, interrupting PRE)."""

    bank: int
    rows: str
    n_frac: int


@dataclass(frozen=True)
class ReadRow:
    """Destructive whole-row read; emits one readout plane."""

    bank: int
    rows: str


@dataclass(frozen=True)
class PrechargeAll:
    """Close every bank (reach a known idle state)."""


@dataclass(frozen=True)
class Leak:
    """Stop command traffic for a bound duration (retention leakage)."""

    dt: str


@dataclass(frozen=True)
class RowCopy:
    """ComputeDRAM-style in-DRAM copy through the driven bit-lines."""

    bank: int
    src: str
    dst: str


@dataclass(frozen=True)
class Repeat:
    """Static repetition region: the body is flattened ``count`` times.

    The compiler unrolls a :class:`Repeat` before lowering, so repeated
    physics (e.g. the PUF's fixed Frac burst) costs one compile.
    """

    count: int
    body: tuple["Op", ...]

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("Repeat count must be >= 0")


@dataclass(frozen=True)
class Sweep:
    """Sweep region: compile the body once, rebind it per sweep point.

    A :class:`Sweep` never changes the lowered phase-op structure — only
    the bound rows/durations vary — which is what lets the executor
    replay one compiled body across every point
    (:meth:`repro.xir.executor.FusedRunner.run_sweep`).
    """

    body: tuple["Op", ...]


Op = Union[WriteRow, WriteData, Frac, ReadRow, PrechargeAll, Leak, RowCopy,
           Repeat, Sweep]

#: Ops that lower directly to phase ops (no region structure).
PRIMITIVE_OPS = (WriteRow, WriteData, Frac, ReadRow, PrechargeAll, Leak,
                 RowCopy)


def flatten(ops: Sequence[Op]) -> Iterator[Op]:
    """Unroll :class:`Repeat`/:class:`Sweep` regions into primitive ops."""
    for op in ops:
        if isinstance(op, Repeat):
            for _ in range(op.count):
                yield from flatten(op.body)
        elif isinstance(op, Sweep):
            yield from flatten(op.body)
        else:
            yield op


def signature(ops: Sequence[Op]) -> tuple:
    """Structural cache key of a program: op kinds and static fields.

    Two programs with the same signature lower to the same phase-op
    structure (rows and durations are bound later), so the signature is
    the compile-cache key (together with the lane class and timing).
    """
    return tuple(
        (type(op).__name__,) + tuple(
            getattr(op, name) for name in op.__dataclass_fields__)
        for op in flatten(ops))
