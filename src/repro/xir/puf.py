"""Fused Frac-PUF evaluation (fig11) on the xir pipeline.

:class:`FusedFracPuf` keeps :class:`~repro.puf.batched_puf
.BatchedFracPuf`'s challenge handling (reserved-row bookkeeping, noise
epochs, stacking) and fuses the evaluation hot path — row copy, the
``n_frac`` Frac burst, the destructive read — into compiled xir
programs.  :meth:`evaluate_many` chains the *entire* challenge set into
one program, inserting each sub-array's one-time reserved-row fill as an
:class:`~repro.xir.ir.WriteRow` at exactly the position the lazy
batched fill would run (first touch, in challenge order), so command
order and per-lane RNG draw order match the batched engine bit for bit.
A whole HD collection then costs one bind + one kernel replay, and the
program compiles once per fill pattern per process (epoch 0 carries the
fills; every later epoch reuses the fill-free shape).
"""

from __future__ import annotations

import numpy as np

from ..dram.batched import BatchedChip
from ..errors import ConfigurationError
from ..puf.batched_puf import BatchedFracPuf
from ..puf.frac_puf import PUF_N_FRAC, Challenge
from . import ir
from .executor import FusedRunner

__all__ = ["FusedFracPuf"]


class FusedFracPuf(BatchedFracPuf):
    """Challenge/response PUF with the fused evaluation pass."""

    def __init__(self, device: BatchedChip, *,
                 n_frac: int = PUF_N_FRAC) -> None:
        super().__init__(device, n_frac=n_frac)
        self._runner = FusedRunner(self.bfd.mc)
        self._ops: tuple[ir.Op, ...] | None = None

    def evaluate(self, challenge: Challenge) -> np.ndarray:
        """Response bits for every lane, ``(n_lanes, response_bits)``."""
        bank, row = challenge.bank, challenge.row
        reserved = self._reserved_row(bank, row)
        if self._ops is None or self._ops[0].bank != bank:
            self._ops = (
                ir.RowCopy(bank, "res", "row"),
                ir.Frac(bank, "row", self.n_frac),
                ir.ReadRow(bank, "row"),
            )
        n_lanes = self.n_lanes
        (response,) = self._runner.run(
            self._ops,
            rows={"res": [reserved] * n_lanes, "row": [row] * n_lanes})
        return response

    def evaluate_many(self, challenges: list[Challenge]) -> np.ndarray:
        """Stacked responses, ``(n_lanes, len(challenges), response_bits)``.

        The whole challenge set runs as one chained program; lane ``i``
        still equals the scalar ``FracPuf.evaluate_many`` for module
        ``i`` byte for byte (reserved-row fills land at their lazy
        first-touch positions, draws stay in per-lane stream order).
        """
        if not challenges:
            return np.empty((self.n_lanes, 0, self.response_bits), dtype=bool)
        rows_per_subarray = int(self.bfd.device.geometry.rows_per_subarray)
        n_lanes = self.n_lanes
        ops: list[ir.Op] = []
        rows: dict[str, list[int]] = {}
        prepared = set(self._prepared_reserved)
        for index, challenge in enumerate(challenges):
            bank, row = challenge.bank, challenge.row
            subarray = row // rows_per_subarray
            reserved = (subarray + 1) * rows_per_subarray - 1
            if reserved == row:
                raise ConfigurationError(
                    f"row {row} is the reserved initialization row; "
                    "challenge a different row")
            if (bank, subarray) not in prepared:
                ops.append(ir.WriteRow(bank, f"fill{index}", True))
                rows[f"fill{index}"] = [reserved] * n_lanes
                prepared.add((bank, subarray))
            ops.append(ir.RowCopy(bank, f"res{index}", f"row{index}"))
            ops.append(ir.Frac(bank, f"row{index}", self.n_frac))
            ops.append(ir.ReadRow(bank, f"row{index}"))
            rows[f"res{index}"] = [reserved] * n_lanes
            rows[f"row{index}"] = [row] * n_lanes
        reads = self._runner.run(tuple(ops), rows=rows)
        self._prepared_reserved = prepared
        return np.stack(reads, axis=1)
