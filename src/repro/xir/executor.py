"""Fused execution: replay a compiled program as whole-batch kernels.

:class:`FusedRunner` drives a :class:`~repro.dram.batched.BatchedChip`
through the phase-op schedule produced by :mod:`repro.xir.compile`,
bypassing the per-command Python dispatch of
:class:`~repro.controller.batched.BatchedSoftMC` entirely:

* Lanes are partitioned into *classes* by whether their decoder enforces
  command spacing (the only structural divergence the fig6/fig11 flows
  exhibit); each class runs one compiled program.  Per-lane physics and
  RNG streams are independent, so the split is bitwise invisible.
* Row parameters are bound once per run: per ``(param, bank)`` the class
  lanes are grouped by target sub-array, with physical rows, anti-cell
  polarity and output positions resolved into NumPy index arrays.
* All RNG draws of a region (between :class:`~repro.xir.ir.Leak`
  boundaries) are pre-drawn with **one** merged ``Generator.normal`` call
  per (lane, sub-array) run — bitwise identical to the per-step draws
  because the PCG64 ziggurat consumes the stream value-by-value and
  ``w * sigma + 0.0`` reproduces ``normal(0, sigma)`` exactly (including
  the ``-0.0`` normalization); zero-sigma draws consume nothing in both
  engines.
* Lane-uniform telemetry counters apply as one hoisted delta table;
  data-dependent counters (sense flips, drops, glitches) and trace
  events are produced inline, gated exactly as the batched engine gates
  them.
* For spacing-enforcing lanes the real ``_last_cmd`` bookkeeping is
  mirrored per command and checked against the compiler's prediction —
  a divergence raises instead of silently drifting from the batched
  engine.

The runner leaves the device's *structural* bookkeeping untouched (every
program must end with all banks idle, enforced at compile time), so
batched and fused calls can interleave freely on one device; cycle
counters and retention clocks advance identically.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from ..controller.batched import BatchedSoftMC
from ..dram.chip import MIN_COMMAND_SPACING_CYCLES
from ..dram.decoder import resolve_glitch
from ..dram.pcg_jump import _SKIP_MIN, skip_normals
from ..errors import AddressError, CommandSequenceError
from ..telemetry.registry import active as _telemetry_active
from . import ir
from .compile import CompiledProgram, LoweringError, PrimSpec, compile_program

__all__ = ["FusedRunner"]


class _Group:
    """One (param, bank, sub-array) lane group with resolved indices."""

    __slots__ = ("cell", "lanes", "lane_arr", "pos", "rows_mat", "anti",
                 "logical", "physical")

    def __init__(self, cell, lanes, positions, logical, physical, anti):
        self.cell = cell
        self.lanes = lanes
        self.lane_arr = np.asarray(lanes, dtype=np.intp)
        self.pos = np.asarray(positions, dtype=np.intp)
        self.rows_mat = np.asarray(physical, dtype=np.intp)[:, None]
        self.anti = np.asarray(anti, dtype=bool)
        self.logical = logical
        self.physical = physical


class _FastPrim:
    """Container for the compacted telemetry-off action stream."""

    __slots__ = ("op", "actions")

    def __init__(self, actions):
        self.op = "leak"  # suppresses (unreachable) trace emission
        self.actions = actions


class _PairGroup:
    """One glitch-overwrite lane group: uniform opened-row count."""

    __slots__ = ("cell", "lane_arr", "opened_mat", "events")

    def __init__(self, cell, lanes, opened_rows, events):
        self.cell = cell
        self.lane_arr = np.asarray(lanes, dtype=np.intp)
        self.opened_mat = np.asarray(opened_rows, dtype=np.intp)
        self.events = events


def _sigma_column(n_rows: int, sigma_entries) -> np.ndarray:
    """Per-row scale factors for one region's flat draw matrix.

    Rows no draw run touches (the trailing shared-zeros row, skipped
    spans) get 1.0 — they hold exact ``+0.0`` and must keep it.
    """
    column = np.ones((n_rows, 1))
    for start, sigmas in sigma_entries:
        column[start:start + len(sigmas), 0] = sigmas
    return column


class FusedRunner:
    """Execute compiled experiment programs on a batched device."""

    def __init__(self, mc: BatchedSoftMC) -> None:
        self.mc = mc
        self.device = mc.device
        se = int(mc.electrical.sense_enable_cycles)
        for group in self.device.groups:
            if int(group.electrical.sense_enable_cycles) != se:
                raise LoweringError(
                    "fused programs need a lane-uniform sense-enable "
                    "window (the compiled schedule bakes it in)")
        # Per (lane, bank, sub, src, dst) decoder-glitch resolution; the
        # profile is frozen at fabrication, so the row-copy binding of a
        # repeated challenge is a dict hit.
        self._glitch_cache: dict[tuple, tuple[int, ...]] = {}
        # Bindings + prefetch schedules keyed by (program, lanes, rows):
        # everything they hold — physical rows, anti polarity, sigmas,
        # glitch sets — is frozen at fabrication, so a repeated binding
        # (every sweep probe of fig6, every challenge epoch of fig11)
        # skips all per-run structure building.  RNG generators are NOT
        # cached (``reseed_noise`` swaps them); they are looked up per
        # prefetch.
        self._bind_cache: OrderedDict[tuple, tuple] = OrderedDict()
        self._fast_cache: dict[int, tuple] = {}
        self._flat_cells = [cell for bank_cells in self.device.cells
                            for cell in bank_cells]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, ops: Sequence[ir.Op], *,
            rows: dict[str, Sequence[int]],
            dts: dict[str, float] | None = None,
            lanes: Sequence[int] | None = None,
            data: dict[str, np.ndarray] | None = None) -> list[np.ndarray]:
        """Run ``ops`` on ``lanes``; one ``(len(lanes), C)`` array per read.

        ``rows[param]`` gives each lane's logical bank row (aligned with
        ``lanes``); ``dts[param]`` binds :class:`~repro.xir.ir.Leak`
        durations in seconds; ``data[param]`` binds each
        :class:`~repro.xir.ir.WriteData` plane as a ``(len(lanes), C)``
        bool array (aligned with ``lanes``, like ``rows``).
        """
        ops = tuple(ops)
        if lanes is None:
            lanes = self.mc.all_lanes()
        dts = dts or {}
        planes = {param: np.asarray(plane, dtype=bool)
                  for param, plane in (data or {}).items()}
        # The sub-arrays keep exact open/pending-precharge counts; when
        # every count is zero no lane can be busy, skipping the per-lane
        # all-cells scan on the (overwhelmingly common) idle-device path.
        if any(cell._n_open or cell._n_pre for cell in self._flat_cells):
            for lane in lanes:
                if not self.device.lane_is_idle(lane):
                    raise CommandSequenceError(
                        "fused programs require an idle device (close open "
                        "rows before handing the device to the runner)")
        out: list[np.ndarray] | None = None
        steps = []
        for enforce, class_lanes, class_pos in self._split(lanes):
            program = compile_program(
                ops, enforce=enforce, timing=self.mc.timing,
                electrical=self.mc.electrical, n_banks=self.device.n_banks)
            if out is None:
                out = [np.empty((len(lanes), self.device.geometry.columns),
                                dtype=bool)
                       for _ in range(program.n_reads)]
            steps.append(self._run_class(program, class_lanes, class_pos,
                                         rows, dts, planes, out))
        # Lane classes advance in lockstep: every class pauses at each
        # Leak boundary (the op list is shared, so the boundaries line
        # up) and time advances ONCE for all lanes — halving the leak
        # machinery's per-call cost on mixed fleets while staying
        # per-lane identical to separate advances.
        lanes_list = [int(lane) for lane in lanes]
        while steps:
            dt_params = [next(gen, None) for gen in steps]
            live = [param for param in dt_params if param is not None]
            if not live:
                break
            if len(live) != len(steps) or len(set(live)) != 1:
                raise CommandSequenceError(  # pragma: no cover - defensive
                    "lane classes diverged at a leak boundary")
            self.device.advance_time(float(dts[live[0]]), lanes_list)
        return out if out is not None else []

    def run_sweep(self, body: Sequence[ir.Op],
                  points: Sequence[dict], *,
                  lanes: Sequence[int] | None = None) -> list[list[np.ndarray]]:
        """Run a :class:`~repro.xir.ir.Sweep` body once per point.

        Each point is ``{"rows": {...}}`` with an optional ``"dts"``;
        compilation happens once (the sweep body's signature is
        point-independent) and every point replays the cached program.
        """
        ops = (ir.Sweep(tuple(body)),)
        return [self.run(ops, rows=point["rows"], dts=point.get("dts"),
                         data=point.get("data"), lanes=lanes)
                for point in points]

    # ------------------------------------------------------------------
    # lane classes and parameter binding
    # ------------------------------------------------------------------

    def _split(self, lanes: Sequence[int]
               ) -> list[tuple[bool, list[int], list[int]]]:
        enforce = self.device._enforce
        split: dict[bool, tuple[list[int], list[int]]] = {
            False: ([], []), True: ([], [])}
        for position, lane in enumerate(lanes):
            bucket = split[bool(enforce[lane])]
            bucket[0].append(int(lane))
            bucket[1].append(position)
        return [(flag, class_lanes, class_pos)
                for flag in (False, True)
                for class_lanes, class_pos in (split[flag],)
                if class_lanes]

    _BIND_CACHE_CAPACITY = 128

    def _binding(self, program: CompiledProgram, class_lanes: list[int],
                 class_pos: list[int], rows: dict[str, Sequence[int]]):
        """Cached (bindings, class_logical, pair_bindings, schedule)."""
        key_rows = []
        for param, _bank in program.param_banks:
            try:
                values = rows[param]
            except KeyError:
                raise CommandSequenceError(
                    f"missing row binding for parameter {param!r}") from None
            key_rows.append(tuple(int(values[position])
                                  for position in class_pos))
        key = (program.token, tuple(class_lanes), tuple(class_pos),
               tuple(key_rows))
        cached = self._bind_cache.get(key)
        if cached is not None:
            self._bind_cache.move_to_end(key)
            return cached
        bindings, class_logical, pair_bindings = self._bind(
            program, class_lanes, class_pos, rows)
        schedule = self._schedule(program, bindings, class_lanes)
        cached = (bindings, class_logical, pair_bindings, schedule)
        self._bind_cache[key] = cached
        if len(self._bind_cache) > self._BIND_CACHE_CAPACITY:
            self._bind_cache.popitem(last=False)
        return cached

    def _bind(self, program: CompiledProgram, class_lanes: list[int],
              class_pos: list[int], rows: dict[str, Sequence[int]]):
        device = self.device
        geometry = device.geometry
        rps = geometry.rows_per_subarray
        bindings: dict[tuple[str, int], list[_Group]] = {}
        class_logical: dict[str, list[int]] = {}
        for param, bank in program.param_banks:
            values = rows[param]
            logical_rows: list[int] = []
            by_sub: dict[int, list[tuple[int, int, int, int]]] = {}
            for lane, position in zip(class_lanes, class_pos):
                row = int(values[position])
                if not 0 <= row < geometry.rows_per_bank:
                    raise AddressError(
                        f"row {row} out of range for bank with "
                        f"{geometry.rows_per_bank} rows")
                logical_rows.append(row)
                sub, local = divmod(row, rps)
                by_sub.setdefault(sub, []).append((lane, position, row, local))
            class_logical[param] = logical_rows
            groups = []
            for sub, entries in by_sub.items():
                groups.append(_Group(
                    cell=device.cells[bank][sub],
                    lanes=[entry[0] for entry in entries],
                    positions=[entry[1] for entry in entries],
                    logical=[entry[2] for entry in entries],
                    physical=[device._phys_rows[lane][local]
                              for lane, _, _, local in entries],
                    anti=[device._anti_rows[lane][local]
                          for lane, _, _, local in entries]))
            bindings[(param, bank)] = groups
        pair_bindings = {
            pair: self._bind_pair(pair, class_lanes, class_pos, rows)
            for pair in program.pairs}
        return bindings, class_logical, pair_bindings

    def _bind_pair(self, pair: tuple[str, str, int], class_lanes: list[int],
                   class_pos: list[int], rows: dict[str, Sequence[int]]
                   ) -> list[_PairGroup]:
        src_param, dst_param, bank = pair
        device = self.device
        rps = device.geometry.rows_per_subarray
        by_shape: dict[tuple[int, int], tuple[list, list, list]] = {}
        for lane, position in zip(class_lanes, class_pos):
            src = int(rows[src_param][position])
            dst = int(rows[dst_param][position])
            src_sub, src_local = divmod(src, rps)
            dst_sub, dst_local = divmod(dst, rps)
            if src_sub != dst_sub:
                raise LoweringError(
                    f"row copy {src}->{dst} crosses sub-arrays; the "
                    "decoder glitch only opens rows of one sub-array")
            cell = device.cells[bank][src_sub]
            src_phys = device._phys_rows[lane][src_local]
            dst_phys = device._phys_rows[lane][dst_local]
            key = (lane, bank, src_sub, src_phys, dst_phys)
            opened = self._glitch_cache.get(key)
            if opened is None:
                glitch_rows = resolve_glitch(
                    cell._decoders[lane], src_phys, dst_phys, cell.n_rows)
                opened = tuple(dict.fromkeys((src_phys, *glitch_rows)))
                self._glitch_cache[key] = opened
            group = by_shape.setdefault((src_sub, len(opened)), ([], [], []))
            group[0].append(lane)
            group[1].append(opened)
            group[2].append((lane, [src_phys], dst_phys, list(opened)))
        return [
            _PairGroup(cell=device.cells[bank][sub], lanes=lanes,
                       opened_rows=opened_rows, events=events)
            for (sub, _), (lanes, opened_rows, events) in by_shape.items()]

    # ------------------------------------------------------------------
    # RNG pre-advancement
    # ------------------------------------------------------------------

    def _schedule(self, program: CompiledProgram, bindings,
                  class_lanes: list[int]):
        """Precompute each region's draw plans: lane runs + gather maps.

        All of a region's scaled draws land in one flat ``(rows, C)``
        matrix.  Per lane, maximal runs of consecutive draw segments
        hitting the same sub-array merge into one ``normal(0, 1, C * n)``
        call filling a contiguous row span (the PCG64 ziggurat consumes
        the stream value-by-value, so one merged draw equals n sequential
        ones).  Zero-sigma segments (and charge shares on jitter-free
        sub-arrays) draw nothing, exactly like
        :class:`~repro.dram.rng.NoiseSource`: their gather rows point at
        the matrix's trailing all-zeros row.  Each segment's per-group
        lane buffer is then a single fancy-index gather.

        Each region yields TWO plans.  The *full* plan materializes every
        draw (the telemetry path observes charge-share snapshots and
        sense decisions, so nothing is dead).  The *fast* plan — used
        with the compacted store-action stream — drops the segments the
        compiler marked dead (write-row cycles whose physics is fully
        overwritten) and replaces their draws with ``("skip", ...)``
        runs: the stream positions still advance exactly as if the
        values had been drawn (:func:`~repro.dram.pcg_jump.skip_normals`),
        but nothing is generated, scaled or stored.
        """
        regions = []
        for region in program.regions:
            entries: dict[int, list] = {lane: [] for lane in class_lanes}
            slots: list[list[np.ndarray | None]] = []
            fast_slots: list[list[np.ndarray | None]] = []
            for kind, bank, param, dead in region:
                seg_slots: list[np.ndarray | None] = []
                seg_fast: list[np.ndarray | None] = []
                for group in bindings[(param, bank)]:
                    if kind == "sense" or group.cell._jitter_any:
                        index_arr = np.empty(len(group.lanes), dtype=np.intp)
                        fast_arr = (None if dead else np.empty(
                            len(group.lanes), dtype=np.intp))
                        sigma_vec = (group.cell._noise_sigma
                                     if kind == "sense"
                                     else group.cell._jitter_sigma)
                        for offset, lane in enumerate(group.lanes):
                            entries[lane].append(
                                (group.cell, float(sigma_vec[lane]),
                                 index_arr, offset, dead, fast_arr))
                    else:
                        index_arr = None
                        fast_arr = None
                    seg_slots.append(index_arr)
                    seg_fast.append(fast_arr)
                slots.append(seg_slots)
                if not dead:
                    fast_slots.append(seg_fast)

            runs = []
            run_sigmas: list[tuple[int, list[float]]] = []
            row_counter = 0
            for lane in class_lanes:
                lane_entries = entries[lane]
                index = 0
                while index < len(lane_entries):
                    cell = lane_entries[index][0]
                    if lane_entries[index][1] <= 0:
                        # zero-sigma: no draw; gather the shared zeros row
                        lane_entries[index][2][lane_entries[index][3]] = -1
                        index += 1
                        continue
                    start = row_counter
                    sigmas: list[float] = []
                    while (index < len(lane_entries)
                           and lane_entries[index][0] is cell):
                        _, sigma, index_arr, offset, _, _ = (
                            lane_entries[index])
                        if sigma > 0:
                            sigmas.append(sigma)
                            index_arr[offset] = row_counter
                            row_counter += 1
                        else:
                            index_arr[offset] = -1
                        index += 1
                    runs.append(("draw", cell, lane, start, row_counter))
                    run_sigmas.append((start, sigmas))

            # Fast runs merge whole same-cell segments — dead and live
            # draws together — into ONE ``standard_normal(out=...)``
            # call per lane filling the flat matrix in place
            # (re-splitting or re-merging a draw is stream-equivalent:
            # value-by-value consumption).  Dead draws inside a merged
            # segment are materialized — the generator produces their
            # values either way, so parking them in rows no gather
            # points at is free and saves the per-lane gather dispatch.
            # Dead spans big enough for :func:`skip_normals`' jump path
            # (>= _SKIP_MIN draws) stay split so they are never
            # materialized.
            columns = self.device.geometry.columns
            fast_runs = []
            fast_sigmas: list[tuple[int, list[float]]] = []
            fast_counter = 0
            for lane in class_lanes:
                lane_entries = entries[lane]
                index = 0
                while index < len(lane_entries):
                    cell = lane_entries[index][0]
                    segment = []
                    while (index < len(lane_entries)
                           and lane_entries[index][0] is cell):
                        segment.append(lane_entries[index])
                        index += 1
                    n_dead = sum(1 for entry in segment
                                 if entry[4] and entry[1] > 0)
                    n_live = sum(1 for entry in segment
                                 if not entry[4] and entry[1] > 0)
                    if n_live and n_dead and n_dead * columns < _SKIP_MIN:
                        # Mixed segment, dead span too small to jump:
                        # one merged draw covering dead rows too.
                        start = fast_counter
                        sigmas = []
                        for _, sigma, _arr, offset, dead, fast_arr in (
                                segment):
                            if sigma > 0:
                                if not dead:
                                    fast_arr[offset] = fast_counter
                                sigmas.append(sigma)
                                fast_counter += 1
                            elif not dead:
                                fast_arr[offset] = -1
                        fast_runs.append(
                            ("draw", cell, lane, start, fast_counter))
                        fast_sigmas.append((start, sigmas))
                        continue
                    # Pure segments (and jump-eligible dead spans):
                    # alternate skip runs for dead, draw runs for live.
                    cursor = 0
                    while cursor < len(segment):
                        if segment[cursor][4]:
                            count = 0
                            while (cursor < len(segment)
                                   and segment[cursor][4]):
                                if segment[cursor][1] > 0:
                                    count += 1
                                cursor += 1
                            if count:
                                fast_runs.append(
                                    ("skip", cell, lane, count))
                        else:
                            start = fast_counter
                            sigmas = []
                            while (cursor < len(segment)
                                   and not segment[cursor][4]):
                                _, sigma, _arr, offset, _, fast_arr = (
                                    segment[cursor])
                                if sigma > 0:
                                    fast_arr[offset] = fast_counter
                                    sigmas.append(sigma)
                                    fast_counter += 1
                                else:
                                    fast_arr[offset] = -1
                                cursor += 1
                            if fast_counter > start:
                                fast_runs.append(
                                    ("draw", cell, lane, start,
                                     fast_counter))
                                fast_sigmas.append((start, sigmas))
            regions.append(
                ((row_counter + 1, runs, slots,
                  _sigma_column(row_counter + 1, run_sigmas)),
                 (fast_counter + 1, fast_runs, fast_slots,
                  _sigma_column(fast_counter + 1, fast_sigmas))))
        return regions

    def _prefetch(self, region_schedule, fast: bool):
        """Draw one region per its precomputed plan.

        One ``standard_normal(out=flat_rows)`` call per lane run — the
        raw draws land straight in the flat matrix, then one whole-
        matrix multiply by the precomputed per-row sigma column scales
        everything at once (elementwise identical to scaling each
        C-chunk separately, and ``standard_normal`` == ``normal(0, 1)``
        on the stream and on every value except ``-0.0``); the single
        trailing ``+ 0.0`` normalizes ``-0.0`` exactly like the
        per-chunk form.  ``skip`` runs (fast plan only) advance the
        lane's stream past dead draws without materializing them.
        Returns the flat matrix plus the region's per-segment gather
        maps; callers gather lazily at each kernel site, so a Frac
        burst can pull all of its iterations in one fancy index.
        """
        columns = self.device.geometry.columns
        n_rows, runs, slots, sigma_column = region_schedule[
            1 if fast else 0]
        flat = np.zeros((n_rows, columns))
        flat_1d = flat.reshape(-1)
        for run in runs:
            if run[0] == "draw":
                _, cell, lane, start, stop = run
                cell._noises[lane].rng.standard_normal(
                    out=flat_1d[start * columns:stop * columns])
            else:  # ("skip", cell, lane, count)
                _, cell, lane, count = run
                skip_normals(cell._noises[lane].rng, columns * count)
        flat *= sigma_column
        flat += 0.0
        return flat, slots

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _fast_prims(self, program: CompiledProgram):
        """The telemetry-off action stream, compacted and cached.

        Command events whose only job is tracing are dropped (spacing
        mirrors stay — they mutate real bookkeeping), each Frac op's
        (charge-share, freeze) ladder collapses into one ``burst``
        action, and each ``store``-marked write prim collapses into one
        ``store`` action (its open/sense/close physics is fully
        overwritten; the paired dead draws are jumped by the fast
        prefetch plan).  Stream compaction: per-lane RNG consumption and
        every observable state transition are untouched, so results stay
        byte-identical.
        """
        cached = self._fast_cache.get(program.token)
        if cached is not None:
            return cached
        flat = []
        for prim in program.prims:
            if prim.store:
                # store prims only exist on spacing-free lane classes,
                # so every command event they carry is trace-only.
                flat.append(("store", prim.bank, prim.rows_param,
                             prim.value))
                continue
            for action in prim.actions:
                if action[0] == "cmd" and not action[1].spacing:
                    continue
                flat.append(action)
        compact = []
        index = 0
        while index < len(flat):
            action = flat[index]
            if (action[0] == "cs" and index + 1 < len(flat)
                    and flat[index + 1][:3] == ("freeze",) + action[1:3]):
                bank, param = action[1], action[2]
                count = 0
                while (index + 1 < len(flat)
                       and flat[index][:3] == ("cs", bank, param)
                       and flat[index + 1][:3] == ("freeze", bank, param)):
                    count += 1
                    index += 2
                compact.append(("burst", bank, param, count))
            else:
                compact.append(action)
                index += 1
        cached = (_FastPrim(tuple(compact)),)
        self._fast_cache[program.token] = cached
        return cached

    def _label(self, prim: PrimSpec, class_logical) -> str:
        if prim.op == "precharge-all":
            return "precharge-all"
        if prim.op == "row-copy":
            return (f"row-copy b{prim.bank} "
                    f"{class_logical[prim.src_param][0]}"
                    f"->{class_logical[prim.dst_param][0]}")
        row0 = class_logical[prim.rows_param][0]
        if prim.op == "frac":
            return f"frac x{prim.n_frac} b{prim.bank} r{row0}"
        return f"{prim.op} b{prim.bank} r{row0}"

    def _run_class(self, program: CompiledProgram, class_lanes: list[int],
                   class_pos: list[int], rows, dts, planes, out):
        """Generator: run one lane class, yielding the dt parameter at
        every Leak boundary so :meth:`run` can advance all classes'
        lanes in one ``advance_time`` call."""
        device = self.device
        mc = self.mc
        columns = device.geometry.columns
        telemetry = _telemetry_active()
        tracer = telemetry.tracer if telemetry is not None else None
        for dt_param in program.dt_params:
            if dt_param not in dts:
                raise CommandSequenceError(
                    f"missing duration binding for parameter {dt_param!r}")
        bindings, class_logical, pair_bindings, schedule = self._binding(
            program, class_lanes, class_pos, rows)
        base = mc.cycles.copy()

        if telemetry is not None:
            n_class = len(class_lanes)
            for name, delta in program.deltas:
                telemetry.count(name, delta * n_class)
            prims = program.prims
            fast = False
        else:
            prims = self._fast_prims(program)
            fast = True

        def plane_for(param):
            try:
                return planes[param]
            except KeyError:
                raise CommandSequenceError(
                    f"missing data binding for parameter {param!r}"
                ) from None

        region_index = 0
        flat, slots = self._prefetch(schedule[0], fast)
        seg_cursor = 0
        snap_store: dict[int, list] = {}
        dec_store: dict[int, list] = {}
        read_index = 0

        for prim in prims:
            if tracer is not None and prim.op != "leak":
                label = self._label(prim, class_logical)
                for lane in class_lanes:
                    telemetry.emit("sequence", {
                        "label": label,
                        "op": prim.op,
                        "start_cycle": int(base[lane]) + prim.start,
                        "duration": prim.duration,
                        "n_commands": prim.n_commands,
                    })
            for action in prim.actions:
                tag = action[0]
                if tag == "cmd":
                    event = action[1]
                    if tracer is not None:
                        violations = list(event.violations)
                        logical = (class_logical[event.row_param]
                                   if event.row_param is not None else None)
                        for index, lane in enumerate(class_lanes):
                            telemetry.emit("command", {
                                "cmd": event.kind,
                                "bank": event.bank,
                                "row": (logical[index]
                                        if logical is not None else None),
                                "cycle": int(base[lane]) + event.offset,
                                "violations": violations,
                            })
                    for check in event.spacing:
                        self._mirror_spacing(check, class_lanes, base,
                                             telemetry)
                elif tag == "cs":
                    _, bank, param, need_snap = action
                    seg_slots = slots[seg_cursor]
                    seg_cursor += 1
                    want = need_snap or telemetry is not None
                    snaps = []
                    for group, index_arr in zip(bindings[(param, bank)],
                                                seg_slots):
                        snaps.append(group.cell.xir_charge_share(
                            group.lanes, group.lane_arr, group.rows_mat,
                            (None if index_arr is None
                             else flat[index_arr][:, None, :]),
                            want))
                    snap_store[bank] = snaps
                elif tag == "burst":
                    _, bank, param, n_burst = action
                    burst_slots = slots[seg_cursor:seg_cursor + n_burst]
                    seg_cursor += n_burst
                    for group_index, group in enumerate(
                            bindings[(param, bank)]):
                        if group.cell._jitter_any:
                            draws = flat[np.stack(
                                [burst_slots[i][group_index]
                                 for i in range(n_burst)], axis=1)]
                        else:
                            draws = None
                        group.cell.xir_frac_burst(
                            group.lanes, group.lane_arr, group.rows_mat,
                            draws, n_burst)
                elif tag == "sense":
                    _, bank, param = action
                    seg_slots = slots[seg_cursor]
                    seg_cursor += 1
                    decisions = []
                    groups = bindings[(param, bank)]
                    for group_index, (group, index_arr) in enumerate(
                            zip(groups, seg_slots)):
                        decision = group.cell.xir_sense(
                            group.lane_arr, group.rows_mat, flat[index_arr])
                        decisions.append(decision)
                        if telemetry is not None:
                            snap = snap_store[bank][group_index]
                            for offset, lane in enumerate(group.lanes):
                                flips = int(np.sum(
                                    (snap[offset] > 0.5) != decision[offset]))
                                telemetry.count("dram.sense_fired")
                                telemetry.count("dram.sense_flips", flips)
                                if tracer is not None:
                                    telemetry.emit("sense", {
                                        "bank": group.cell.origins[lane][0],
                                        "subarray": group.cell.origins[lane][1],
                                        "rows": [int(group.physical[offset])],
                                        "ones": int(np.sum(decision[offset])),
                                        "flips": flips,
                                    })
                    dec_store[bank] = decisions
                elif tag == "write":
                    _, bank, param, value = action
                    groups = bindings[(param, bank)]
                    buffers = []
                    for group in groups:
                        bits = np.broadcast_to(
                            (group.anti != bool(value))[:, None],
                            (len(group.lanes), columns))
                        group.cell.xir_write(group.lane_arr, group.rows_mat,
                                             bits)
                        buffers.append(bits)
                    dec_store[bank] = buffers
                elif tag == "write-data":
                    _, bank, param = action
                    plane = plane_for(param)
                    buffers = []
                    for group in bindings[(param, bank)]:
                        bits = plane[group.pos] != group.anti[:, None]
                        group.cell.xir_write(group.lane_arr, group.rows_mat,
                                             bits)
                        buffers.append(bits)
                    dec_store[bank] = buffers
                elif tag == "store":
                    # Collapsed write-row cycle (telemetry-off stream):
                    # one kernel stores the written values, marks the
                    # rows refreshed and re-idles the bit-lines — the
                    # net effect of the full open/sense/write/close walk.
                    _, bank, param, value = action
                    plane = plane_for(param) if value is None else None
                    for group in bindings[(param, bank)]:
                        if plane is None:
                            bits = np.broadcast_to(
                                (group.anti != bool(value))[:, None],
                                (len(group.lanes), columns))
                        else:
                            bits = plane[group.pos] != group.anti[:, None]
                        group.cell.xir_store(group.lane_arr, group.rows_mat,
                                             bits)
                elif tag == "readout":
                    _, bank, param = action
                    target = out[read_index]
                    read_index += 1
                    for group, decision in zip(bindings[(param, bank)],
                                               dec_store[bank]):
                        target[group.pos] = np.not_equal(
                            decision, group.anti[:, None])
                elif tag == "freeze":
                    _, bank, param = action
                    groups = bindings[(param, bank)]
                    for group_index, group in enumerate(groups):
                        group.cell.xir_freeze(
                            group.lane_arr, group.rows_mat,
                            snap_store[bank][group_index])
                        if telemetry is not None:
                            for offset, lane in enumerate(group.lanes):
                                telemetry.count("dram.frac_freeze")
                                if tracer is not None:
                                    telemetry.emit("frac_freeze", {
                                        "bank": group.cell.origins[lane][0],
                                        "subarray": group.cell.origins[lane][1],
                                        "rows": [int(group.physical[offset])],
                                    })
                elif tag == "close":
                    _, bank, param = action
                    for group in bindings[(param, bank)]:
                        group.cell.xir_close(group.lane_arr)
                elif tag == "glitch":
                    _, bank, src_param, dst_param = action
                    for pair_group in pair_bindings[(src_param, dst_param,
                                                     bank)]:
                        if telemetry is not None:
                            cell = pair_group.cell
                            for lane, previous, requested, opened in (
                                    pair_group.events):
                                telemetry.count("dram.glitch_overwrite")
                                if tracer is not None:
                                    telemetry.emit("glitch", {
                                        "bank": cell.origins[lane][0],
                                        "subarray": cell.origins[lane][1],
                                        "previous": previous,
                                        "requested": requested,
                                        "opened": opened,
                                        "overwrite": True,
                                    })
                        pair_group.cell.xir_overwrite(
                            pair_group.lane_arr, pair_group.opened_mat)
                elif tag == "leak":
                    yield action[1]
                    region_index += 1
                    seg_cursor = 0
                    flat, slots = self._prefetch(schedule[region_index],
                                                 fast)
                else:  # pragma: no cover - defensive
                    raise CommandSequenceError(f"unknown phase op {tag!r}")

        lane_arr = np.asarray(class_lanes, dtype=np.intp)
        mc.cycles[lane_arr] = base[lane_arr] + program.duration

    def _mirror_spacing(self, check, class_lanes: list[int],
                        base: np.ndarray, telemetry) -> None:
        """Replay the device's command-spacing bookkeeping for one check.

        The compiled schedule already decided allowed/dropped; a lane
        whose real history disagrees would execute different physics, so
        divergence is a hard error, not a silent fallback.
        """
        device = self.device
        for lane in class_lanes:
            cycle = int(base[lane]) + check.offset
            last = device._last_cmd[lane].get(check.bank)
            dropped = (last is not None
                       and cycle - last < MIN_COMMAND_SPACING_CYCLES)
            if dropped == check.allowed:
                raise CommandSequenceError(
                    f"command-spacing prediction diverged on lane {lane} "
                    f"bank {check.bank} at cycle {cycle} (compiled="
                    f"{'allowed' if check.allowed else 'dropped'})")
            if dropped:
                device.dropped_commands[lane] += 1
                if telemetry is not None:
                    telemetry.count("dram.dropped_commands")
                    telemetry.emit("drop", {"bank": check.bank,
                                            "cycle": cycle})
            else:
                device._last_cmd[lane][check.bank] = cycle
