"""Lowering: experiment programs -> fused phase-op schedules.

The compiler walks an IR program (:mod:`repro.xir.ir`) through a
symbolic replica of the batched engine's per-bank state machine —
pending precharges, sense-enable windows, the close-abort glitch window,
command-spacing drops — and emits the flat list of *phase ops* the
executor (:mod:`repro.xir.executor`) later runs as whole-batch NumPy
kernels.  Everything the batched engine derives per issue is resolved
here once per program *shape*:

* **Counter deltas** — every lane-uniform telemetry counter increment
  (``controller.*`` including the JEDEC annotations from
  :func:`repro.controller.plan.plan_for`) collapses to one
  ``(name, delta)`` table applied once per run, multiplied by the lane
  count — the whole-program extension of :class:`CompiledPlan`.
* **Command events** — trace event shapes (kind, bank, row parameter,
  shared violation lists) are frozen per command.
* **Spacing predictions** — for lanes whose decoder enforces command
  spacing, each ACT/PRE is pre-classified allowed/dropped.  The executor
  *mirrors* the real per-lane bookkeeping at run time and raises if a
  lane ever diverges from the prediction, so the fast path is checked,
  never trusted.
* **Draw regions** — the RNG consumption schedule (charge-share jitter,
  sense noise), split at :class:`~repro.xir.ir.Leak` boundaries so the
  executor can pre-draw each region in one merged ``normal`` call per
  lane without reordering any stream relative to the leak jumps.

Programs whose physics the fused kernels cannot reproduce exactly
(multi-row activations, partial amplification, unsensed glitches,
programs that leave a bank open) are rejected with
:class:`LoweringError` instead of silently diverging.

Compiled programs are memoized in a process-local LRU keyed by the
program :func:`~repro.xir.ir.signature`, the lane class, timing and the
sense-enable window; :func:`xir_cache_info` exposes the statistics the
``--cache-stats`` flag and the performance docs report.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from ..controller import sequences as seq
from ..controller.commands import (
    Activate,
    CommandSequence,
    Precharge,
    TimedCommand,
)
from ..controller.commands import WriteRow as WriteRowCmd
from ..controller.plan import plan_for
from ..dram.chip import MIN_COMMAND_SPACING_CYCLES
from ..dram.parameters import ElectricalParams, TimingParams
from ..dram.subarray import CLOSE_ABORT_WINDOW
from ..errors import CommandSequenceError
from . import ir

__all__ = [
    "XIR_CACHE_CAPACITY",
    "CommandEvent",
    "CompiledProgram",
    "LoweringError",
    "PrimSpec",
    "SpacingCheck",
    "XirLoweringError",
    "clear_xir_cache",
    "compile_program",
    "xir_cache_info",
]


class XirLoweringError(CommandSequenceError):
    """The program's physics cannot be lowered to fused phase ops.

    Raised naming the offending op so a refused experiment flow points
    at what it tried to lower instead of silently inheriting the
    batched engine (``repro.xir.XIR_LOWERED_EXPERIMENTS`` lists which
    experiments ride the fused path).
    """


#: Backwards-compatible alias (the PR 8 name).
LoweringError = XirLoweringError


@dataclass(frozen=True)
class SpacingCheck:
    """Predicted command-spacing outcome for one (command, bank)."""

    offset: int  # program-relative cycle of the command
    bank: int
    allowed: bool


@dataclass(frozen=True)
class CommandEvent:
    """Per-command trace shape plus its spacing predictions.

    ``violations`` is the pre-rendered (shared, never mutated) JEDEC
    violation event list from the compiled plan, exactly what
    :meth:`BatchedSoftMC._record_command` attaches.
    """

    offset: int  # program-relative cycle
    kind: str
    bank: int | None
    row_param: str | None
    violations: tuple
    spacing: tuple[SpacingCheck, ...]


@dataclass(frozen=True)
class PrimSpec:
    """One lowered experiment op: its event metadata and phase actions.

    ``actions`` interleaves command records with phase ops, in issue
    order::

        ("cmd", CommandEvent)
        ("cs", bank, param, need_snapshot)    # open + charge share
        ("sense", bank, param)                # sense amplifiers fire
        ("write", bank, param, value)         # whole-row write
        ("write-data", bank, param)           # run-time-bound row write
        ("readout", bank, param)              # logical read of the buffer
        ("freeze", bank, param)               # interrupted-close freeze
        ("close", bank, param)                # committed close
        ("glitch", bank, src, dst)            # sensed close-abort copy
        ("leak", dt_param)                    # retention leakage

    ``store`` marks a write op whose open/sense/close physics is fully
    overwritten by its own write (the plain in-spec write-row cycle on a
    spacing-free lane class): the telemetry-off fast path may collapse
    the whole prim into one ``("store", bank, param, value)`` action and
    jump the dead charge-share/sense draws instead of materializing
    them.
    """

    op: str
    bank: int | None
    start: int
    duration: int
    n_commands: int
    n_frac: int
    value: bool | None
    rows_param: str | None
    src_param: str | None
    dst_param: str | None
    dt_param: str | None
    actions: tuple[tuple, ...]
    store: bool = False


@dataclass(frozen=True)
class CompiledProgram:
    """A whole experiment pass, lowered for one lane class."""

    enforce: bool
    prims: tuple[PrimSpec, ...]
    duration: int
    n_reads: int
    #: Lane-uniform counter increments for the whole program, applied
    #: once per run multiplied by the lane count.
    deltas: tuple[tuple[str, int], ...]
    #: RNG consumption schedule: per region (split at leaks), the
    #: ordered ``(kind, bank, param, dead)`` draw segments.  ``dead``
    #: draws belong to a ``store``-collapsible prim: their values are
    #: never observed, only their stream consumption matters, so the
    #: fast path may advance the generators without materializing them.
    regions: tuple[tuple[tuple[str, int, str, bool], ...], ...]
    #: Row parameters and the single bank each is bound on.
    param_banks: tuple[tuple[str, int], ...]
    #: Row-copy (src, dst, bank) parameter pairs needing glitch binding.
    pairs: tuple[tuple[str, str, int], ...]
    dt_params: tuple[str, ...]
    #: Process-unique id, a stable key for executor-side binding caches
    #: (program objects live in the compile LRU; ``id()`` can be reused
    #: after an eviction, a token cannot).
    token: int = dataclasses.field(
        default_factory=itertools.count().__next__)


class _BankState:
    """Symbolic per-bank replica of the batched sub-array lane state."""

    __slots__ = ("open_param", "fired", "copy", "snap", "pre_at", "last_act")

    def __init__(self) -> None:
        self.open_param: str | None = None
        self.fired = False
        self.copy = False
        self.snap: list | None = None  # the ["cs", ...] action to backpatch
        self.pre_at: int | None = None
        self.last_act = 0

    @property
    def idle(self) -> bool:
        return self.open_param is None and self.pre_at is None


def _template(op: ir.Op, timing: TimingParams,
              electrical: ElectricalParams,
              ) -> tuple[CommandSequence, dict[int, str]]:
    """The op's command template plus the command-index -> row-param map.

    Templates reuse the real sequence builders (rows are placeholders;
    the compiled-plan key ignores them), so the JEDEC annotations — and
    the plan-cache entries — are shared with the batched engine.
    """
    if isinstance(op, (ir.WriteRow, ir.WriteData)):
        # Mirror BatchedSoftMC.write_row's inline template (empty
        # payload; the data ships separately), not write_row_sequence.
        # WriteData shares the template — only the stored plane differs,
        # and that binds at run time.
        template = CommandSequence(
            (
                TimedCommand(0, Activate(op.bank, 0)),
                TimedCommand(timing.t_rcd, WriteRowCmd(op.bank, 0, ())),
                TimedCommand(timing.t_ras, Precharge(op.bank)),
            ),
            timing.row_cycle,
            label=f"write-row b{op.bank} r0",
            op="write-row",
        )
        return template, {0: op.rows, 1: op.rows}
    if isinstance(op, ir.Frac):
        template = seq.frac_sequence(op.bank, 0, op.n_frac, timing)
        return template, {2 * i: op.rows for i in range(op.n_frac)}
    if isinstance(op, ir.ReadRow):
        return (seq.read_row_sequence(op.bank, 0, timing),
                {0: op.rows, 1: op.rows})
    if isinstance(op, ir.PrechargeAll):
        return seq.precharge_all_sequence(timing), {}
    if isinstance(op, ir.RowCopy):
        return (seq.row_copy_sequence(op.bank, 0, 1, timing, electrical),
                {0: op.src, 2: op.dst})
    raise LoweringError(f"cannot lower {op!r}")  # pragma: no cover


def _compile(ops: Sequence[ir.Op], *, enforce: bool, timing: TimingParams,
             electrical: ElectricalParams, n_banks: int) -> CompiledProgram:
    se = int(electrical.sense_enable_cycles)
    states = [_BankState() for _ in range(n_banks)]
    last_allowed: list[int | None] = [None] * n_banks
    deltas: dict[str, int] = {}
    # Entries are mutable lists [kind, bank, param, dead]: the dead flag
    # is backpatched once a store-collapsible write prim completes.
    regions: list[list[list]] = [[]]
    prims: list[PrimSpec] = []
    param_banks: dict[str, int] = {}
    pairs: list[tuple[str, str, int]] = []
    dt_params: list[str] = []
    n_reads = 0
    start = 0
    actions: list = []

    op: ir.Op | None = None  # current experiment op, for refusal context

    def refuse(message: str) -> None:
        context = "" if op is None else f" (while lowering {op!r})"
        raise XirLoweringError(message + context)

    def bump(name: str, n: int = 1) -> None:
        deltas[name] = deltas.get(name, 0) + n

    def register(param: str, bank: int) -> None:
        bound = param_banks.setdefault(param, bank)
        if bound != bank:
            refuse(f"row parameter {param!r} bound on banks "
                   f"{bound} and {bank}")

    def commit(bank: int) -> None:
        """Committed close: freeze an interrupted share, else plain close."""
        state = states[bank]
        if not state.fired:
            assert state.snap is not None
            state.snap[3] = True  # the charge share must keep its snapshot
            actions.append(("freeze", bank, state.open_param))
        else:
            actions.append(("close", bank, state.open_param))
        state.open_param = None
        state.fired = False
        state.copy = False
        state.snap = None
        state.pre_at = None

    def settle_bank(bank: int, t: int) -> None:
        state = states[bank]
        if state.pre_at is not None:
            if t - state.pre_at >= CLOSE_ABORT_WINDOW:
                commit(bank)
            return  # interrupted activation: sense can no longer fire
        if (state.open_param is not None and not state.fired
                and t - state.last_act >= se):
            actions.append(("sense", bank, state.open_param))
            regions[-1].append(["sense", bank, state.open_param, False])
            state.fired = True

    def do_act(bank: int, param: str | None, t: int) -> None:
        if param is None:  # pragma: no cover - templates always bind ACT rows
            raise LoweringError("ACTIVATE without a row parameter")
        state = states[bank]
        if state.pre_at is not None and t - state.pre_at < CLOSE_ABORT_WINDOW:
            # Close-abort: the decoder glitch path.  Only the sensed
            # (row-copy) shape is fused; an unsensed glitch re-shares
            # charge with history the compiler does not track.
            if state.open_param is None:  # pragma: no cover - pre => open
                raise LoweringError("close-abort on a closed bank")
            if not state.fired:
                refuse("unsensed close-abort glitches cannot be fused")
            if state.copy:
                refuse("chained glitch overwrites cannot be fused")
            actions.append(("glitch", bank, state.open_param, param))
            pair = (state.open_param, param, bank)
            if pair not in pairs:
                pairs.append(pair)
            register(param, bank)
            state.pre_at = None
            state.copy = True
            state.last_act = t
            return
        if state.pre_at is not None:
            commit(bank)  # cell.precharge-style unconditional commit
        settle_bank(bank, t)
        if state.open_param is not None:
            if state.copy:
                refuse("activation over a glitch-opened row set "
                       "cannot be fused")
            if param != state.open_param:
                refuse("multi-row activation cannot be fused (distinct row "
                       f"parameters {state.open_param!r} and {param!r} open "
                       f"on bank {bank})")
            return  # same-row re-ACT: raises the word line again, no-op
        register(param, bank)
        action = ["cs", bank, param, False]
        actions.append(action)
        regions[-1].append(["jitter", bank, param, False])
        state.open_param = param
        state.fired = False
        state.copy = False
        state.snap = action
        state.last_act = t

    def do_pre(bank: int, t: int) -> None:
        state = states[bank]
        if state.pre_at is not None:
            commit(bank)  # commits the pending close with no gap check
            return
        settle_bank(bank, t)
        if state.open_param is None:
            return  # closed bank: the idle bit-line level is re-asserted
        if not state.fired and t - state.last_act - 1 >= 1:
            refuse("partial amplification cannot be fused (PRECHARGE inside "
                   "the amplify window)")
        state.pre_at = t

    def finish(t: int) -> None:
        """Sequence completion: settle every cell, commit pending closes."""
        for bank in range(n_banks):
            settle_bank(bank, t)
            if states[bank].pre_at is not None:
                commit(bank)

    for op in ir.flatten(ops):
        actions = []
        if isinstance(op, ir.Leak):
            for bank, state in enumerate(states):
                if not state.idle:
                    refuse(f"Leak with bank {bank} not idle "
                           "(precharge first)")
            if op.dt not in dt_params:
                dt_params.append(op.dt)
            actions.append(("leak", op.dt))
            regions.append([])
            prims.append(PrimSpec(
                op="leak", bank=None, start=start, duration=0, n_commands=0,
                n_frac=0, value=None, rows_param=None, src_param=None,
                dst_param=None, dt_param=op.dt, actions=(("leak", op.dt),)))
            continue

        template, row_params = _template(op, timing, electrical)
        plan = plan_for(timing, template)
        bump("controller.sequences")
        bump(f"controller.seq.{template.op}")
        if template.op == "frac":
            bump("controller.frac_ops", len(template) // 2)
        bump("controller.commands", len(template))
        for index, timed in enumerate(template):
            bump(f"controller.{timed.command.KIND.lower()}")
            violations = plan.violations[index]
            if violations:
                bump("controller.jedec_violations", len(violations))
                for violation in violations:
                    bump(f"controller.jedec.{violation.constraint.lower()}")

        for index, timed in enumerate(template):
            command = timed.command
            t = start + timed.cycle
            kind = command.KIND
            checks: list[SpacingCheck] = []
            if enforce and kind in ("ACT", "PRE"):
                check_banks = [command.bank]
            elif enforce and kind == "PREA":
                check_banks = list(range(n_banks))
            else:
                check_banks = []
            for bank in check_banks:
                last = last_allowed[bank]
                allowed = (last is None
                           or t - last >= MIN_COMMAND_SPACING_CYCLES)
                if allowed:
                    last_allowed[bank] = t
                checks.append(SpacingCheck(offset=t, bank=bank,
                                           allowed=allowed))
            actions.append(("cmd", CommandEvent(
                offset=t, kind=kind, bank=getattr(command, "bank", None),
                row_param=row_params.get(index),
                violations=plan.violation_events[index],
                spacing=tuple(checks))))
            allowed_by_bank = {check.bank: check.allowed for check in checks}
            if kind == "ACT":
                if allowed_by_bank.get(command.bank, True):
                    do_act(command.bank, row_params.get(index), t)
            elif kind == "PRE":
                if allowed_by_bank.get(command.bank, True):
                    do_pre(command.bank, t)
            elif kind == "PREA":
                for bank in range(n_banks):
                    if allowed_by_bank.get(bank, True):
                        do_pre(bank, t)
            elif kind == "WR":
                for bank in range(n_banks):
                    settle_bank(bank, t)
                state = states[command.bank]
                param = row_params.get(index)
                if state.open_param is None or not state.fired:
                    refuse("WRITE before the sense amplifiers fired")
                if state.copy or param != state.open_param:
                    refuse("WRITE target does not match the open row")
                if isinstance(op, ir.WriteData):
                    actions.append(("write-data", command.bank, param))
                else:
                    actions.append(("write", command.bank, param, op.value))
            elif kind == "RD":
                for bank in range(n_banks):
                    settle_bank(bank, t)
                state = states[command.bank]
                param = row_params.get(index)
                if state.open_param is None or not state.fired:
                    refuse("READ before the sense amplifiers fired")
                if param != state.open_param:
                    refuse("READ target does not match the open row")
                actions.append(("readout", command.bank, param))
                n_reads += 1
            else:  # pragma: no cover - defensive
                raise LoweringError(f"unknown command kind {kind!r}")

        finish(start + template.duration)
        store = False
        if isinstance(op, (ir.WriteRow, ir.WriteData)) and not enforce:
            # A plain write-row cycle on a spacing-free lane class: the
            # charge share and sense are fully overwritten by the write
            # and the close only re-idles the bit-lines, so the fast
            # path may collapse the prim to one store kernel and jump
            # the (dead) jitter/sense draws.  The pattern check is
            # structural, so any future template change that adds an
            # observable step simply stops matching.
            write_tag = ("write-data" if isinstance(op, ir.WriteData)
                         else "write")
            physics = [a[0] for a in actions if a[0] != "cmd"]
            tail = [tuple(e[:3]) for e in regions[-1][-2:]]
            if (physics == ["cs", "sense", write_tag, "close"]
                    and tail == [("jitter", op.bank, op.rows),
                                 ("sense", op.bank, op.rows)]):
                store = True
                for entry in regions[-1][-2:]:
                    entry[3] = True
        prims.append(PrimSpec(
            op=template.op,
            bank=getattr(op, "bank", None),
            start=start,
            duration=template.duration,
            n_commands=len(template),
            n_frac=getattr(op, "n_frac", 0),
            value=getattr(op, "value", None),
            rows_param=getattr(op, "rows", None),
            src_param=getattr(op, "src", None),
            dst_param=getattr(op, "dst", None),
            dt_param=None,
            actions=tuple(tuple(a) if isinstance(a, list) else a
                          for a in actions),
            store=store))
        start += template.duration

    for bank, state in enumerate(states):
        if not state.idle:
            raise LoweringError(
                f"program leaves bank {bank} open; fused programs must end "
                "with every bank idle (add a read or PrechargeAll)")

    return CompiledProgram(
        enforce=bool(enforce),
        prims=tuple(prims),
        duration=start,
        n_reads=n_reads,
        deltas=tuple(sorted(deltas.items())),
        # Empty regions are kept: the executor advances its region index
        # once per leak, so the schedule has exactly n_leaks + 1 entries.
        regions=tuple(tuple(tuple(entry) for entry in region)
                      for region in regions),
        param_banks=tuple(sorted(param_banks.items())),
        pairs=tuple(pairs),
        dt_params=tuple(dt_params))


#: Upper bound on memoized programs; distinct program shapes per process
#: number in the tens (fig6: one per (n_frac, wait>0) setting and lane
#: class; fig11: one per lane class).
XIR_CACHE_CAPACITY: int = 256

_cache: "OrderedDict[tuple, CompiledProgram]" = OrderedDict()
_hits: int = 0
_misses: int = 0


def compile_program(ops: Sequence[ir.Op], *, enforce: bool,
                    timing: TimingParams, electrical: ElectricalParams,
                    n_banks: int) -> CompiledProgram:
    """Memoized lowering (process-local LRU, like :func:`plan_for`).

    The key is the program :func:`~repro.xir.ir.signature` — rows and
    leak durations are bound at execution, so every sweep point of a
    :class:`~repro.xir.ir.Sweep` hits the same entry — plus the lane
    class (spacing-enforcing or not), the timing parameters and the
    sense-enable window (the only electrical input the lowering reads).
    """
    key = (ir.signature(ops), bool(enforce), timing,
           int(electrical.sense_enable_cycles), int(n_banks))
    global _hits, _misses
    program = _cache.get(key)
    if program is not None:
        _hits += 1
        _cache.move_to_end(key)
        return program
    _misses += 1
    program = _compile(ops, enforce=enforce, timing=timing,
                       electrical=electrical, n_banks=n_banks)
    _cache[key] = program
    if len(_cache) > XIR_CACHE_CAPACITY:
        _cache.popitem(last=False)
    return program


def xir_cache_info() -> dict[str, int]:
    """Compile-cache statistics (``misses`` == programs compiled)."""
    return {"size": len(_cache), "capacity": XIR_CACHE_CAPACITY,
            "hits": _hits, "misses": _misses}


def clear_xir_cache() -> None:
    """Drop all memoized programs and reset the hit/miss counters."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0
