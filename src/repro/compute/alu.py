"""Bulk bitwise computing on FracDRAM majority (ComputeDRAM-style).

Majority-of-three is logically complete for AND/OR given constant rows:

    AND(a, b) = MAJ(a, b, 0)         OR(a, b) = MAJ(a, b, 1)

NOT has no in-DRAM implementation on unmodified chips (Ambit's dual-
contact cells would be a hardware change), so the ALU performs inversion
through the memory controller (read + inverted write), and composes
XOR/NAND/NOR/XNOR from these pieces.  Every operation reports its modeled
DRAM-bus cycle cost, using the ComputeDRAM reserved-row strategy: operands
are copied into the rows that participate in the multi-row activation and
the result is copied back out, so application data never sits in the
glitch-prone rows.

The ALU automatically selects the majority engine: original MAJ3 on
three-row-capable devices, F-MAJ elsewhere — the paper's point that
fractional values extend in-memory computing to more modules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ops import FracDram
from ..dram.parameters import MEMORY_CYCLE_NS
from ..errors import ConfigurationError, UnsupportedOperationError

__all__ = ["BitwiseAlu", "OpCost"]


@dataclass(frozen=True)
class OpCost:
    """Modeled cost of one bulk operation over a full row."""

    operation: str
    bus_cycles: int

    @property
    def nanoseconds(self) -> float:
        return self.bus_cycles * MEMORY_CYCLE_NS


class BitwiseAlu:
    """Row-wide boolean operations over one sub-array."""

    def __init__(self, fd: FracDram, *, bank: int = 0, subarray: int = 0,
                 engine: str = "auto") -> None:
        if engine not in ("auto", "maj3", "f-maj"):
            raise ConfigurationError(
                f"engine must be auto/maj3/f-maj, got {engine!r}")
        if engine == "auto":
            engine = "maj3" if fd.can_three_row else "f-maj"
        if engine == "maj3" and not fd.can_three_row:
            raise UnsupportedOperationError(
                f"group {fd.group.group_id} cannot run the MAJ3 engine")
        if engine == "f-maj" and not fd.can_four_row:
            raise UnsupportedOperationError(
                f"group {fd.group.group_id} cannot run the F-MAJ engine")
        self.fd = fd
        self.bank = bank
        self.subarray = subarray
        self.engine = engine
        self._costs: list[OpCost] = []
        self._constants: dict[bool, np.ndarray] = {
            False: np.zeros(fd.columns, dtype=bool),
            True: np.ones(fd.columns, dtype=bool),
        }

    # ------------------------------------------------------------------

    @property
    def columns(self) -> int:
        return self.fd.columns

    @property
    def op_log(self) -> tuple[OpCost, ...]:
        """Cost log of every operation performed."""
        return tuple(self._costs)

    @property
    def total_cycles(self) -> int:
        return sum(cost.bus_cycles for cost in self._costs)

    def _record(self, operation: str, start_cycle: int) -> None:
        self._costs.append(OpCost(operation, self.fd.mc.cycle - start_cycle))

    def _check_operand(self, bits: np.ndarray) -> np.ndarray:
        array = np.asarray(bits, dtype=bool)
        if array.shape != (self.columns,):
            raise ConfigurationError(
                f"operand shape {array.shape} != ({self.columns},)")
        return array

    # ------------------------------------------------------------------
    # primitive: majority
    # ------------------------------------------------------------------

    def maj(self, a, b, c) -> np.ndarray:
        """In-DRAM majority-of-three of full rows."""
        operands = [self._check_operand(x) for x in (a, b, c)]
        start = self.fd.mc.cycle
        if self.engine == "maj3":
            result = self.fd.maj3(self.bank, operands, self.subarray)
        else:
            result = self.fd.f_maj(self.bank, operands,
                                   subarray=self.subarray)
        self._record("maj", start)
        return result.astype(bool)

    # ------------------------------------------------------------------
    # derived boolean operations
    # ------------------------------------------------------------------

    def and_(self, a, b) -> np.ndarray:
        """AND(a, b) = MAJ(a, b, 0)."""
        return self.maj(a, b, self._constants[False])

    def or_(self, a, b) -> np.ndarray:
        """OR(a, b) = MAJ(a, b, 1)."""
        return self.maj(a, b, self._constants[True])

    def not_(self, a) -> np.ndarray:
        """Controller-assisted inversion (a row write of ~a).

        Costs one row write; counted so compositions report honest totals.
        """
        operand = self._check_operand(a)
        start = self.fd.mc.cycle
        scratch_row = self._scratch_row()
        self.fd.write_row(self.bank, scratch_row, ~operand)
        result = self.fd.read_row(self.bank, scratch_row)
        self._record("not", start)
        return result.astype(bool)

    def nand(self, a, b) -> np.ndarray:
        return self.not_(self.and_(a, b))

    def nor(self, a, b) -> np.ndarray:
        return self.not_(self.or_(a, b))

    def xor(self, a, b) -> np.ndarray:
        """XOR = OR(AND(a, ~b), AND(~a, b))."""
        not_a = self.not_(a)
        not_b = self.not_(b)
        return self.or_(self.and_(a, not_b), self.and_(not_a, b))

    def xnor(self, a, b) -> np.ndarray:
        return self.not_(self.xor(a, b))

    def mux(self, select, a, b) -> np.ndarray:
        """Bitwise multiplexer: select ? a : b."""
        not_select = self.not_(select)
        return self.or_(self.and_(select, a), self.and_(not_select, b))

    # ------------------------------------------------------------------
    # arithmetic built on the boolean layer
    # ------------------------------------------------------------------

    def full_add(self, a, b, carry_in) -> tuple[np.ndarray, np.ndarray]:
        """Bit-sliced full adder: returns (sum, carry_out).

        carry_out = MAJ(a, b, cin) — a single in-DRAM operation — and
        sum = a XOR b XOR cin.  This is the textbook argument for
        majority-based in-memory arithmetic.
        """
        carry_out = self.maj(a, b, carry_in)
        partial = self.xor(a, b)
        total = self.xor(partial, carry_in)
        return total, carry_out

    def ripple_add(self, words_a: np.ndarray, words_b: np.ndarray,
                   width: int) -> np.ndarray:
        """Add ``columns`` independent ``width``-bit integers.

        ``words_a``/``words_b`` have shape (width, columns): bit-sliced
        layout, LSB first — the natural layout for bulk in-DRAM SIMD.
        """
        words_a = np.asarray(words_a, dtype=bool)
        words_b = np.asarray(words_b, dtype=bool)
        if words_a.shape != (width, self.columns) or words_b.shape != words_a.shape:
            raise ConfigurationError("operands must be (width, columns)")
        carry = self._constants[False]
        total = np.zeros_like(words_a)
        for bit in range(width):
            total[bit], carry = self.full_add(words_a[bit], words_b[bit], carry)
        return total

    # ------------------------------------------------------------------

    def _scratch_row(self) -> int:
        """A row outside the compute set used for controller inversions."""
        rows_per_subarray = int(self.fd.device.geometry.rows_per_subarray)
        base = self.subarray * rows_per_subarray
        compute_rows = set(self.fd.quad_plan(self.bank, self.subarray).opened
                           if self.fd.can_four_row
                           else self.fd.triple_plan(self.bank, self.subarray).opened)
        for row in range(base + rows_per_subarray - 1, base - 1, -1):
            if row not in compute_rows:
                return row
        raise ConfigurationError("no scratch row available")  # pragma: no cover
