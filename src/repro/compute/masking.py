"""Column characterization and masking for in-DRAM compute.

ComputeDRAM-style systems never use every column: a characterization pass
finds the bit-lines that compute majority reliably, and software packs its
data into those columns only (the paper's "coverage" is exactly the size
of this usable set).  :class:`ColumnMask` runs the characterization —
each of the six input combinations, repeated — and provides pack/unpack
helpers so application vectors only ever touch reliable columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ops import FMajConfig, FracDram
from ..errors import ConfigurationError, InsufficientDataError

__all__ = ["ColumnMask", "characterize_columns"]

_SIX_COMBOS = ((1, 0, 0), (0, 1, 0), (0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0))


def characterize_columns(fd: FracDram, *, bank: int = 0, subarray: int = 0,
                         engine: str = "auto", rounds: int = 2,
                         fmaj_config: FMajConfig | None = None) -> np.ndarray:
    """Boolean mask of columns that computed every combo correctly in
    every characterization round."""
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    if engine == "auto":
        engine = "maj3" if fd.can_three_row else "f-maj"
    reliable = np.ones(fd.columns, dtype=bool)
    for _ in range(rounds):
        for pattern in _SIX_COMBOS:
            operands = [np.full(fd.columns, bool(value)) for value in pattern]
            expected = sum(pattern) >= 2
            if engine == "maj3":
                result = fd.maj3(bank, operands, subarray)
            else:
                result = fd.f_maj(bank, operands, fmaj_config, subarray)
            reliable &= result == expected
    return reliable


@dataclass(frozen=True)
class ColumnMask:
    """A reliable-column set with pack/unpack data movement."""

    mask: np.ndarray

    def __post_init__(self) -> None:
        if self.mask.dtype != bool or self.mask.ndim != 1:
            raise ConfigurationError("mask must be a 1-D boolean array")
        if not self.mask.any():
            raise InsufficientDataError("no reliable columns to compute in")

    @classmethod
    def characterize(cls, fd: FracDram, **kwargs) -> "ColumnMask":
        return cls(characterize_columns(fd, **kwargs))

    @property
    def capacity(self) -> int:
        """Usable vector width."""
        return int(np.count_nonzero(self.mask))

    @property
    def coverage(self) -> float:
        return self.capacity / self.mask.size

    def pack(self, data: np.ndarray) -> np.ndarray:
        """Spread ``capacity`` data bits into a full-width row vector.

        Unreliable columns get zeros (their compute results are ignored).
        """
        bits = np.asarray(data, dtype=bool)
        if bits.shape != (self.capacity,):
            raise ConfigurationError(
                f"expected {self.capacity} data bits, got {bits.shape}")
        row = np.zeros(self.mask.size, dtype=bool)
        row[self.mask] = bits
        return row

    def unpack(self, row: np.ndarray) -> np.ndarray:
        """Extract the data bits from a full-width result vector."""
        bits = np.asarray(row, dtype=bool)
        if bits.shape != (self.mask.size,):
            raise ConfigurationError(
                f"expected a {self.mask.size}-bit row, got {bits.shape}")
        return bits[self.mask]
