"""Bulk bitwise / arithmetic computing on in-DRAM majority."""

from .alu import BitwiseAlu, OpCost
from .arith import SimdArithmetic, from_bitsliced, to_bitsliced
from .masking import ColumnMask, characterize_columns

__all__ = ["BitwiseAlu", "ColumnMask", "OpCost", "SimdArithmetic",
           "characterize_columns", "from_bitsliced", "to_bitsliced"]
