"""Bit-sliced SIMD arithmetic on the majority ALU.

In-DRAM computing operates on whole rows at once, so the natural data
layout is *bit-sliced*: a (width, columns) boolean matrix holds one
``width``-bit integer per column, LSB first, and every arithmetic step is
a row-wide boolean operation.  On top of :class:`BitwiseAlu` this module
builds the classic bit-serial kernels:

* addition / subtraction (two's complement, via the majority carry),
* comparison (via subtraction borrow),
* shift-and-add multiplication,
* population count across operand rows (a majority/adder tree).

All kernels report honest cycle costs through the ALU's operation log,
so the examples can contrast in-DRAM SIMD cost against one-lane CPU
work — the energy argument that motivates the processing-in-memory
literature the paper builds on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .alu import BitwiseAlu

__all__ = ["SimdArithmetic", "to_bitsliced", "from_bitsliced"]


def to_bitsliced(values: Sequence[int], width: int, columns: int) -> np.ndarray:
    """Pack per-column integers into a (width, columns) LSB-first matrix."""
    array = np.asarray(values, dtype=np.int64)
    if array.shape != (columns,):
        raise ConfigurationError(f"expected {columns} values, got {array.shape}")
    if (array < 0).any() or (array >= (1 << width)).any():
        raise ConfigurationError(f"values must fit in {width} bits")
    return np.stack([(array >> bit) & 1 for bit in range(width)]).astype(bool)


def from_bitsliced(words: np.ndarray) -> np.ndarray:
    """Unpack a (width, columns) LSB-first matrix into integers."""
    words = np.asarray(words, dtype=bool)
    return sum(words[bit].astype(np.int64) << bit
               for bit in range(words.shape[0]))


class SimdArithmetic:
    """Vectorized integer kernels over one :class:`BitwiseAlu`."""

    def __init__(self, alu: BitwiseAlu) -> None:
        self.alu = alu

    @property
    def columns(self) -> int:
        return self.alu.columns

    def _check(self, words: np.ndarray, width: int) -> np.ndarray:
        array = np.asarray(words, dtype=bool)
        if array.shape != (width, self.columns):
            raise ConfigurationError(
                f"expected shape ({width}, {self.columns}), got {array.shape}")
        return array

    # ------------------------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
        """Per-column addition modulo 2^width."""
        return self.alu.ripple_add(self._check(a, width),
                                   self._check(b, width), width)

    def negate(self, a: np.ndarray, width: int) -> np.ndarray:
        """Two's complement: ~a + 1."""
        a = self._check(a, width)
        inverted = np.stack([self.alu.not_(a[bit]) for bit in range(width)])
        one = np.zeros((width, self.columns), dtype=bool)
        one[0] = True
        return self.alu.ripple_add(inverted, one, width)

    def subtract(self, a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
        """Per-column subtraction modulo 2^width (a - b)."""
        return self.add(self._check(a, width), self.negate(b, width), width)

    def less_than(self, a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
        """Unsigned per-column a < b, via the subtraction borrow.

        Computed with one extra bit of headroom: a < b iff the top bit of
        (a - b) over width+1 bits is set.
        """
        extended_a = np.vstack([self._check(a, width),
                                np.zeros((1, self.columns), dtype=bool)])
        extended_b = np.vstack([self._check(b, width),
                                np.zeros((1, self.columns), dtype=bool)])
        difference = self.subtract(extended_a, extended_b, width + 1)
        return difference[width]

    def multiply(self, a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
        """Shift-and-add multiplication, result modulo 2^width."""
        a = self._check(a, width)
        b = self._check(b, width)
        accumulator = np.zeros((width, self.columns), dtype=bool)
        for shift in range(width):
            # Partial product: (a << shift) gated by bit `shift` of b.
            partial = np.zeros((width, self.columns), dtype=bool)
            gate = b[shift]
            for bit in range(shift, width):
                partial[bit] = self.alu.and_(a[bit - shift], gate)
            accumulator = self.alu.ripple_add(accumulator, partial, width)
        return accumulator

    def popcount(self, operands: Sequence[np.ndarray],
                 width: int | None = None) -> np.ndarray:
        """Per-column count of set bits across ``operands`` rows.

        Classic adder-tree reduction; with three rows the first level is
        literally one majority (carry) and one double-XOR (sum) — the
        full-adder identity that makes MAJ3 arithmetically fundamental.
        """
        rows = [np.asarray(op, dtype=bool) for op in operands]
        if not rows:
            raise ConfigurationError("popcount needs at least one operand")
        for row in rows:
            if row.shape != (self.columns,):
                raise ConfigurationError("operands must be full rows")
        if width is None:
            width = max(1, int(np.ceil(np.log2(len(rows) + 1))))
        total = np.zeros((width, self.columns), dtype=bool)
        for row in rows:
            addend = np.zeros((width, self.columns), dtype=bool)
            addend[0] = row
            total = self.alu.ripple_add(total, addend, width)
        return total
