"""Experiment TS: timing-window exploration (methodology of Sections II/III).

ComputeDRAM and FracDRAM were discovered by sweeping inter-command gaps
outside the JEDEC minima and watching what the chip does.  This experiment
reproduces that exploration on the simulator, mapping the behavioural
windows that the primitives rely on:

* **ACT -> PRE gap** (interrupting an activation): a 1-cycle gap freezes
  the pure charge-shared level (Frac); gaps of 2-3 cycles catch the sense
  amps mid-flight (partial amplification — the Half-m regime); gaps at or
  past the sense-enable delay restore the cell fully (normal operation).

* **PRE -> ACT gap** (interrupting a precharge): gaps inside the abort
  window leave the previous row open and glitch extra rows (multi-row
  activation); at or past the window the close completes and exactly one
  row opens.

The output is the kind of table the authors assembled by hand for real
chips — here regenerated automatically, with the window edges asserted to
match the primitives' sequence builders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..controller.commands import (
    Activate,
    CommandSequence,
    Precharge,
    TimedCommand,
)
from ..core.ops import FracDram
from ..dram.subarray import CLOSE_ABORT_WINDOW
from ..errors import ConfigurationError
from .base import DEFAULT_CONFIG, ExperimentConfig, make_fd, markdown_table

__all__ = ["ActPreOutcome", "PreActOutcome", "TimingSweepResult", "run",
           "shard_units", "run_shard", "merge"]

PAPER_EXPECTATION = (
    "Back-to-back ACT-PRE stores fractional values; slightly later PRE "
    "partially amplifies; in-spec PRE restores fully.  PRE-ACT inside the "
    "abort window opens multiple rows; outside it opens exactly one.")


@dataclass(frozen=True)
class ActPreOutcome:
    """What an ACT followed by PRE after ``gap`` cycles does to a row of
    ones."""

    gap: int
    mean_voltage: float
    regime: str  # "fractional" / "partial-amplify" / "restored"


@dataclass(frozen=True)
class PreActOutcome:
    """How many rows ACT(R1) @0, PRE @1, ACT(R2) @(1+gap) leaves open."""

    gap: int
    rows_open: int
    glitched: bool


@dataclass(frozen=True)
class TimingSweepResult:
    act_pre: tuple[ActPreOutcome, ...]
    pre_act: tuple[PreActOutcome, ...]

    def format_table(self) -> str:
        lines = ["Timing-window exploration (group B)"]
        lines.append("\nACT -> PRE gap sweep (row initialized to all ones):")
        lines.append(markdown_table(
            ("gap (cycles)", "mean cell voltage (Vdd)", "regime"),
            [(o.gap, f"{o.mean_voltage:.3f}", o.regime) for o in self.act_pre]))
        lines.append("\nPRE -> ACT gap sweep (ACT R1, PRE, ACT R2):")
        lines.append(markdown_table(
            ("gap (cycles)", "rows open", "multi-row glitch"),
            [(o.gap, o.rows_open, "yes" if o.glitched else "")
             for o in self.pre_act]))
        return "\n".join(lines)

    def frac_window(self) -> tuple[int, ...]:
        return tuple(o.gap for o in self.act_pre if o.regime == "fractional")

    def glitch_window(self) -> tuple[int, ...]:
        return tuple(o.gap for o in self.pre_act if o.glitched)

    def windows_match_model(self) -> bool:
        """The measured windows must equal the constants the sequence
        builders assume (1-cycle Frac interrupt; glitch inside the abort
        window)."""
        expected_glitch = tuple(range(1, CLOSE_ABORT_WINDOW))
        return (self.frac_window() == (1,)
                and self.glitch_window() == expected_glitch)


def _classify(mean_voltage: float) -> str:
    if mean_voltage > 0.98:
        return "restored"
    if mean_voltage > 0.70:
        return "partial-amplify"
    return "fractional"


def _sweep_act_pre(fd: FracDram, bank: int, row: int,
                   gaps: range) -> tuple[ActPreOutcome, ...]:
    outcomes = []
    subarray = fd.device.subarray_of(bank, row)
    local_row = row % fd.device.geometry.rows_per_subarray
    for gap in gaps:
        fd.fill_row(bank, row, True)
        sequence = CommandSequence((
            TimedCommand(0, Activate(bank, row)),
            TimedCommand(gap, Precharge(bank)),
        ), gap + 6, label=f"act-pre gap {gap}")
        fd.mc.run(sequence)
        mean_voltage = float(np.mean(subarray.cell_v[local_row]))
        outcomes.append(ActPreOutcome(gap, mean_voltage,
                                      _classify(mean_voltage)))
    return tuple(outcomes)


def _sweep_pre_act(fd: FracDram, bank: int,
                   gaps: range) -> tuple[PreActOutcome, ...]:
    outcomes = []
    r1, r2 = 1, 2  # the triple combination on group B
    for gap in gaps:
        fd.precharge_all()
        sequence = CommandSequence((
            TimedCommand(0, Activate(bank, r1)),
            TimedCommand(1, Precharge(bank)),
            TimedCommand(1 + gap, Activate(bank, r2)),
        ), 1 + gap + 2, label=f"pre-act gap {gap}")
        fd.mc.run(sequence)
        open_rows = fd.device.bank(bank).open_rows()
        # Past the abort window the close commits and only R2 opens; a
        # count above one means the interrupted close kept R1 (and the
        # decoder glitch possibly added more).
        outcomes.append(PreActOutcome(gap, len(open_rows),
                                      len(open_rows) > 1))
        fd.precharge_all()
        fd.mc.idle(10)
    return tuple(outcomes)


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The work unit is one
# gap sweep; each unit fabricates its own group-B chip so a unit's
# outcomes never depend on which other sweeps ran before it.
# ----------------------------------------------------------------------

SWEEPS: tuple[str, ...] = ("act-pre", "pre-act")


def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                **_kwargs) -> tuple[str, ...]:
    """One work unit per gap sweep."""
    return SWEEPS


def run_shard(config: ExperimentConfig, units, group_id: str = "B",
              **_kwargs) -> list:
    """Run each sweep in ``units`` on a fresh chip; payloads are
    ``(sweep_name, outcomes)``."""
    payloads = []
    for unit in units:
        fd = make_fd(group_id, config, serial=0)
        if unit == "act-pre":
            outcomes = _sweep_act_pre(fd, bank=0, row=1, gaps=range(1, 8))
        elif unit == "pre-act":
            outcomes = _sweep_pre_act(fd, bank=0, gaps=range(1, 6))
        else:
            raise ConfigurationError(f"unknown timing-sweep unit {unit!r}")
        payloads.append((unit, outcomes))
    return payloads


def merge(config: ExperimentConfig, payloads, **_kwargs) -> TimingSweepResult:
    by_sweep = dict(payloads)
    return TimingSweepResult(by_sweep["act-pre"], by_sweep["pre-act"])


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        group_id: str = "B") -> TimingSweepResult:
    units = shard_units(config)
    return merge(config, run_shard(config, units, group_id=group_id))
