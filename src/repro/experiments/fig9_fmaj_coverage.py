"""Experiment F9: Figure 9 — F-MAJ coverage vs configuration.

For each four-row-capable group (B, C, D) we sweep every F-MAJ
configuration — which opened row holds the fractional value (R1..R4),
the initial value before Frac (ones/zeros), and the number of Frac
operations — and measure coverage: the fraction of columns that produce
the correct majority for all six input combinations.  Group B also gets
the original three-row MAJ3 as the dashed baseline.

Paper expectations: a non-zero coverage for every group (F-MAJ works on
all four-row-capable chips); different groups favor different
configurations (B: frac in R2 init ones; C: R1 init ones; D: R4 init
zeros); B's best configuration beats the MAJ3 baseline (99.8% vs 98.0%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.stats import mean_confidence_interval
from ..core.ops import FMajConfig, FracDram
from .base import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    input_combos,
    make_fd,
    markdown_table,
    percent,
    subarray_targets,
)

__all__ = ["Fig9Curve", "Fig9Result", "run", "coverage_maj3", "coverage_fmaj"]

PAPER_EXPECTATION = (
    "Figure 9: non-zero F-MAJ coverage on every four-row group; best "
    "configs are B: (R2, ones), C: (R1, ones), D: (R4, zeros); B's best "
    "coverage (paper 99.8%) exceeds the MAJ3 baseline (98.0%).")

FRAC_COUNTS = (0, 1, 2, 3, 4, 5)
GROUPS_WITH_FOUR_ROW = ("B", "C", "D")


def coverage_maj3(fd: FracDram, bank: int, subarray: int) -> float:
    """Fraction of columns computing all six MAJ3 combos correctly."""
    correct = np.ones(fd.columns, dtype=bool)
    for pattern, operands in input_combos(fd.columns):
        expected = sum(pattern) >= 2
        result = fd.maj3(bank, operands, subarray)
        correct &= result == expected
    return float(np.mean(correct))


def coverage_fmaj(fd: FracDram, config: FMajConfig, bank: int,
                  subarray: int) -> float:
    """Fraction of columns computing all six F-MAJ combos correctly."""
    correct = np.ones(fd.columns, dtype=bool)
    for pattern, operands in input_combos(fd.columns):
        expected = sum(pattern) >= 2
        result = fd.f_maj(bank, operands, config, subarray)
        correct &= result == expected
    return float(np.mean(correct))


@dataclass(frozen=True)
class Fig9Curve:
    """Coverage vs #Frac for one (group, frac row, init) configuration."""

    group_id: str
    frac_position: int
    init_ones: bool
    #: (mean, ci_low, ci_high) per Frac count.
    points: tuple[tuple[float, float, float], ...]

    @property
    def label(self) -> str:
        init = "ones" if self.init_ones else "zeros"
        return f"R{self.frac_position + 1} init {init}"

    @property
    def best(self) -> tuple[int, float]:
        """(n_frac, coverage) at this curve's best point."""
        means = [point[0] for point in self.points]
        index = int(np.argmax(means))
        return FRAC_COUNTS[index], means[index]


@dataclass(frozen=True)
class Fig9Result:
    curves: dict[str, tuple[Fig9Curve, ...]]
    maj3_baseline: float  # group B dashed line

    def best_curve(self, group_id: str) -> Fig9Curve:
        return max(self.curves[group_id], key=lambda curve: curve.best[1])

    def best_beats_baseline(self) -> bool:
        return self.best_curve("B").best[1] > self.maj3_baseline

    def all_groups_nonzero(self) -> bool:
        return all(self.best_curve(group).best[1] > 0.0
                   for group in self.curves)

    def format_table(self) -> str:
        lines = ["Figure 9 — F-MAJ coverage vs number of Frac operations"]
        for group_id, curves in self.curves.items():
            lines.append(f"\nGroup {group_id} (mean coverage, 95% CI "
                         "across chips/sub-arrays):")
            header = ("config \\ #Frac", *[str(n) for n in FRAC_COUNTS])
            rows = []
            for curve in curves:
                rows.append((curve.label,
                             *[f"{mean:.3f}" for mean, _, _ in curve.points]))
            lines.append(markdown_table(header, rows))
            best = self.best_curve(group_id)
            lines.append(f"best: {best.label} with {best.best[0]} Frac -> "
                         f"{percent(best.best[1])}")
        lines.append(f"\nGroup B MAJ3 baseline (dashed line): "
                     f"{percent(self.maj3_baseline)}")
        verdict = ("beats" if self.best_beats_baseline() else "does NOT beat")
        lines.append(f"Group B best F-MAJ {verdict} the MAJ3 baseline "
                     "(paper: 99.8% vs 98.0%).")
        return "\n".join(lines)


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        frac_counts: tuple[int, ...] = FRAC_COUNTS) -> Fig9Result:
    curves: dict[str, tuple[Fig9Curve, ...]] = {}
    maj3_values: list[float] = []
    targets = subarray_targets(config)
    for group_id in GROUPS_WITH_FOUR_ROW:
        group_curves = []
        devices = [make_fd(group_id, config, serial)
                   for serial in range(config.chips_per_group)]
        if group_id == "B":
            for fd in devices:
                maj3_values.extend(
                    coverage_maj3(fd, bank, subarray)
                    for bank, subarray in targets)
        for frac_position in range(4):
            for init_ones in (True, False):
                points = []
                for n_frac in frac_counts:
                    fmaj_config = FMajConfig(frac_position, init_ones, n_frac)
                    values = [
                        coverage_fmaj(fd, fmaj_config, bank, subarray)
                        for fd in devices
                        for bank, subarray in targets
                    ]
                    points.append(mean_confidence_interval(values))
                group_curves.append(Fig9Curve(
                    group_id, frac_position, init_ones, tuple(points)))
        curves[group_id] = tuple(group_curves)
    return Fig9Result(curves, float(np.mean(maj3_values)))
