"""Experiment F9: Figure 9 — F-MAJ coverage vs configuration.

For each four-row-capable group (B, C, D) we sweep every F-MAJ
configuration — which opened row holds the fractional value (R1..R4),
the initial value before Frac (ones/zeros), and the number of Frac
operations — and measure coverage: the fraction of columns that produce
the correct majority for all six input combinations.  Group B also gets
the original three-row MAJ3 as the dashed baseline.

Paper expectations: a non-zero coverage for every group (F-MAJ works on
all four-row-capable chips); different groups favor different
configurations (B: frac in R2 init ones; C: R1 init ones; D: R4 init
zeros); B's best configuration beats the MAJ3 baseline (99.8% vs 98.0%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.stats import mean_confidence_interval
from ..core.batched_ops import BatchedFracDram
from ..core.ops import FMajConfig, FracDram, MultiRowPlan
from ..dram.batched import BatchedChip
from .base import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    input_combos,
    make_chip,
    make_fd,
    markdown_table,
    percent,
    resolve_batch,
    subarray_targets,
)

__all__ = ["Fig9Curve", "Fig9Result", "run", "coverage_maj3", "coverage_fmaj",
           "shard_units", "run_shard", "merge"]

PAPER_EXPECTATION = (
    "Figure 9: non-zero F-MAJ coverage on every four-row group; best "
    "configs are B: (R2, ones), C: (R1, ones), D: (R4, zeros); B's best "
    "coverage (paper 99.8%) exceeds the MAJ3 baseline (98.0%).")

FRAC_COUNTS = (0, 1, 2, 3, 4, 5)
GROUPS_WITH_FOUR_ROW = ("B", "C", "D")


def coverage_maj3(fd: FracDram, bank: int, subarray: int) -> float:
    """Fraction of columns computing all six MAJ3 combos correctly."""
    correct = np.ones(fd.columns, dtype=bool)
    for pattern, operands in input_combos(fd.columns):
        expected = sum(pattern) >= 2
        result = fd.maj3(bank, operands, subarray)
        correct &= result == expected
    return float(np.mean(correct))


def coverage_fmaj(fd: FracDram, config: FMajConfig, bank: int,
                  subarray: int) -> float:
    """Fraction of columns computing all six F-MAJ combos correctly."""
    correct = np.ones(fd.columns, dtype=bool)
    for pattern, operands in input_combos(fd.columns):
        expected = sum(pattern) >= 2
        result = fd.f_maj(bank, operands, config, subarray)
        correct &= result == expected
    return float(np.mean(correct))


@dataclass(frozen=True)
class Fig9Curve:
    """Coverage vs #Frac for one (group, frac row, init) configuration."""

    group_id: str
    frac_position: int
    init_ones: bool
    #: (mean, ci_low, ci_high) per Frac count.
    points: tuple[tuple[float, float, float], ...]

    @property
    def label(self) -> str:
        init = "ones" if self.init_ones else "zeros"
        return f"R{self.frac_position + 1} init {init}"

    @property
    def best(self) -> tuple[int, float]:
        """(n_frac, coverage) at this curve's best point."""
        means = [point[0] for point in self.points]
        index = int(np.argmax(means))
        return FRAC_COUNTS[index], means[index]


@dataclass(frozen=True)
class Fig9Result:
    curves: dict[str, tuple[Fig9Curve, ...]]
    maj3_baseline: float  # group B dashed line

    def best_curve(self, group_id: str) -> Fig9Curve:
        return max(self.curves[group_id], key=lambda curve: curve.best[1])

    def best_beats_baseline(self) -> bool:
        return self.best_curve("B").best[1] > self.maj3_baseline

    def all_groups_nonzero(self) -> bool:
        return all(self.best_curve(group).best[1] > 0.0
                   for group in self.curves)

    def format_table(self) -> str:
        lines = ["Figure 9 — F-MAJ coverage vs number of Frac operations"]
        for group_id, curves in self.curves.items():
            lines.append(f"\nGroup {group_id} (mean coverage, 95% CI "
                         "across chips/sub-arrays):")
            header = ("config \\ #Frac", *[str(n) for n in FRAC_COUNTS])
            rows = []
            for curve in curves:
                rows.append((curve.label,
                             *[f"{mean:.3f}" for mean, _, _ in curve.points]))
            lines.append(markdown_table(header, rows))
            best = self.best_curve(group_id)
            lines.append(f"best: {best.label} with {best.best[0]} Frac -> "
                         f"{percent(best.best[1])}")
        lines.append(f"\nGroup B MAJ3 baseline (dashed line): "
                     f"{percent(self.maj3_baseline)}")
        verdict = ("beats" if self.best_beats_baseline() else "does NOT beat")
        lines.append(f"Group B best F-MAJ {verdict} the MAJ3 baseline "
                     "(paper: 99.8% vs 98.0%).")
        return "\n".join(lines)


def _lanes_coverage(bfd: BatchedFracDram, plan: MultiRowPlan,
                    fmaj_config: FMajConfig | None,
                    lanes: list[int]) -> np.ndarray:
    """Per-lane coverage fraction for one (plan, config) on all lanes."""
    correct = np.ones((len(lanes), bfd.columns), dtype=bool)
    for pattern, operands in input_combos(bfd.columns):
        expected = sum(pattern) >= 2
        ops = np.broadcast_to(
            np.stack(operands), (len(lanes), 3, bfd.columns))
        if fmaj_config is None:
            result = bfd.maj3(plan, ops, lanes)
        else:
            result = bfd.f_maj(plan, ops, fmaj_config, lanes)
        correct &= result == expected
    # Mean over a row of bools is an exact integer sum / C: identical to
    # the scalar per-device ``np.mean`` regardless of reduction order.
    return correct.mean(axis=1)


def _group_payload(config: ExperimentConfig, group_id: str,
                   frac_counts: tuple[int, ...]):
    """One unit's data: (group_id, curves, maj3 values or None).

    Chip serials are the trial-batch lanes: each serial's chip consumes
    exactly the command stream of the scalar sweep (MAJ3 baseline first
    for group B, then the configuration sweep in frac-position / init /
    #Frac order, sub-array targets innermost), so the per-serial coverage
    values are byte-identical at any batch width.
    """
    targets = subarray_targets(config)
    serials = list(range(config.chips_per_group))
    batch = resolve_batch(config, len(serials))
    if batch <= 1:
        devices = [make_fd(group_id, config, serial) for serial in serials]
        maj3_values = None
        if group_id == "B":
            maj3_values = [
                coverage_maj3(fd, bank, subarray)
                for fd in devices for bank, subarray in targets]
        group_curves = []
        for frac_position in range(4):
            for init_ones in (True, False):
                points = []
                for n_frac in frac_counts:
                    fmaj_config = FMajConfig(frac_position, init_ones, n_frac)
                    values = [
                        coverage_fmaj(fd, fmaj_config, bank, subarray)
                        for fd in devices
                        for bank, subarray in targets
                    ]
                    points.append(mean_confidence_interval(values))
                group_curves.append(Fig9Curve(
                    group_id, frac_position, init_ones, tuple(points)))
        return (group_id, tuple(group_curves), maj3_values)
    # Plans depend only on (group, row map, geometry) — shared by every
    # serial — so resolve them once on a scalar donor.
    donor = make_fd(group_id, config, 0)
    maj3_matrix = (np.zeros((len(serials), len(targets)))
                   if group_id == "B" else None)
    coverage: dict[tuple[int, bool, int], np.ndarray] = {
        (fp, init, n): np.zeros((len(serials), len(targets)))
        for fp in range(4) for init in (True, False) for n in frac_counts}
    for start in range(0, len(serials), batch):
        cohort = serials[start:start + batch]
        chips = [make_chip(group_id, config, serial) for serial in cohort]
        device = BatchedChip.from_chips(chips)
        if config.backend == "fused":
            from ..xir import FusedFracDram
            bfd = FusedFracDram(device)
        else:
            bfd = BatchedFracDram(device)
        lanes = bfd.all_lanes()
        rows = slice(start, start + len(cohort))
        if maj3_matrix is not None:
            for t_index, (bank, subarray) in enumerate(targets):
                plan = donor.triple_plan(bank, subarray)
                maj3_matrix[rows, t_index] = _lanes_coverage(
                    bfd, plan, None, lanes)
        for frac_position in range(4):
            for init_ones in (True, False):
                for n_frac in frac_counts:
                    fmaj_config = FMajConfig(frac_position, init_ones, n_frac)
                    for t_index, (bank, subarray) in enumerate(targets):
                        plan = donor.quad_plan(bank, subarray)
                        coverage[(frac_position, init_ones, n_frac)][
                            rows, t_index] = _lanes_coverage(
                                bfd, plan, fmaj_config, lanes)
    group_curves = []
    for frac_position in range(4):
        for init_ones in (True, False):
            points = []
            for n_frac in frac_counts:
                matrix = coverage[(frac_position, init_ones, n_frac)]
                values = [float(v) for v in matrix.reshape(-1)]
                points.append(mean_confidence_interval(values))
            group_curves.append(Fig9Curve(
                group_id, frac_position, init_ones, tuple(points)))
    maj3_values = ([float(v) for v in maj3_matrix.reshape(-1)]
                   if maj3_matrix is not None else None)
    return (group_id, tuple(group_curves), maj3_values)


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The work unit is one
# four-row-capable group; a unit's chips are fabricated from
# (master_seed, group, serial) alone, so its payload is independent of
# shard boundaries and batch width.
# ----------------------------------------------------------------------

def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                **_kwargs) -> tuple[str, ...]:
    """One work unit per four-row-capable group."""
    return GROUPS_WITH_FOUR_ROW


def run_shard(config: ExperimentConfig, units,
              frac_counts: tuple[int, ...] = FRAC_COUNTS, **_kwargs) -> list:
    """Sweep the groups in ``units``; one payload per unit."""
    return [_group_payload(config, group_id, tuple(frac_counts))
            for group_id in units]


def merge(config: ExperimentConfig, payloads, **_kwargs) -> Fig9Result:
    """Assemble per-group payloads (any order) into a :class:`Fig9Result`."""
    by_group = {payload[0]: payload for payload in payloads}
    curves: dict[str, tuple[Fig9Curve, ...]] = {}
    maj3_values: list[float] = []
    for group_id in GROUPS_WITH_FOUR_ROW:  # canonical order
        if group_id not in by_group:
            continue
        _, group_curves, group_maj3 = by_group[group_id]
        curves[group_id] = tuple(group_curves)
        if group_maj3:
            maj3_values.extend(group_maj3)
    return Fig9Result(curves, float(np.mean(maj3_values)))


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        frac_counts: tuple[int, ...] = FRAC_COUNTS) -> Fig9Result:
    return merge(config, run_shard(config, shard_units(config),
                                   frac_counts=frac_counts))
