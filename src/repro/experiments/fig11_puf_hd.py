"""Experiment F11: Figure 11 — PUF intra-/inter-HD per group.

For every Frac-capable group (A-I) we fabricate multiple modules, send
the same challenge set to each, and collect responses twice (two
measurement-noise epochs, the paper's repeated collections).  We report:

* Intra-HD — same module, same challenge, different collections (ideal 0),
* Inter-HD — same challenge, different modules of the same group, plus
  the cross-group inter-HD pool,
* the per-group mean Hamming weight printed under each group in Figure 11.

Paper expectations: intra-HD concentrates near zero (max 0.051, group G);
inter-HD clusters below 0.5 for groups with biased Hamming weight (A at
HW ~ 0.21 gives inter-HD ~ 0.33); the minimum inter-HD (paper: 0.27)
stays far above the maximum intra-HD — uniqueness is guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dram.batched import BatchedChip
from ..puf.batched_puf import BatchedFracPuf
from ..puf.frac_puf import Challenge, FracPuf
from ..puf.metrics import inter_hd_distances, intra_hd_distances, response_weights
from .base import (DEFAULT_CONFIG, ExperimentConfig, make_chip,
                   markdown_table, resolve_batch)

__all__ = ["Fig11Group", "Fig11Result", "run", "default_challenges",
           "shard_units", "run_shard", "merge"]

PAPER_EXPECTATION = (
    "Figure 11: intra-HD ~ 0 (max 0.051); inter-HD clusters reflect each "
    "group's Hamming weight (A ~ 0.21 -> inter ~ 0.33); min inter-HD "
    "(0.27) >> max intra-HD.")

FRAC_CAPABLE_GROUPS = ("A", "B", "C", "D", "E", "F", "G", "H", "I")


def default_challenges(config: ExperimentConfig,
                       n_challenges: int) -> list[Challenge]:
    """Challenges spread over banks/rows, avoiding each sub-array's
    reserved initialization row."""
    geometry = config.geometry()
    challenges = []
    for bank in range(geometry.n_banks):
        for row in range(geometry.rows_per_bank):
            if (row + 1) % geometry.rows_per_subarray == 0:
                continue  # reserved all-ones row
            challenges.append(Challenge(bank, row))
    if len(challenges) < n_challenges:
        raise ValueError(
            f"geometry provides only {len(challenges)} challenge rows, "
            f"need {n_challenges}")
    return challenges[:n_challenges]


@dataclass(frozen=True)
class Fig11Group:
    group_id: str
    intra: np.ndarray
    inter: np.ndarray
    hamming_weight: float

    @property
    def max_intra(self) -> float:
        return float(np.max(self.intra))

    @property
    def mean_inter(self) -> float:
        return float(np.mean(self.inter))


@dataclass(frozen=True)
class Fig11Result:
    groups: tuple[Fig11Group, ...]
    cross_group_inter: np.ndarray

    @property
    def max_intra(self) -> float:
        return max(group.max_intra for group in self.groups)

    @property
    def min_inter(self) -> float:
        within = min(float(np.min(group.inter)) for group in self.groups)
        return min(within, float(np.min(self.cross_group_inter)))

    def uniqueness_guaranteed(self) -> bool:
        return self.min_inter > self.max_intra

    def format_table(self) -> str:
        lines = ["Figure 11 — PUF intra-/inter-HD per group"]
        header = ("group", "mean HW", "max intra-HD", "mean intra-HD",
                  "mean inter-HD", "min inter-HD")
        rows = []
        for group in self.groups:
            rows.append((
                group.group_id,
                f"{group.hamming_weight:.2f}",
                f"{group.max_intra:.3f}",
                f"{float(np.mean(group.intra)):.3f}",
                f"{group.mean_inter:.3f}",
                f"{float(np.min(group.inter)):.3f}",
            ))
        lines.append(markdown_table(header, rows))
        lines.append(
            f"\ncross-group inter-HD: mean "
            f"{float(np.mean(self.cross_group_inter)):.3f}, min "
            f"{float(np.min(self.cross_group_inter)):.3f}")
        lines.append(
            f"overall: max intra-HD {self.max_intra:.3f} vs min inter-HD "
            f"{self.min_inter:.3f} (paper: 0.051 vs 0.27) -> uniqueness "
            + ("guaranteed" if self.uniqueness_guaranteed() else "VIOLATED"))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The work unit is one
# physical module, ``(group_id, serial)``: its two response collections
# depend only on the chip identity (fabrication is a pure function of
# master_seed/group/serial) and the per-epoch noise reseed, never on
# other modules.  All Hamming-distance pooling happens at merge time.
# ----------------------------------------------------------------------

def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                modules_per_group: int = 2,
                **_kwargs) -> tuple[tuple[str, int], ...]:
    """One work unit per (group, module serial)."""
    return tuple((group_id, serial)
                 for group_id in FRAC_CAPABLE_GROUPS
                 for serial in range(modules_per_group))


def run_shard(config: ExperimentConfig, units, n_challenges: int = 24,
              **_kwargs) -> list:
    """Collect both response epochs for each module in ``units``.

    Payloads are ``(group_id, serial, [epoch0, epoch1])`` with each
    epoch a stacked ``(n_challenges, columns)`` response array.

    Modules are evaluated as lanes of a device batch
    (:meth:`BatchedChip.from_fleet`): one cohort fabricates every module
    from its ``(group_id, serial)`` seed, evaluates the challenge set at
    noise epoch 0, reseeds all lanes to epoch 1 and evaluates again —
    byte-identical to the scalar per-module loop at any batch width.
    """
    challenges = default_challenges(config, n_challenges)
    units = list(units)
    batch = resolve_batch(config, len(units))
    if batch <= 1:
        payloads = []
        for group_id, serial in units:
            chip = make_chip(group_id, config, serial)
            puf = FracPuf(chip)
            trials = []
            for epoch in range(2):
                chip.reseed_noise(epoch)
                trials.append(puf.evaluate_many(challenges))
            payloads.append((group_id, serial, trials))
        return payloads
    payloads = []
    geometry = config.geometry()
    for start in range(0, len(units), batch):
        cohort = units[start:start + batch]
        device = BatchedChip.from_fleet(cohort, geometry=geometry,
                                        master_seed=config.master_seed,
                                        epochs=[0] * len(cohort))
        if config.backend == "fused":
            from ..xir import FusedFracPuf
            puf = FusedFracPuf(device)
        else:
            puf = BatchedFracPuf(device)
        epoch0 = puf.evaluate_many(challenges)
        puf.reseed_noise(1)
        epoch1 = puf.evaluate_many(challenges)
        payloads.extend(
            (group_id, serial, [epoch0[lane].copy(), epoch1[lane].copy()])
            for lane, (group_id, serial) in enumerate(cohort))
    return payloads


def merge(config: ExperimentConfig, payloads, **_kwargs) -> Fig11Result:
    """Pool per-module collections into intra/inter-HD statistics."""
    by_group: dict[str, dict[int, list[np.ndarray]]] = {}
    for group_id, serial, trials in payloads:
        by_group.setdefault(group_id, {})[serial] = trials

    group_results = []
    first_collections: dict[str, list[np.ndarray]] = {}
    for group_id in FRAC_CAPABLE_GROUPS:
        if group_id not in by_group:
            continue
        modules = by_group[group_id]
        collections_by_module = [modules[serial]
                                 for serial in sorted(modules)]
        intra = np.concatenate([
            intra_hd_distances(trials) for trials in collections_by_module])
        first = [trials[0] for trials in collections_by_module]
        inter = inter_hd_distances(first)
        weight = float(np.mean([response_weights(responses)
                                for responses in first]))
        first_collections[group_id] = first
        group_results.append(Fig11Group(group_id, intra, inter, weight))

    cross: list[float] = []
    group_ids = list(first_collections)
    for index_a in range(len(group_ids)):
        for index_b in range(index_a + 1, len(group_ids)):
            responses_a = first_collections[group_ids[index_a]][0]
            responses_b = first_collections[group_ids[index_b]][0]
            cross.extend(
                float(np.mean(ra ^ rb))
                for ra, rb in zip(responses_a, responses_b))
    return Fig11Result(tuple(group_results), np.asarray(cross))


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        n_challenges: int = 24, modules_per_group: int = 2) -> Fig11Result:
    units = shard_units(config, modules_per_group=modules_per_group)
    return merge(config, run_shard(config, units, n_challenges=n_challenges))
