"""Run every experiment and print the paper-style tables.

Usage::

    python -m repro.experiments.runner            # quick configuration
    python -m repro.experiments.runner --only fig9 fig10
    python -m repro.experiments.runner --only fig6 fig11 --workers 4
    python -m repro.experiments.runner --list

Every experiment is fleet-capable: ``--workers N`` fans its work units
out over N worker processes (see :mod:`repro.fleet`); ``--workers 0`` —
the default, also settable via ``$REPRO_FLEET_WORKERS`` — runs serially.
``--batch N`` caps the lane width of the batched execution engine
(default: auto; 1 = scalar) — a lane is a trial for fig6/fig9/fig10/
nist and a module for the device sweeps fig7/fig8/fig11/fig12/table1;
every setting produces byte-identical results, so the result cache is
keyed with the batch knob normalized out.  Results are memoized in a
content-addressed on-disk cache keyed by (experiment, config, package
version); disable with ``--no-cache``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from . import (
    ddr4_outlook,
    fig6_retention,
    fig7_maj3,
    fig8_half_m,
    fig9_fmaj_coverage,
    fig10_fmaj_stability,
    fig11_puf_hd,
    fig12_puf_env,
    latency,
    nist_randomness,
    table1,
    timing_sweep,
)
from .base import DEFAULT_CONFIG, ExperimentConfig

__all__ = ["EXPERIMENTS", "run_experiment", "cache_stats",
           "format_cache_stats", "record_cache_notes", "main"]

#: name -> (description, callable(config) -> result with format_table()).
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "table1": ("Table I — group capability matrix",
               lambda config: table1.run(config)),
    "fig6": ("Figure 6 — retention profiles under Frac",
             lambda config: fig6_retention.run(config)),
    "fig7": ("Figure 7 — MAJ3 verification of Frac",
             lambda config: fig7_maj3.run(config)),
    "fig8": ("Figure 8 — Half-m evaluation",
             lambda config: fig8_half_m.run(config)),
    "fig9": ("Figure 9 — F-MAJ coverage sweep",
             lambda config: fig9_fmaj_coverage.run(config)),
    "fig10": ("Figure 10 — F-MAJ stability CDFs",
              lambda config: fig10_fmaj_stability.run(config)),
    "fig11": ("Figure 11 — PUF intra/inter Hamming distance",
              lambda config: fig11_puf_hd.run(config)),
    "fig12": ("Figure 12 — PUF under voltage/temperature changes",
              lambda config: fig12_puf_env.run(config)),
    "nist": ("Section VI-B2 — NIST SP800-22 on whitened responses",
             lambda config: nist_randomness.run(config)),
    "latency": ("Latency accounting (7/18 cycles, +29%, 1.5 us)",
                lambda config: latency.run()),
    "timing": ("Timing-window exploration (Frac/glitch windows)",
               lambda config: timing_sweep.run(config)),
    "ddr4": ("Section VII outlook on hypothetical DDR4 profiles",
             lambda config: ddr4_outlook.run(config)),
}


def run_experiment(name: str, config: ExperimentConfig = DEFAULT_CONFIG, *,
                   workers: int = 0, cache=None):
    """Run one experiment by name and return its result object.

    ``workers > 0`` routes the experiment through
    :class:`repro.fleet.FleetExecutor` (every experiment speaks the
    fleet shard protocol).  Passing a
    :class:`repro.fleet.ResultCache` as ``cache`` memoizes the result on
    disk — its ``hits``/``stores`` counters tell the caller whether the
    result was recomputed.  Serial, parallel, batched, and cached runs
    of the same (experiment, config, version) are all byte-identical;
    the cache key therefore normalizes ``config.batch`` out, so a
    batched run can serve a later scalar request and vice versa.
    """
    try:
        _, runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {', '.join(EXPERIMENTS)}"
        ) from None

    from ..telemetry.registry import active as telemetry_active
    from .base import stage

    telemetry = telemetry_active()
    key = None
    if cache is not None:
        from ..fleet import cache_key

        # Batch width and backend choice never change results (the
        # byte-identity / conformance contract), so they must not change
        # the cache address either.
        keyed_config = config
        for knob in ("batch", "backend"):
            if hasattr(keyed_config, knob):
                keyed_config = keyed_config.scaled(**{knob: None})
        key = cache_key(name, keyed_config)
        hit, result = cache.fetch(key)
        if hit:
            if telemetry is not None:
                telemetry.count("experiment.cache_hits")
            return result

    from ..fleet import is_shardable

    with stage(f"experiment.{name}"):
        if workers and is_shardable(name):
            from ..fleet import FleetExecutor

            result = FleetExecutor(workers).run(name, config).result
        else:
            result = runner(config)
    if telemetry is not None:
        telemetry.count("experiment.runs")

    if cache is not None and key is not None:
        cache.store(key, result, meta={"experiment": name,
                                       "config": repr(config)})
    return result


def cache_stats() -> dict[str, dict[str, int]]:
    """Plan-cache and xir-compile-cache statistics for this process.

    Imports lazily so asking for statistics never pulls the fused
    pipeline (or NumPy-heavy executor modules) into processes that only
    run the scalar engine.
    """
    from ..controller.plan import plan_cache_info
    from ..xir import xir_cache_info

    return {"plan": plan_cache_info(), "xir": xir_cache_info()}


def format_cache_stats(stats: dict[str, dict[str, int]] | None = None) -> str:
    """One-line human rendering, printed by ``--cache-stats``."""
    stats = stats if stats is not None else cache_stats()
    plan, xir = stats["plan"], stats["xir"]
    return (f"cache stats: plan {plan['hits']} hits / "
            f"{plan['misses']} misses (size {plan['size']}/"
            f"{plan['capacity']}); xir {xir['misses']} compiles / "
            f"{xir['hits']} reuses (size {xir['size']}/{xir['capacity']})")


def record_cache_notes(telemetry) -> None:
    """Attach cache statistics to a telemetry session as *notes*.

    Notes are execution-shape metadata: hit/miss counts vary with
    worker sharding and run history, so they are excluded from
    deterministic snapshots (the conformance suite compares counters
    only) while still appearing in ``format_summary`` output.
    """
    stats = cache_stats()
    telemetry.note("plan.cache_hits", stats["plan"]["hits"])
    telemetry.note("plan.cache_misses", stats["plan"]["misses"])
    telemetry.note("xir.compiles", stats["xir"]["misses"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="FracDRAM reproduction experiment runner")
    parser.add_argument("--only", nargs="*", metavar="NAME",
                        help="run only the named experiments")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    parser.add_argument("--seed", type=int, default=DEFAULT_CONFIG.master_seed)
    parser.add_argument("--columns", type=int, default=DEFAULT_CONFIG.columns,
                        help="row width in bits (paper: 65536)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes to shard experiments over "
                             "(0 = serial; -1 = one per CPU; default "
                             "$REPRO_FLEET_WORKERS or 0)")
    parser.add_argument("--batch", type=int, default=None, metavar="B",
                        help="lane width for the batched execution engine "
                             "(trials or modules per vector op; default: "
                             "auto; 1 = scalar); results are byte-identical "
                             "at every setting")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="execution backend (see repro.backends; "
                             "default: batched); every registered backend "
                             "is conformance-gated to byte-identical "
                             "results")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute results even if cached")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache directory (default "
                             "$REPRO_FLEET_CACHE or ~/.cache/repro-fleet)")
    parser.add_argument("--telemetry", action="store_true",
                        help="collect counters/phase timers and print a "
                             "summary after the run")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a repro-trace/1 JSON-lines event trace "
                             "(implies --telemetry)")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print plan/xir compile-cache statistics "
                             "after the run")
    arguments = parser.parse_args(argv)

    if arguments.list:
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:<10s} {description}")
        return 0

    from contextlib import nullcontext

    from ..fleet import ResultCache, resolve_workers
    from ..telemetry import session as telemetry_session

    workers = resolve_workers(arguments.workers)
    cache = None if arguments.no_cache else ResultCache(arguments.cache_dir)

    if arguments.backend is not None:
        from ..backends import BackendError, get_backend

        try:
            get_backend(arguments.backend)  # fail fast on unknown names
        except BackendError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    config = DEFAULT_CONFIG.scaled(master_seed=arguments.seed,
                                   columns=arguments.columns,
                                   batch=arguments.batch,
                                   backend=arguments.backend)
    names = arguments.only or list(EXPERIMENTS)
    use_telemetry = arguments.telemetry or arguments.trace_out is not None
    context = (telemetry_session(trace_path=arguments.trace_out)
               if use_telemetry else nullcontext(None))
    with context as telemetry:
        for name in names:
            description, _ = EXPERIMENTS[name]
            print("=" * 72)
            print(f"{name}: {description}")
            print("=" * 72)
            started = time.time()
            hits_before = cache.hits if cache is not None else 0
            result = run_experiment(name, config, workers=workers, cache=cache)
            print(result.format_table())
            cached = cache is not None and cache.hits > hits_before
            suffix = " (cache hit)" if cached else ""
            print(f"\n[{name} completed in "
                  f"{time.time() - started:.1f}s{suffix}]\n")
        if telemetry is not None:
            record_cache_notes(telemetry)
            print(telemetry.format_summary())
            if arguments.trace_out:
                print(f"trace written to {arguments.trace_out}")
    if arguments.cache_stats:
        print(format_cache_stats())
    return 0


if __name__ == "__main__":
    sys.exit(main())
