"""Experiment F7: Figure 7 — MAJ3 verification of Frac (X1/X2 outcomes).

Runs the Section IV-B2 destructive verification on group B for 0-5 Frac
operations in the four configurations of Figure 7: fractional values in
(R1, R2) or (R1, R3), starting from all ones or all zeros.  For every
setting we report the proportion of columns yielding each (X1, X2)
combination.

Paper expectation: with no Frac, X1 = X2 = the initial value; as Frac
operations accumulate, the combination X1 = 1, X2 = 0 (the fractional-
value signature) dominates and is the only outcome for >= 2 Frac ops.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..core.batched_ops import BatchedFracDram
from ..core.verify import (COMBO_LABELS, batched_verify_frac_by_maj3,
                           verify_frac_by_maj3)
from ..dram.batched import BatchedChip
from .base import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    make_fd,
    markdown_table,
    resolve_batch,
    subarray_targets,
)

__all__ = ["Fig7Setting", "Fig7Result", "run", "shard_units", "run_shard",
           "merge"]

PAPER_EXPECTATION = (
    "Figure 7: baseline (0 Frac) gives X1=X2=init value; X1=1,X2=0 "
    "dominates from 1 Frac and is the only outcome for >= 2 Frac ops, for "
    "both row choices and both initial values.")

FRAC_COUNTS = (0, 1, 2, 3, 4, 5)

#: The four subfigures of Figure 7.
SETTINGS: tuple[tuple[str, bool], ...] = (
    ("R1R2", True),   # (a) frac in R1,R2; init ones
    ("R1R2", False),  # (b) frac in R1,R2; init zeros
    ("R1R3", True),   # (c) frac in R1,R3; init ones
    ("R1R3", False),  # (d) frac in R1,R3; init zeros
)


@dataclass(frozen=True)
class Fig7Setting:
    """Results for one subfigure: combo fractions per Frac count."""

    frac_rows: str
    init_ones: bool
    #: fractions[n_frac_index][combo_label] averaged over sub-arrays.
    fractions: tuple[dict[str, float], ...]

    @property
    def label(self) -> str:
        init = "ones" if self.init_ones else "zeros"
        return f"frac in {self.frac_rows}, init {init}"

    def verified_at(self, n_frac_index: int) -> float:
        return self.fractions[n_frac_index]["X1=1,X2=0"]


@dataclass(frozen=True)
class Fig7Result:
    settings: tuple[Fig7Setting, ...]

    def format_table(self) -> str:
        lines = ["Figure 7 — MAJ3 verification outcomes on group B"]
        for setting in self.settings:
            lines.append(f"\n({setting.label})")
            header = ("#Frac", *COMBO_LABELS)
            rows = []
            for index, n_frac in enumerate(FRAC_COUNTS):
                combo = setting.fractions[index]
                rows.append((n_frac, *[f"{combo[label]:.3f}"
                                       for label in COMBO_LABELS]))
            lines.append(markdown_table(header, rows))
        return "\n".join(lines)

    def fractional_values_proven(self) -> bool:
        """The paper's headline claim: X1=1,X2=0 dominates for >=2 Frac."""
        return all(
            setting.verified_at(index) > 0.95
            for setting in self.settings
            for index, n_frac in enumerate(FRAC_COUNTS) if n_frac >= 2)


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The work unit is one
# chip under one (setting, Frac count) cell, ``(setting_index, n_frac,
# serial)``: the scalar loop fabricates a fresh chip per cell anyway, so
# units never share state.  Averaging happens at merge time, replaying
# the scalar serial-major/target-minor float accumulation order.
# ----------------------------------------------------------------------

def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                **_kwargs) -> tuple[tuple[int, int, int], ...]:
    """One work unit per (setting, Frac count, chip serial)."""
    return tuple((setting_index, n_frac, serial)
                 for setting_index in range(len(SETTINGS))
                 for n_frac in FRAC_COUNTS
                 for serial in range(config.chips_per_group))


def run_shard(config: ExperimentConfig, units, group_id: str = "B",
              **_kwargs) -> list:
    """Run the verification procedure for each unit in ``units``.

    Payloads are ``(setting_index, n_frac, serial, combos)`` with
    ``combos`` one combo-fraction dict per sub-array target in
    :func:`subarray_targets` order.  Serials within one (setting,
    Frac count) cell are lanes of a :meth:`BatchedChip.from_fleet`
    device cohort; the shared multi-row plan is resolved once on a
    scalar donor — byte-identical at any batch width.
    """
    units = list(units)
    batch = resolve_batch(config, config.chips_per_group)
    if batch <= 1:
        payloads = []
        for setting_index, n_frac, serial in units:
            frac_rows, init_ones = SETTINGS[setting_index]
            fd = make_fd(group_id, config, serial)
            combos = []
            for bank, subarray in subarray_targets(config):
                result = verify_frac_by_maj3(
                    fd, bank, frac_rows=frac_rows, init_ones=init_ones,
                    n_frac=n_frac, subarray=subarray)
                combos.append(result.combo_fractions())
            payloads.append((setting_index, n_frac, serial, combos))
        return payloads
    donor = make_fd(group_id, config, serial=0)
    plans = [donor.triple_plan(bank, subarray)
             for bank, subarray in subarray_targets(config)]
    by_cell: dict[tuple[int, int], list[int]] = {}
    for setting_index, n_frac, serial in units:
        by_cell.setdefault((setting_index, n_frac), []).append(serial)
    payloads = []
    geometry = config.geometry()
    for (setting_index, n_frac), serials in by_cell.items():
        frac_rows, init_ones = SETTINGS[setting_index]
        for start in range(0, len(serials), batch):
            cohort = serials[start:start + batch]
            device = BatchedChip.from_fleet(
                [(group_id, serial) for serial in cohort],
                geometry=geometry, master_seed=config.master_seed)
            bfd = BatchedFracDram(device)
            per_lane: list[list[dict[str, float]]] = [[] for _ in cohort]
            for plan in plans:
                results = batched_verify_frac_by_maj3(
                    bfd, plan, frac_rows=frac_rows, init_ones=init_ones,
                    n_frac=n_frac)
                for lane, result in enumerate(results):
                    per_lane[lane].append(result.combo_fractions())
            payloads.extend((setting_index, n_frac, serial, per_lane[lane])
                            for lane, serial in enumerate(cohort))
    return payloads


def merge(config: ExperimentConfig, payloads, **_kwargs) -> Fig7Result:
    """Average combo fractions in the scalar accumulation order."""
    by_unit = {(setting_index, n_frac, serial): combos
               for setting_index, n_frac, serial, combos in payloads}
    serials = sorted({serial for (_, _, serial) in by_unit})
    settings = []
    for setting_index, (frac_rows, init_ones) in enumerate(SETTINGS):
        per_count: list[dict[str, float]] = []
        for n_frac in FRAC_COUNTS:
            combo_sums = {label: 0.0 for label in COMBO_LABELS}
            samples = 0
            for serial in serials:
                for combo in by_unit[(setting_index, n_frac, serial)]:
                    for label, value in combo.items():
                        combo_sums[label] += value
                    samples += 1
            per_count.append({label: value / samples
                              for label, value in combo_sums.items()})
        settings.append(Fig7Setting(frac_rows, init_ones, tuple(per_count)))
    return Fig7Result(tuple(settings))


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        group_id: str = "B") -> Fig7Result:
    """Run all four Figure 7 settings over every chip and sub-array."""
    units = shard_units(config)
    return merge(config, run_shard(config, units, group_id=group_id))
