"""Experiment F6: Figure 6 — retention-time profiles under 0-5 Frac ops.

For each Frac-capable group (A-I) we profile sampled rows: the PDF of
retention buckets per Frac count (the heat-map columns of Figure 6) and
the three-way cell classification printed in the figure's brackets as
``[long retention, monotonic decrease, others]``.

Paper expectation: issuing more Frac operations shifts the PDF mass toward
shorter retention; on average ~55% of cells show a monotonic decrease,
~44% stay in the > 12 h bucket, < 1% behave irregularly (VRT).  Groups
J/K/L show no change at all and are omitted from the paper's plot; we
include them with a flat profile check instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.retention import (
    N_BUCKETS,
    RETENTION_BUCKET_LABELS,
    BatchedRetentionProfiler,
    CellCategory,
    RetentionProfile,
    RetentionProfiler,
)
from ..core.batched_ops import BatchedFracDram
from ..dram.batched import BatchedChip
from ..dram.rng import derive_rng
from ..dram.vendor import GROUPS
from .base import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    make_chip,
    make_fd,
    markdown_table,
    percent,
    resolve_batch,
)

__all__ = ["Fig6GroupResult", "Fig6Result", "run", "shard_units",
           "run_shard", "merge"]

PAPER_EXPECTATION = (
    "Figure 6: PDF mass moves to shorter retention buckets as Frac count "
    "rises; on average ~55% of cells decrease monotonically, <1% are "
    "irregular; groups J/K/L are unaffected.")

FRAC_COUNTS = (0, 1, 2, 3, 4, 5)


@dataclass(frozen=True)
class Fig6GroupResult:
    """One group's heat-map column data and category split."""

    group_id: str
    profile: RetentionProfile

    @property
    def categories(self) -> dict[str, float]:
        return self.profile.category_fractions()

    def bracket(self) -> str:
        """The paper's ``[long, monotonic, others]`` annotation."""
        cats = self.categories
        return (f"[{cats[CellCategory.LONG]:.2f}, "
                f"{cats[CellCategory.MONOTONIC]:.2f}, "
                f"{cats[CellCategory.OTHER]:.2f}]")


@dataclass(frozen=True)
class Fig6Result:
    groups: tuple[Fig6GroupResult, ...]
    unaffected_groups: tuple[str, ...]

    def mean_monotonic_fraction(self) -> float:
        return float(np.mean(
            [g.categories[CellCategory.MONOTONIC] for g in self.groups]))

    def format_table(self) -> str:
        lines = ["Figure 6 — retention-time PDFs (rows: buckets; cols: #Frac)"]
        for group in self.groups:
            lines.append(f"\nGroup {group.group_id}  {group.bracket()} "
                         "[long, monotonic, others]")
            pdf = group.profile.pdf_matrix()
            header = ("bucket \\ #Frac", *[str(n) for n in FRAC_COUNTS])
            rows = []
            for bucket in range(N_BUCKETS - 1, -1, -1):
                rows.append((RETENTION_BUCKET_LABELS[bucket],
                             *[f"{pdf[i, bucket]:.2f}"
                               for i in range(len(FRAC_COUNTS))]))
            lines.append(markdown_table(header, rows))
        lines.append(
            f"\nMean monotonic-decrease fraction: "
            f"{percent(self.mean_monotonic_fraction())} (paper: ~55%)")
        lines.append(
            "Groups unaffected by Frac (omitted from the paper's plot): "
            + ", ".join(self.unaffected_groups))
        return "\n".join(lines)


def _sample_rows(config: ExperimentConfig, rows_per_bank_sample: int,
                 rng: np.random.Generator, rows_per_bank: int,
                 n_banks: int) -> list[tuple[int, int]]:
    targets = []
    for bank in range(n_banks):
        rows = rng.choice(rows_per_bank, size=min(rows_per_bank_sample,
                                                  rows_per_bank), replace=False)
        targets.extend((bank, int(row)) for row in rows)
    return targets


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The work unit is one
# vendor group; each unit draws its row sample from a dedicated RNG
# stream derived from (master_seed, "fig6", group_id), so a unit's
# result is independent of which shard executes it or in what order.
# ----------------------------------------------------------------------

def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                **_kwargs) -> tuple[str, ...]:
    """One work unit per vendor group, in Table I order."""
    return tuple(GROUPS)


def _classify(group_id: str, retention: RetentionProfile):
    """Payload for one profiled group (shared by both execution paths)."""
    if not GROUPS[group_id].frac_capable:
        # Sanity check the paper's omission: Frac must have no effect
        # (up to VRT-cell noise on repeated measurements).
        baseline = retention.buckets[0]
        changed = max(
            float(np.mean(retention.buckets[i] != baseline))
            for i in range(len(FRAC_COUNTS)))
        kind = "unaffected" if changed < 0.02 else "irregular"
        return (kind, group_id, None)
    return ("capable", group_id, retention)


def _unit_targets(config: ExperimentConfig, group_id: str,
                  rows_per_bank_sample: int) -> list[tuple[int, int]]:
    geometry = config.geometry()
    rng = derive_rng(config.master_seed, "fig6", group_id)
    return _sample_rows(config, rows_per_bank_sample, rng,
                        geometry.rows_per_bank, geometry.n_banks)


def run_shard(config: ExperimentConfig, units,
              rows_per_bank_sample: int = 2, **_kwargs) -> list:
    """Profile the groups in ``units``; one payload per unit.

    Payloads are ``(kind, group_id, profile)`` with ``kind`` one of
    ``"capable"`` (profile attached), ``"unaffected"`` (Frac provably
    has no effect) or ``"irregular"`` (non-capable group that failed
    the flat-profile sanity check).

    Groups are profiled as lanes of one trial batch (one lane per unit,
    ``config.batch`` caps the cohort width); lane ``i`` consumes exactly
    the command stream and noise draws of a scalar run on group ``i``,
    so payloads are byte-identical at any batch width.
    """
    units = list(units)
    batch = resolve_batch(config, len(units))
    if batch <= 1:
        payloads = []
        for group_id in units:
            fd = make_fd(group_id, config, serial=0)
            targets = _unit_targets(config, group_id, rows_per_bank_sample)
            retention = RetentionProfiler(fd).profile_rows(targets, FRAC_COUNTS)
            payloads.append(_classify(group_id, retention))
        return payloads
    payloads = []
    for start in range(0, len(units), batch):
        cohort = units[start:start + batch]
        chips = [make_chip(group_id, config, serial=0) for group_id in cohort]
        per_lane_targets = [
            _unit_targets(config, group_id, rows_per_bank_sample)
            for group_id in cohort]
        bfd = BatchedFracDram(BatchedChip.from_chips(chips))
        if config.backend == "fused":
            from ..xir import FusedRetentionProfiler
            profiler = FusedRetentionProfiler(bfd)
        else:
            profiler = BatchedRetentionProfiler(bfd)
        retentions = profiler.profile_rows(per_lane_targets, FRAC_COUNTS)
        payloads.extend(_classify(group_id, retention)
                        for group_id, retention in zip(cohort, retentions))
    return payloads


def merge(config: ExperimentConfig, payloads, **_kwargs) -> Fig6Result:
    """Assemble per-group payloads (any order) into a :class:`Fig6Result`."""
    by_group = {group_id: (kind, retention)
                for kind, group_id, retention in payloads}
    results = []
    unaffected = []
    for group_id in GROUPS:  # canonical Table I order
        if group_id not in by_group:
            continue
        kind, retention = by_group[group_id]
        if kind == "capable":
            results.append(Fig6GroupResult(group_id, retention))
        elif kind == "unaffected":
            unaffected.append(group_id)
    return Fig6Result(tuple(results), tuple(unaffected))


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        rows_per_bank_sample: int = 2) -> Fig6Result:
    """Profile retention for every Frac-capable group."""
    return merge(config, run_shard(config, shard_units(config),
                                   rows_per_bank_sample=rows_per_bank_sample))
