"""Experiment F12: Figure 12 — PUF robustness to supply voltage and
temperature.

We enroll responses at the nominal operating point (1.5 V, 20 C), then
re-collect under (a) a reduced supply of 1.4 V and (b) temperatures from
20 C to 60 C, each in a fresh measurement-noise epoch (the paper's
collections were days to months apart).  Intra-HD compares each module's
off-nominal responses with its own enrollment; inter-HD compares across
modules under the changed environment.

Paper expectations: at 1.4 V the max intra-HD is 0.07 and the min
inter-HD 0.30; intra-HD grows mildly with temperature but the maximum
stays far below the minimum inter-HD — the PUF is robust because the
sense amplifier is a ratio-metric comparator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dram.batched import BatchedChip
from ..dram.environment import Environment
from ..puf.batched_puf import BatchedFracPuf
from ..puf.frac_puf import FracPuf
from ..puf.metrics import inter_hd_distances
from .base import (DEFAULT_CONFIG, ExperimentConfig, make_chip,
                   markdown_table, resolve_batch)
from .fig11_puf_hd import default_challenges

__all__ = ["EnvCondition", "Fig12Result", "run", "shard_units", "run_shard",
           "merge"]

PAPER_EXPECTATION = (
    "Figure 12: max intra-HD 0.07 at Vdd=1.4V with min inter-HD 0.30; "
    "intra-HD rises mildly with temperature but max intra stays well "
    "below min inter at every condition.")

TEMPERATURES_C = (20.0, 30.0, 40.0, 50.0, 60.0)
GROUPS_TESTED = ("A", "B", "E", "G", "I")


@dataclass(frozen=True)
class EnvCondition:
    """HD statistics for one environmental condition."""

    label: str
    max_intra: float
    mean_intra: float
    min_inter: float

    @property
    def separated(self) -> bool:
        return self.min_inter > self.max_intra


@dataclass(frozen=True)
class Fig12Result:
    voltage_condition: EnvCondition
    temperature_conditions: tuple[EnvCondition, ...]

    def robust(self) -> bool:
        return (self.voltage_condition.separated
                and all(c.separated for c in self.temperature_conditions))

    def intra_grows_with_temperature(self) -> bool:
        means = [c.mean_intra for c in self.temperature_conditions]
        return means[-1] >= means[0]

    def format_table(self) -> str:
        lines = ["Figure 12 — PUF under supply-voltage and temperature "
                 "changes"]
        header = ("condition", "max intra-HD", "mean intra-HD",
                  "min inter-HD", "separated")
        rows = []
        for condition in (self.voltage_condition,
                          *self.temperature_conditions):
            rows.append((condition.label,
                         f"{condition.max_intra:.3f}",
                         f"{condition.mean_intra:.4f}",
                         f"{condition.min_inter:.3f}",
                         "yes" if condition.separated else "NO"))
        lines.append(markdown_table(header, rows))
        lines.append(
            "\nPaper: max intra-HD 0.07 / min inter-HD 0.30 at 1.4 V; "
            "robust across 20-60 C.")
        return "\n".join(lines)


def _condition(label: str,
               enrollment: dict[tuple[str, int], np.ndarray],
               probe: dict[tuple[str, int], np.ndarray]) -> EnvCondition:
    intra = []
    for key, enrolled in enrollment.items():
        for response_ref, response_new in zip(enrolled, probe[key]):
            intra.append(float(np.mean(response_ref ^ response_new)))
    inter = inter_hd_distances(list(probe.values()))
    return EnvCondition(
        label=label,
        max_intra=float(np.max(intra)),
        mean_intra=float(np.mean(intra)),
        min_inter=float(np.min(inter)),
    )


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The work unit is one
# module under one environmental condition, ``(condition, group_id,
# serial)``: each collection fabricates a fresh chip under that
# environment and reseeds its noise to the condition's epoch, so units
# never share state.  Condition 0 is the nominal enrollment, 1 the
# 1.4 V supply, 2+i temperature ``TEMPERATURES_C[i]``.
# ----------------------------------------------------------------------

def _environment(condition: int) -> Environment:
    nominal = Environment()
    if condition == 0:
        return nominal
    if condition == 1:
        return nominal.with_vdd(1.4)
    return nominal.with_temperature(TEMPERATURES_C[condition - 2])


def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                modules_per_group: int = 2,
                **_kwargs) -> tuple[tuple[int, str, int], ...]:
    """One work unit per (condition, group, module serial)."""
    return tuple((condition, group_id, serial)
                 for condition in range(2 + len(TEMPERATURES_C))
                 for group_id in GROUPS_TESTED
                 for serial in range(modules_per_group))


def run_shard(config: ExperimentConfig, units, n_challenges: int = 16,
              **_kwargs) -> list:
    """Collect the response stack for each (condition, module) unit.

    Units of one condition share an environment and noise epoch, so they
    batch as lanes of one :meth:`BatchedChip.from_fleet` device cohort;
    payloads are ``((condition, group_id, serial), responses)`` with
    ``responses`` a ``(n_challenges, columns)`` array, byte-identical to
    the scalar per-module collection at any batch width.
    """
    challenges = default_challenges(config, n_challenges)
    units = list(units)
    batch = resolve_batch(config, len(units))
    if batch <= 1:
        payloads = []
        for condition, group_id, serial in units:
            chip = make_chip(group_id, config, serial,
                             environment=_environment(condition))
            chip.reseed_noise(condition)
            puf = FracPuf(chip)
            payloads.append(((condition, group_id, serial),
                             puf.evaluate_many(challenges)))
        return payloads
    by_condition: dict[int, list[tuple[int, str, int]]] = {}
    for unit in units:
        by_condition.setdefault(unit[0], []).append(unit)
    payloads = []
    geometry = config.geometry()
    for condition, condition_units in by_condition.items():
        environment = _environment(condition)
        for start in range(0, len(condition_units), batch):
            cohort = condition_units[start:start + batch]
            device = BatchedChip.from_fleet(
                [(group_id, serial) for _, group_id, serial in cohort],
                geometry=geometry, master_seed=config.master_seed,
                environment=environment, epochs=[condition] * len(cohort))
            stacks = BatchedFracPuf(device).evaluate_many(challenges)
            payloads.extend((unit, stacks[lane].copy())
                            for lane, unit in enumerate(cohort))
    return payloads


def merge(config: ExperimentConfig, payloads,
          **_kwargs) -> Fig12Result:
    """Pool per-condition collections into the paper's HD statistics.

    Response dictionaries are rebuilt in the scalar collection order
    (group-major, serial ascending) so every float accumulation in
    :func:`_condition` replays the scalar run exactly.
    """
    by_unit = {unit: responses for unit, responses in payloads}
    serials = sorted({serial for (_, _, serial) in by_unit})

    def collection(condition: int) -> dict[tuple[str, int], np.ndarray]:
        return {(group_id, serial): by_unit[(condition, group_id, serial)]
                for group_id in GROUPS_TESTED
                for serial in serials}

    enrollment = collection(0)
    voltage_condition = _condition("Vdd 1.5V -> 1.4V", enrollment,
                                   collection(1))
    temperature_conditions = tuple(
        _condition(f"{temperature:.0f} C", enrollment, collection(2 + index))
        for index, temperature in enumerate(TEMPERATURES_C))
    return Fig12Result(voltage_condition, temperature_conditions)


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        n_challenges: int = 16, modules_per_group: int = 2) -> Fig12Result:
    units = shard_units(config, modules_per_group=modules_per_group)
    return merge(config, run_shard(config, units, n_challenges=n_challenges))
