"""Experiment F12: Figure 12 — PUF robustness to supply voltage and
temperature.

We enroll responses at the nominal operating point (1.5 V, 20 C), then
re-collect under (a) a reduced supply of 1.4 V and (b) temperatures from
20 C to 60 C, each in a fresh measurement-noise epoch (the paper's
collections were days to months apart).  Intra-HD compares each module's
off-nominal responses with its own enrollment; inter-HD compares across
modules under the changed environment.

Paper expectations: at 1.4 V the max intra-HD is 0.07 and the min
inter-HD 0.30; intra-HD grows mildly with temperature but the maximum
stays far below the minimum inter-HD — the PUF is robust because the
sense amplifier is a ratio-metric comparator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dram.environment import Environment
from ..puf.frac_puf import Challenge, FracPuf
from ..puf.metrics import inter_hd_distances
from .base import DEFAULT_CONFIG, ExperimentConfig, make_chip, markdown_table
from .fig11_puf_hd import default_challenges

__all__ = ["EnvCondition", "Fig12Result", "run"]

PAPER_EXPECTATION = (
    "Figure 12: max intra-HD 0.07 at Vdd=1.4V with min inter-HD 0.30; "
    "intra-HD rises mildly with temperature but max intra stays well "
    "below min inter at every condition.")

TEMPERATURES_C = (20.0, 30.0, 40.0, 50.0, 60.0)
GROUPS_TESTED = ("A", "B", "E", "G", "I")


@dataclass(frozen=True)
class EnvCondition:
    """HD statistics for one environmental condition."""

    label: str
    max_intra: float
    mean_intra: float
    min_inter: float

    @property
    def separated(self) -> bool:
        return self.min_inter > self.max_intra


@dataclass(frozen=True)
class Fig12Result:
    voltage_condition: EnvCondition
    temperature_conditions: tuple[EnvCondition, ...]

    def robust(self) -> bool:
        return (self.voltage_condition.separated
                and all(c.separated for c in self.temperature_conditions))

    def intra_grows_with_temperature(self) -> bool:
        means = [c.mean_intra for c in self.temperature_conditions]
        return means[-1] >= means[0]

    def format_table(self) -> str:
        lines = ["Figure 12 — PUF under supply-voltage and temperature "
                 "changes"]
        header = ("condition", "max intra-HD", "mean intra-HD",
                  "min inter-HD", "separated")
        rows = []
        for condition in (self.voltage_condition,
                          *self.temperature_conditions):
            rows.append((condition.label,
                         f"{condition.max_intra:.3f}",
                         f"{condition.mean_intra:.4f}",
                         f"{condition.min_inter:.3f}",
                         "yes" if condition.separated else "NO"))
        lines.append(markdown_table(header, rows))
        lines.append(
            "\nPaper: max intra-HD 0.07 / min inter-HD 0.30 at 1.4 V; "
            "robust across 20-60 C.")
        return "\n".join(lines)


def _collect(config: ExperimentConfig, challenges: list[Challenge],
             environment: Environment, epoch: int,
             modules_per_group: int) -> dict[tuple[str, int], np.ndarray]:
    responses = {}
    for group_id in GROUPS_TESTED:
        for serial in range(modules_per_group):
            chip = make_chip(group_id, config, serial, environment=environment)
            chip.reseed_noise(epoch)
            puf = FracPuf(chip)
            responses[(group_id, serial)] = puf.evaluate_many(challenges)
    return responses


def _condition(label: str,
               enrollment: dict[tuple[str, int], np.ndarray],
               probe: dict[tuple[str, int], np.ndarray]) -> EnvCondition:
    intra = []
    for key, enrolled in enrollment.items():
        for response_ref, response_new in zip(enrolled, probe[key]):
            intra.append(float(np.mean(response_ref ^ response_new)))
    inter = inter_hd_distances(list(probe.values()))
    return EnvCondition(
        label=label,
        max_intra=float(np.max(intra)),
        mean_intra=float(np.mean(intra)),
        min_inter=float(np.min(inter)),
    )


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        n_challenges: int = 16, modules_per_group: int = 2) -> Fig12Result:
    challenges = default_challenges(config, n_challenges)
    nominal = Environment()
    enrollment = _collect(config, challenges, nominal, epoch=0,
                          modules_per_group=modules_per_group)

    low_vdd = _collect(config, challenges, nominal.with_vdd(1.4), epoch=1,
                       modules_per_group=modules_per_group)
    voltage_condition = _condition("Vdd 1.5V -> 1.4V", enrollment, low_vdd)

    temperature_conditions = []
    for index, temperature in enumerate(TEMPERATURES_C):
        probe = _collect(config, challenges,
                         nominal.with_temperature(temperature),
                         epoch=2 + index,
                         modules_per_group=modules_per_group)
        temperature_conditions.append(
            _condition(f"{temperature:.0f} C", enrollment, probe))

    return Fig12Result(voltage_condition, tuple(temperature_conditions))
