"""Experiment NIST: Section VI-B2 — randomness of whitened PUF responses.

The raw Frac-PUF response is biased (per-group Hamming weight != 0.5), so
the paper whitens it with a modified Von Neumann extractor, concatenates
responses from different addresses, and feeds one million bits per module
into the 15-test NIST SP800-22 suite — all tests pass.

A response's entropy lives in the per-column sense-amp offsets, which are
shared by all rows of a sub-array (each sub-array has its own sense-amp
stripe).  Challenges must therefore target *distinct sub-arrays*; this
experiment uses a wide, many-sub-array geometry and one challenge per
sub-array.  ``paper_scale=True`` collects >= 1 Mbit of whitened stream as
in the paper; the default collects a smaller stream that still satisfies
the length prerequisites of 13 of the 15 tests (the two random-excursion
tests need ~500 zero-crossing cycles, which requires close to the full
million bits — they are reported as skipped on quick runs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batched_ops import BatchedFracDram
from ..dram.batched import BatchedChip
from ..dram.parameters import GeometryParams
from ..dram.chip import DramChip
from ..puf.extractor import von_neumann_extract
from ..puf.frac_puf import PUF_N_FRAC, Challenge, FracPuf
from ..puf.nist import SuiteResult, run_all
from .base import DEFAULT_CONFIG, ExperimentConfig, resolve_batch

__all__ = ["NistExperimentResult", "run", "shard_units", "run_shard",
           "merge"]

PAPER_EXPECTATION = (
    "Section VI-B2: after Von Neumann whitening, 1 Mbit per module "
    "passes all 15 NIST SP800-22 tests.")


@dataclass(frozen=True)
class NistExperimentResult:
    group_id: str
    raw_bits: int
    whitened_bits: int
    raw_weight: float
    whitened_weight: float
    suite: SuiteResult

    @property
    def all_passed(self) -> bool:
        return self.suite.all_passed

    def format_table(self) -> str:
        lines = [
            "NIST SP800-22 on whitened Frac-PUF responses "
            f"(group {self.group_id})",
            f"raw stream: {self.raw_bits} bits, weight {self.raw_weight:.3f}",
            f"whitened stream: {self.whitened_bits} bits, weight "
            f"{self.whitened_weight:.3f}",
            "",
            self.suite.format_table(),
        ]
        return "\n".join(lines)


def _nist_geometry(paper_scale: bool) -> GeometryParams:
    if paper_scale:
        # ~1.8 Mbit raw -> ~0.4 Mbit whitened: enough zero-crossing
        # cycles (J >= 500) for the two random-excursion tests.
        return GeometryParams(n_banks=6, subarrays_per_bank=36,
                              rows_per_subarray=10, columns=8192)
    return GeometryParams(n_banks=2, subarrays_per_bank=32,
                          rows_per_subarray=10, columns=8192)


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The work unit is one
# challenge (one sub-array's sense-amp stripe), keyed by its serial
# position in the concatenated stream.  Before evaluating a challenge,
# the chip's measurement noise is reseeded to an epoch derived from
# that position, so each response depends only on (chip identity,
# challenge index) — never on which challenges the worker evaluated
# before it.  Workers rebuild the chip locally from its fabrication
# streams; only the response arrays travel back.
# ----------------------------------------------------------------------

def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                group_id: str = "B", paper_scale: bool = False,
                **_kwargs) -> tuple[tuple[int, int, int], ...]:
    """Units ``(index, bank, subarray)`` in concatenation order."""
    geometry = _nist_geometry(paper_scale)
    units = []
    for bank in range(geometry.n_banks):
        for subarray in range(geometry.subarrays_per_bank):
            units.append((len(units), bank, subarray))
    return tuple(units)


#: Natural trial-batch width for the challenge sweep: each lane is one
#: sub-array view of the same chip, so wide cohorts trade cache locality
#: for dispatch savings; 16 is the sweet spot on the default geometry.
_NIST_AUTO_BATCH = 16


def run_shard(config: ExperimentConfig, units, group_id: str = "B",
              paper_scale: bool = False, **_kwargs) -> list:
    """Evaluate the challenges in ``units`` on a locally rebuilt chip.

    Challenges are evaluated as lanes of one trial batch: lane ``i`` is
    the challenge's own sub-array (a :meth:`BatchedChip.from_subarray_views`
    view of the shared chip) with its noise reseeded to the challenge
    index — the exact epoch tree the scalar ``reseed_noise`` builds — so
    responses are byte-identical at any batch width.
    """
    geometry = _nist_geometry(paper_scale)
    chip = DramChip(group_id, geometry=geometry,
                    master_seed=config.master_seed, serial=99)
    units = list(units)
    batch = resolve_batch(config, _NIST_AUTO_BATCH)
    if batch <= 1:
        puf = FracPuf(chip)
        payloads = []
        for index, bank, subarray in units:
            # One challenge per sub-array: its sense-amp stripe is the
            # entropy source; row 0 is as good as any non-reserved row.
            chip.reseed_noise(index)
            response = puf.evaluate(
                Challenge(bank, subarray * geometry.rows_per_subarray))
            payloads.append((index, response))
        return payloads
    payloads = []
    rows_per_subarray = geometry.rows_per_subarray
    reserved = rows_per_subarray - 1
    for start in range(0, len(units), batch):
        cohort = units[start:start + batch]
        sites = [(bank, subarray) for _, bank, subarray in cohort]
        epochs = [index for index, _, _ in cohort]
        device = BatchedChip.from_subarray_views(chip, sites, epochs=epochs)
        # The scalar evaluation, replayed per lane in the virtual
        # 1-sub-array address space: fill the reserved all-ones row,
        # copy it onto the challenge row, Frac it to ~Vdd/2, read.
        if config.backend == "fused":
            from ..xir import FusedFracDram, ir
            bfd = FusedFracDram(device)
            lanes = bfd.all_lanes()
            (responses,) = bfd.run_program(
                (ir.WriteRow(0, "res", True),
                 ir.RowCopy(0, "res", "row"),
                 ir.Frac(0, "row", PUF_N_FRAC),
                 ir.ReadRow(0, "row")),
                rows={"res": [reserved] * len(lanes),
                      "row": [0] * len(lanes)},
                lanes=lanes)
        else:
            bfd = BatchedFracDram(device)
            lanes = bfd.all_lanes()
            bfd.fill_row(0, [reserved] * len(lanes), True, lanes)
            bfd.row_copy(0, [reserved] * len(lanes), [0] * len(lanes), lanes)
            bfd.frac(0, [0] * len(lanes), PUF_N_FRAC, lanes)
            responses = bfd.read_row(0, [0] * len(lanes), lanes)
        payloads.extend((index, responses[lane].copy())
                        for lane, (index, _, _) in enumerate(cohort))
    return payloads


def merge(config: ExperimentConfig, payloads, group_id: str = "B",
          paper_scale: bool = False, **_kwargs) -> NistExperimentResult:
    """Concatenate responses in stream order, whiten, run the suite."""
    responses = [response for _, response in sorted(payloads,
                                                    key=lambda p: p[0])]
    raw = np.concatenate(responses)
    whitened = von_neumann_extract(raw)
    suite = run_all(whitened)
    return NistExperimentResult(
        group_id=group_id,
        raw_bits=int(raw.size),
        whitened_bits=int(whitened.size),
        raw_weight=float(np.mean(raw)),
        whitened_weight=float(np.mean(whitened)),
        suite=suite,
    )


def run(config: ExperimentConfig = DEFAULT_CONFIG, group_id: str = "B",
        paper_scale: bool = False) -> NistExperimentResult:
    units = shard_units(config, group_id=group_id, paper_scale=paper_scale)
    payloads = run_shard(config, units, group_id=group_id,
                         paper_scale=paper_scale)
    return merge(config, payloads, group_id=group_id,
                 paper_scale=paper_scale)
