"""Experiment F10: Figure 10 — per-combination breakdown and stability CDFs.

Part (a): on group C with the fractional value in R1 (init all ones), the
success rate of each individual input combination vs the number of Frac
operations.  Combinations whose majority is one ("green" in the paper)
start at 100% without Frac while majority-zero combinations ("blue")
start low; issuing Frac operations lowers R1's voltage, raising the blue
curves and slightly lowering the green ones — direct evidence of the
relationship between Frac count and cell voltage.

Parts (b)/(c): stability CDFs.  For sampled sub-arrays of groups B and C
we run many F-MAJ operations with random inputs (the paper uses 10000;
the default here is config-scaled) and plot the per-column success rate
distribution, with group B's original MAJ3 as the dashed baseline.

Paper expectations: F-MAJ on B has >= 95.4% of columns always correct and
beats the MAJ3 baseline, whose average error the paper reports as 9.1%
vs F-MAJ's 2.2%; group C modules spread widely (33%-85% always correct).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batched_ops import BatchedFracDram
from ..core.ops import FMajConfig, FracDram
from ..dram.batched import BatchedChip
from ..dram.rng import derive_rng
from .base import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    input_combos,
    make_chip,
    make_fd,
    markdown_table,
    percent,
    resolve_batch,
    subarray_targets,
)

__all__ = ["Fig10aResult", "StabilityModule", "Fig10Result", "run",
           "shard_units", "run_shard", "merge"]

PAPER_EXPECTATION = (
    "Figure 10: (a) majority-one combos start at 100% and decline "
    "slightly with Frac count while majority-zero combos rise from low "
    "values — confirming Frac lowers the cell voltage; (b) group B F-MAJ "
    "has >= 95.4% perfectly stable columns, beating MAJ3; (c) group C "
    "modules spread (paper: 33%-85% always-correct columns).")

FRAC_COUNTS = (0, 1, 2, 3, 4, 5)


@dataclass(frozen=True)
class Fig10aResult:
    """Per-combination success rates (group C, frac in R1, init ones)."""

    #: combo pattern -> success rate per Frac count.
    per_combo: dict[tuple[int, int, int], tuple[float, ...]]
    overall: tuple[float, ...]

    def majority_one_combos(self) -> list[tuple[int, int, int]]:
        return [combo for combo in self.per_combo if sum(combo) >= 2]

    def majority_zero_combos(self) -> list[tuple[int, int, int]]:
        return [combo for combo in self.per_combo if sum(combo) < 2]

    def shape_holds(self) -> bool:
        """Green combos start ~100%; blue combos rise with Frac count."""
        green_start = all(self.per_combo[c][0] > 0.95
                          for c in self.majority_one_combos())
        blue_rises = all(
            max(self.per_combo[c][1:]) > self.per_combo[c][0] + 0.2
            for c in self.majority_zero_combos())
        return green_start and blue_rises

    def format_table(self) -> str:
        lines = ["(a) Group C per-combination F-MAJ success "
                 "(frac in R1, init ones)"]
        header = ("combo (R2,R3,R4)", "maj", *[str(n) for n in FRAC_COUNTS])
        rows = []
        for combo, series in self.per_combo.items():
            majority = 1 if sum(combo) >= 2 else 0
            color = "green" if majority else "blue"
            rows.append((f"{combo} [{color}]", majority,
                         *[f"{value:.3f}" for value in series]))
        rows.append(("overall (red)", "-",
                     *[f"{value:.3f}" for value in self.overall]))
        lines.append(markdown_table(header, rows))
        return "\n".join(lines)


@dataclass(frozen=True)
class StabilityModule:
    """Stability of one module (chip): per-column success rates."""

    group_id: str
    serial: int
    operation: str  # "maj3" or "f-maj"
    success_rates: np.ndarray

    @property
    def always_correct_fraction(self) -> float:
        return float(np.mean(self.success_rates == 1.0))

    @property
    def average_error(self) -> float:
        return float(np.mean(1.0 - self.success_rates))

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        values = np.sort(self.success_rates)
        fractions = np.arange(1, values.size + 1) / values.size
        return values, fractions


@dataclass(frozen=True)
class Fig10Result:
    part_a: Fig10aResult
    modules_b_fmaj: tuple[StabilityModule, ...]
    modules_b_maj3: tuple[StabilityModule, ...]
    modules_c_fmaj: tuple[StabilityModule, ...]
    trials: int

    @property
    def avg_error_maj3(self) -> float:
        return float(np.mean([m.average_error for m in self.modules_b_maj3]))

    @property
    def avg_error_fmaj(self) -> float:
        return float(np.mean([m.average_error for m in self.modules_b_fmaj]))

    def fmaj_beats_maj3(self) -> bool:
        return self.avg_error_fmaj < self.avg_error_maj3

    def format_table(self) -> str:
        lines = [self.part_a.format_table()]
        lines.append(f"\n(b)/(c) Stability over {self.trials} random-input "
                     "trials per column:")
        header = ("group", "module", "operation", "always-correct columns",
                  "average error")
        rows = []
        for module in (*self.modules_b_maj3, *self.modules_b_fmaj,
                       *self.modules_c_fmaj):
            rows.append((module.group_id, module.serial, module.operation,
                         percent(module.always_correct_fraction),
                         percent(module.average_error, 3)))
        lines.append(markdown_table(header, rows))
        lines.append(
            f"\nAverage error, group B: MAJ3 {percent(self.avg_error_maj3, 2)} "
            f"-> F-MAJ {percent(self.avg_error_fmaj, 2)} "
            "(paper: 9.1% -> 2.2%; see EXPERIMENTS.md for the absolute-"
            "value caveat)")
        return "\n".join(lines)


def _combo_success_at(config: ExperimentConfig, group_id: str,
                      fmaj_config_base: FMajConfig, n_frac: int,
                      ) -> tuple[dict[tuple[int, int, int], float], float]:
    """Per-combination success rates at one Frac count (one work unit).

    Chip serials are the trial-batch lanes: each lane's chip consumes
    exactly the command stream of the scalar serial loop (sub-array
    targets outer, input combinations inner), and the per-(serial,
    target) means are re-accumulated in scalar serial-major order, so
    the averages are byte-identical at any batch width.
    """
    combos = input_combos(config.columns)
    targets = subarray_targets(config)
    fmaj_config = FMajConfig(fmaj_config_base.frac_position,
                             fmaj_config_base.init_ones, n_frac)
    serials = list(range(config.chips_per_group))
    batch = resolve_batch(config, len(serials))
    sums = {pattern: 0.0 for pattern, _ in combos}
    all_correct_sum = 0.0
    if batch <= 1:
        samples = 0
        for serial in serials:
            fd = make_fd(group_id, config, serial)
            for bank, subarray in targets:
                correct_all = np.ones(fd.columns, dtype=bool)
                for pattern, operands in combos:
                    expected = sum(pattern) >= 2
                    result = fd.f_maj(bank, operands, fmaj_config, subarray)
                    matches = result == expected
                    sums[pattern] += float(np.mean(matches))
                    correct_all &= matches
                all_correct_sum += float(np.mean(correct_all))
                samples += 1
        return ({pattern: sums[pattern] / samples for pattern, _ in combos},
                all_correct_sum / samples)
    donor = make_fd(group_id, config, 0)
    per_combo = {pattern: np.zeros((len(serials), len(targets)))
                 for pattern, _ in combos}
    all_matrix = np.zeros((len(serials), len(targets)))
    for start in range(0, len(serials), batch):
        cohort = serials[start:start + batch]
        chips = [make_chip(group_id, config, serial) for serial in cohort]
        device = BatchedChip.from_chips(chips)
        if config.backend == "fused":
            from ..xir import FusedFracDram
            bfd = FusedFracDram(device)
        else:
            bfd = BatchedFracDram(device)
        lanes = bfd.all_lanes()
        rows = slice(start, start + len(cohort))
        for t_index, (bank, subarray) in enumerate(targets):
            plan = donor.quad_plan(bank, subarray)
            correct_all = np.ones((len(cohort), bfd.columns), dtype=bool)
            for pattern, operands in combos:
                expected = sum(pattern) >= 2
                ops = np.broadcast_to(
                    np.stack(operands), (len(cohort), 3, bfd.columns))
                matches = bfd.f_maj(plan, ops, fmaj_config, lanes) == expected
                per_combo[pattern][rows, t_index] = matches.mean(axis=1)
                correct_all &= matches
            all_matrix[rows, t_index] = correct_all.mean(axis=1)
    samples = len(serials) * len(targets)
    for s_index in range(len(serials)):
        for t_index in range(len(targets)):
            for pattern, _ in combos:
                sums[pattern] += per_combo[pattern][s_index, t_index]
            all_correct_sum += all_matrix[s_index, t_index]
    return ({pattern: float(sums[pattern] / samples)
             for pattern, _ in combos},
            float(all_correct_sum / samples))


def _stability(fd: FracDram, operation: str, trials: int,
               rng: np.random.Generator, bank: int = 0,
               subarray: int = 0) -> np.ndarray:
    successes = np.zeros(fd.columns)
    fmaj_config = fd.group.preferred_fmaj
    for _ in range(trials):
        operands = [rng.random(fd.columns) < 0.5 for _ in range(3)]
        expected = (operands[0].astype(int) + operands[1] + operands[2]) >= 2
        if operation == "maj3":
            result = fd.maj3(bank, operands, subarray)
        else:
            result = fd.f_maj(bank, operands, fmaj_config, subarray)
        successes += result == expected
    return successes / trials


def _stability_rates(config: ExperimentConfig, group_id: str,
                     operation: str, serials: list[int],
                     trials: int) -> dict[int, np.ndarray]:
    """Per-serial stability rates for one (group, operation) campaign.

    Serials are the trial-batch lanes: every lane replays the same
    command stream while drawing its operands from the serial's own
    ``(master_seed, "fig10", group, operation, serial)`` stream — the
    same derivation the scalar path uses — so rates are byte-identical
    at any batch width and under any shard slicing.
    """
    batch = resolve_batch(config, len(serials))
    rates: dict[int, np.ndarray] = {}
    if batch <= 1:
        for serial in serials:
            rng = derive_rng(config.master_seed, "fig10", group_id,
                             operation, serial)
            fd = make_fd(group_id, config, serial)
            rates[serial] = _stability(fd, operation, trials, rng)
        return rates
    donor = make_fd(group_id, config, 0)
    fmaj_config = donor.group.preferred_fmaj
    bank = subarray = 0
    plan = (donor.triple_plan(bank, subarray) if operation == "maj3"
            else donor.quad_plan(bank, subarray))
    for start in range(0, len(serials), batch):
        cohort = serials[start:start + batch]
        rngs = [derive_rng(config.master_seed, "fig10", group_id,
                           operation, serial) for serial in cohort]
        chips = [make_chip(group_id, config, serial) for serial in cohort]
        device = BatchedChip.from_chips(chips)
        if config.backend == "fused":
            from ..xir import FusedFracDram
            bfd = FusedFracDram(device)
        else:
            bfd = BatchedFracDram(device)
        lanes = bfd.all_lanes()
        successes = np.zeros((len(cohort), bfd.columns))
        for _ in range(trials):
            operands = np.stack([
                np.stack([rng.random(bfd.columns) < 0.5 for _ in range(3)])
                for rng in rngs])
            expected = operands.sum(axis=1) >= 2
            if operation == "maj3":
                result = bfd.maj3(plan, operands, lanes)
            else:
                result = bfd.f_maj(plan, operands, fmaj_config, lanes)
            successes += result == expected
        for lane, serial in enumerate(cohort):
            rates[serial] = successes[lane] / trials
    return rates


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  Two unit kinds:
#   ("a", n_frac)                          — one part-(a) Frac count,
#   ("stability", group, operation, serial) — one stability module.
# Each stability unit draws its random inputs from a dedicated RNG
# stream derived from (master_seed, "fig10", group, operation, serial),
# so its rates are independent of shard placement.
# ----------------------------------------------------------------------

#: The stability campaigns of parts (b)/(c): (group, operation).
_STABILITY_CAMPAIGNS = (("B", "f-maj"), ("B", "maj3"), ("C", "f-maj"))

_PART_A_BASE = FMajConfig(0, True, 1)  # group C, frac in R1, init ones


def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                **_kwargs) -> tuple[tuple, ...]:
    """Part-(a) Frac counts first, then every stability module."""
    units: list[tuple] = [("a", n_frac) for n_frac in FRAC_COUNTS]
    units.extend(("stability", group_id, operation, serial)
                 for group_id, operation in _STABILITY_CAMPAIGNS
                 for serial in range(config.chips_per_group))
    return tuple(units)


def run_shard(config: ExperimentConfig, units, trials: int = 500,
              **_kwargs) -> list:
    """Execute part-(a) and stability units; one payload per unit.

    Stability units sharing a (group, operation) campaign are gathered
    into trial-batch cohorts (``config.batch`` caps the width); each
    unit's rates depend only on (config, unit key), so the payloads are
    identical under any shard slicing or batch width.
    """
    units = list(units)
    by_campaign: dict[tuple[str, str], list[int]] = {}
    for unit in units:
        if unit[0] == "stability":
            _, group_id, operation, serial = unit
            by_campaign.setdefault((group_id, operation), []).append(serial)
    campaign_rates = {
        (group_id, operation): _stability_rates(config, group_id, operation,
                                                serials, trials)
        for (group_id, operation), serials in by_campaign.items()}
    payloads = []
    for unit in units:
        if unit[0] == "a":
            _, n_frac = unit
            values, all_correct = _combo_success_at(config, "C",
                                                    _PART_A_BASE, n_frac)
            payloads.append(("a", n_frac, values, all_correct))
        else:
            _, group_id, operation, serial = unit
            rates = campaign_rates[(group_id, operation)][serial]
            payloads.append(("stability",
                             StabilityModule(group_id, serial, operation,
                                             rates)))
    return payloads


def merge(config: ExperimentConfig, payloads, trials: int = 500,
          **_kwargs) -> Fig10Result:
    """Assemble unit payloads (any order) into a :class:`Fig10Result`."""
    part_a_units: dict[int, tuple[dict, float]] = {}
    stability: dict[tuple[str, str], dict[int, StabilityModule]] = {
        campaign: {} for campaign in _STABILITY_CAMPAIGNS}
    for payload in payloads:
        if payload[0] == "a":
            _, n_frac, values, all_correct = payload
            part_a_units[n_frac] = (values, all_correct)
        else:
            module = payload[1]
            stability[(module.group_id,
                       module.operation)][module.serial] = module

    combos = input_combos(config.columns)
    per_combo = {
        pattern: tuple(part_a_units[n_frac][0][pattern]
                       for n_frac in FRAC_COUNTS)
        for pattern, _ in combos}
    overall = tuple(part_a_units[n_frac][1] for n_frac in FRAC_COUNTS)
    part_a = Fig10aResult(per_combo, overall)

    def modules(group_id: str, operation: str) -> tuple[StabilityModule, ...]:
        by_serial = stability[(group_id, operation)]
        return tuple(by_serial[serial] for serial in sorted(by_serial))

    return Fig10Result(
        part_a=part_a,
        modules_b_fmaj=modules("B", "f-maj"),
        modules_b_maj3=modules("B", "maj3"),
        modules_c_fmaj=modules("C", "f-maj"),
        trials=trials,
    )


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        trials: int = 500) -> Fig10Result:
    units = shard_units(config)
    return merge(config, run_shard(config, units, trials=trials),
                 trials=trials)
