"""Experiment harnesses: one module per paper table/figure (see DESIGN.md).

``python -m repro.experiments.runner`` runs everything and prints the
paper-style tables; each sub-module also exposes ``run(config)`` for
programmatic use.
"""

from .base import DEFAULT_CONFIG, ExperimentConfig

__all__ = ["DEFAULT_CONFIG", "ExperimentConfig"]
