"""Result serialization: JSON/CSV export and a full markdown report.

Every experiment result renders itself as a paper-style text table; for
plotting and regression tracking this module adds structured exports:

* :func:`result_to_dict` — a JSON-safe dict of any experiment result
  (dataclasses, NumPy arrays, and nested containers handled),
* :func:`export_json` / :func:`export_series_csv` — file writers,
* :func:`generate_report` — run a set of experiments and write a single
  RESULTS.md plus per-experiment JSON files.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from .base import DEFAULT_CONFIG, ExperimentConfig
from .runner import EXPERIMENTS, run_experiment

__all__ = ["result_to_dict", "export_json", "export_series_csv",
           "generate_report"]


def result_to_dict(value: Any) -> Any:
    """Convert an experiment result into JSON-serializable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: result_to_dict(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        number = float(value)
        return number if np.isfinite(number) else repr(number)
    if isinstance(value, float):
        return value if np.isfinite(value) else repr(value)
    if isinstance(value, Mapping):
        return {_key_to_str(key): result_to_dict(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [result_to_dict(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    # Fall back to the object's public attributes (result-like objects).
    public = {name: getattr(value, name) for name in dir(value)
              if not name.startswith("_")
              and not callable(getattr(value, name))}
    if public:
        return {name: result_to_dict(item) for name, item in public.items()}
    return repr(value)  # pragma: no cover - last resort


def _key_to_str(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return ",".join(str(part) for part in key)
    return str(key)


def export_json(result: Any, path: str | Path) -> Path:
    """Write one experiment result as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2,
                               sort_keys=True) + "\n")
    return path


def export_series_csv(path: str | Path, header: Sequence[str],
                      rows: Iterable[Sequence[Any]]) -> Path:
    """Write a simple CSV (no quoting needed for our numeric series)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [",".join(str(cell) for cell in header)]
    lines.extend(",".join(str(cell) for cell in row) for row in rows)
    path.write_text("\n".join(lines) + "\n")
    return path


def generate_report(output_dir: str | Path,
                    config: ExperimentConfig = DEFAULT_CONFIG,
                    names: Sequence[str] | None = None, *,
                    workers: int = 0, cache=None) -> Path:
    """Run experiments and write RESULTS.md + per-experiment JSON.

    ``workers``/``cache`` are forwarded to
    :func:`repro.experiments.runner.run_experiment`: fleet-capable
    experiments fan out over worker processes, and a
    :class:`repro.fleet.ResultCache` lets repeated report generation
    skip every experiment whose (config, version) is unchanged.
    Returns the path of the markdown report.
    """
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    names = list(names) if names is not None else list(EXPERIMENTS)
    sections = ["# FracDRAM reproduction — experiment report",
                "",
                f"configuration: {config}", ""]
    for name in names:
        description, _ = EXPERIMENTS[name]
        started = time.time()
        hits_before = cache.hits if cache is not None else 0
        result = run_experiment(name, config, workers=workers, cache=cache)
        elapsed = time.time() - started
        cached = cache is not None and cache.hits > hits_before
        export_json(result, output / f"{name}.json")
        sections.append(f"## {name} — {description}")
        sections.append("")
        sections.append("```")
        sections.append(result.format_table())
        sections.append("```")
        sections.append(f"_completed in {elapsed:.1f}s"
                        + (" (cache hit)" if cached else "")
                        + f"; raw data in `{name}.json`_")
        sections.append("")
    sections.extend(_telemetry_section())
    report_path = output / "RESULTS.md"
    report_path.write_text("\n".join(sections))
    return report_path


def _telemetry_section() -> list[str]:
    """A deterministic telemetry summary for RESULTS.md.

    Only counters appear — sorted by key, no wall-clock timings or
    execution-shape notes — so a report generated serially, via an
    N-worker fleet, or from the result cache stays byte-identical for a
    fixed (config, seed) and remains safe to golden-compare.  Returns
    nothing when no telemetry session is active.
    """
    from ..telemetry import active

    telemetry = active()
    if telemetry is None:
        return []
    snapshot = telemetry.snapshot(deterministic=True)
    lines = ["## Telemetry", ""]
    if snapshot["counters"]:
        lines.append("| counter | value |")
        lines.append("|---|---|")
        lines.extend(f"| `{name}` | {value} |"
                     for name, value in snapshot["counters"].items())
    else:
        lines.append("_no counters recorded_")
    lines.append("")
    return lines
