"""Experiment LAT: the paper's latency accounting, from the cycle model.

Every number is derived from the command-sequence builders (2.5 ns memory
cycles), not hard-coded:

* one Frac operation = 7 cycles (Section III-A),
* one in-DRAM row copy = 18 cycles (Section VI-A.1),
* F-MAJ with the ComputeDRAM reserved-row strategy costs ~29% more cycles
  than the original MAJ3 (Section VI-A.1: three operand copies + result
  copy for both; F-MAJ adds one init copy + one Frac),
* a PUF evaluation takes ~1.5 us (88-cycle preparation + 8 KB readout),
  ~0.7 us with an optimized controller (Section VI-B2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..controller import sequences as seq
from ..dram.parameters import ElectricalParams, TimingParams
from ..puf.frac_puf import PAPER_SEGMENT_BITS, PUF_N_FRAC, evaluation_time_us
from .base import markdown_table

__all__ = ["LatencyResult", "run", "shard_units", "run_shard", "merge"]

PAPER_EXPECTATION = (
    "Frac = 7 cycles; row copy = 18 cycles; F-MAJ ~ +29% vs MAJ3 with "
    "reserved-row operand copies; PUF evaluation 1.5 us (0.7 us "
    "optimized).")


@dataclass(frozen=True)
class LatencyResult:
    frac_cycles: int
    row_copy_cycles: int
    multi_row_cycles: int
    maj3_total_cycles: int
    fmaj_total_cycles: int
    puf_preparation_cycles: int
    puf_eval_us: float
    puf_eval_optimized_us: float

    @property
    def fmaj_overhead(self) -> float:
        return self.fmaj_total_cycles / self.maj3_total_cycles - 1.0

    def format_table(self) -> str:
        rows = [
            ("Frac operation", self.frac_cycles, "7 (paper)"),
            ("row copy", self.row_copy_cycles, "18 (paper)"),
            ("multi-row activation", self.multi_row_cycles, "-"),
            ("MAJ3 incl. operand/result copies", self.maj3_total_cycles, "-"),
            ("F-MAJ incl. operand/result copies", self.fmaj_total_cycles, "-"),
            ("F-MAJ overhead vs MAJ3",
             f"{100 * self.fmaj_overhead:.1f}%", "29% (paper)"),
            ("PUF preparation", self.puf_preparation_cycles,
             "88 cycles (paper)"),
            ("PUF evaluation", f"{self.puf_eval_us:.2f} us",
             "1.5 us (paper)"),
            ("PUF evaluation (optimized MC)",
             f"{self.puf_eval_optimized_us:.2f} us", "0.7 us (paper)"),
        ]
        return markdown_table(("operation", "measured", "expectation"), rows)

    def matches_paper(self) -> bool:
        return (self.frac_cycles == 7 and self.row_copy_cycles == 18
                and abs(self.fmaj_overhead - 0.29) < 0.02
                and abs(self.puf_eval_us - 1.5) < 0.1
                and abs(self.puf_eval_optimized_us - 0.7) < 0.1)


def run(timing: TimingParams | None = None,
        electrical: ElectricalParams | None = None) -> LatencyResult:
    timing = timing or TimingParams()
    electrical = electrical or ElectricalParams()

    frac_cycles = seq.frac_sequence(0, 1, 1, timing).duration
    row_copy_cycles = seq.row_copy_sequence(0, 0, 1, timing,
                                            electrical).duration
    multi_row_cycles = seq.multi_row_sequence(0, 1, 2, timing,
                                              electrical).duration

    # ComputeDRAM reserved-row strategy: copy the three operands into the
    # reserved compute rows, run the operation, copy the result back.
    maj3_total = 3 * row_copy_cycles + multi_row_cycles + row_copy_cycles
    # F-MAJ additionally initializes the fractional row with one copy and
    # one Frac operation (the paper's accounting, Section VI-A.1).
    fmaj_total = maj3_total + row_copy_cycles + frac_cycles

    puf_preparation = row_copy_cycles + PUF_N_FRAC * frac_cycles
    return LatencyResult(
        frac_cycles=frac_cycles,
        row_copy_cycles=row_copy_cycles,
        multi_row_cycles=multi_row_cycles,
        maj3_total_cycles=maj3_total,
        fmaj_total_cycles=fmaj_total,
        puf_preparation_cycles=puf_preparation,
        puf_eval_us=evaluation_time_us(PAPER_SEGMENT_BITS, optimized=False),
        puf_eval_optimized_us=evaluation_time_us(PAPER_SEGMENT_BITS,
                                                 optimized=True),
    )


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The accounting is one
# cheap deterministic derivation, so there is exactly one work unit; the
# hooks exist so every experiment speaks the same protocol.
# ----------------------------------------------------------------------

def shard_units(config=None, **_kwargs) -> tuple[str, ...]:
    """A single work unit — the whole derivation."""
    return ("latency",)


def run_shard(config, units, timing: TimingParams | None = None,
              electrical: ElectricalParams | None = None, **_kwargs) -> list:
    """Payload is the complete :class:`LatencyResult` (config-independent)."""
    return [run(timing, electrical) for _unit in units]


def merge(config, payloads, **_kwargs) -> LatencyResult:
    return payloads[0]
