"""Shared configuration and helpers for the experiment harnesses.

Every experiment module exposes ``run(config) -> *Result`` where the
result carries the measured series plus a ``format_table()`` renderer that
prints the same rows/series the paper reports.  ``ExperimentConfig``
scales the simulated hardware: the defaults are sized so the full suite
runs in minutes; ``paper_scale()`` approaches the paper's geometry (8 KB
rows, hundreds of chips) for overnight runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.ops import FracDram
from ..dram.chip import DramChip
from ..dram.environment import Environment
from ..dram.module_ import DramModule
from ..dram.parameters import GeometryParams
from ..dram.vendor import GroupProfile
from ..telemetry.registry import active as _telemetry_active

__all__ = ["ExperimentConfig", "make_chip", "make_fd", "make_module",
           "markdown_table", "percent", "resolve_batch", "stage"]


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time a named pipeline stage on the active telemetry registry.

    The run/shard/merge stages of every experiment (and the fleet
    executor's dispatch) wrap themselves in ``stage(...)`` so a
    ``--telemetry`` run reports where the wall time went.  With no
    registry active this is a no-op.
    """
    telemetry = _telemetry_active()
    if telemetry is None:
        yield
        return
    with telemetry.phase(name):
        yield


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``columns`` is the simulated row width in bits (the paper's module rows
    are 65536 bits = 8 KB); ``chips_per_group`` is how many distinct chip
    instances ("modules") to fabricate per vendor group.
    """

    master_seed: int = 2022
    columns: int = 1024
    rows_per_subarray: int = 16
    subarrays_per_bank: int = 2
    n_banks: int = 2
    chips_per_group: int = 2
    #: Trial-batch width for experiments with a batched engine: ``None``
    #: picks the experiment's natural width automatically, ``0``/``1``
    #: forces the scalar path, ``N > 1`` caps cohorts at N lanes.  Results
    #: are byte-identical at every setting (the batched engine mirrors the
    #: scalar RNG stream per lane); this knob only trades memory for speed.
    batch: int | None = None
    #: Execution backend name (see :mod:`repro.backends`): ``None`` uses
    #: the registry default (``batched``).  Every registered backend is
    #: conformance-gated to byte-identical results and telemetry
    #: counters, so this knob (like ``batch``) never changes outputs.
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.rows_per_subarray < 10:
            raise ValueError(
                "rows_per_subarray must be >= 10 (group B's four-row set "
                "uses local rows {8,1,0,9})")

    def geometry(self) -> GeometryParams:
        return GeometryParams(
            n_banks=self.n_banks,
            subarrays_per_bank=self.subarrays_per_bank,
            rows_per_subarray=self.rows_per_subarray,
            columns=self.columns,
        )

    def scaled(self, **overrides) -> "ExperimentConfig":
        return replace(self, **overrides)

    @staticmethod
    def paper_scale() -> "ExperimentConfig":
        """Geometry approaching the paper's setup (slow; for full runs)."""
        return ExperimentConfig(
            columns=65536, rows_per_subarray=16, subarrays_per_bank=4,
            n_banks=2, chips_per_group=4)


DEFAULT_CONFIG = ExperimentConfig()


def resolve_batch(config: ExperimentConfig, auto: int) -> int:
    """Effective trial-batch width for one batched stage.

    ``auto`` is the experiment's natural lane count for the stage (all
    units of a shard, all serials of a group, ...).  Dispatch is the
    configured backend's policy (:mod:`repro.backends`): the default
    ``batched`` engine takes ``auto`` capped by the ``batch`` knob
    (0/1 disables batching entirely), while ``scalar``/``plan`` force
    width 1.  The returned width is always at least 1.
    """
    from ..backends import resolve_backend

    return resolve_backend(getattr(config, "backend", None)).lane_width(
        auto, config.batch)


def make_chip(group: str | GroupProfile, config: ExperimentConfig,
              serial: int = 0,
              environment: Environment | None = None) -> DramChip:
    """Fabricate one deterministic chip for an experiment."""
    return DramChip(
        group,
        geometry=config.geometry(),
        serial=serial,
        master_seed=config.master_seed,
        environment=environment,
    )


def make_module(group: str | GroupProfile, config: ExperimentConfig,
                module_serial: int = 0, n_chips: int = 1,
                environment: Environment | None = None) -> DramModule:
    """Fabricate a module (defaults to a single-chip module for speed)."""
    return DramModule(
        group,
        n_chips=n_chips,
        geometry=config.geometry(),
        module_serial=module_serial,
        master_seed=config.master_seed,
        environment=environment,
    )


def make_fd(group: str | GroupProfile, config: ExperimentConfig,
            serial: int = 0) -> FracDram:
    return FracDram(make_chip(group, config, serial))


def percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a fixed-width percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple GitHub-flavored markdown table."""
    header_line = "| " + " | ".join(str(h) for h in headers) + " |"
    separator = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(str(cell) for cell in row) + " |" for row in rows]
    return "\n".join([header_line, separator, *body])


def subarray_targets(config: ExperimentConfig) -> list[tuple[int, int]]:
    """All (bank, subarray) pairs of the configured geometry."""
    return [(bank, subarray)
            for bank in range(config.n_banks)
            for subarray in range(config.subarrays_per_bank)]


def input_combos(columns: int) -> list[tuple[tuple[int, int, int], list[np.ndarray]]]:
    """The paper's six MAJ3 input combinations as full-row operand sets."""
    patterns = [(1, 0, 0), (0, 1, 0), (0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)]
    return [
        (pattern, [np.full(columns, bool(value)) for value in pattern])
        for pattern in patterns
    ]
