"""Experiment T1: reproduce Table I — per-group capability matrix.

The probes are purely behavioural (no simulator introspection), mirroring
how the authors characterized real chips:

* **Frac capability** — initialize a row to all ones, issue ten Frac
  operations, read back: a chip that honors the out-of-spec sequence
  yields a mixed readout (the sense amps resolve ~Vdd/2 by their offsets);
  a chip with command-spacing checks returns the intact all-ones data.

* **Multi-row activation** — for every row pair (R1, R2) in a sub-array,
  store a shared random pattern in R1/R2 and distinct random patterns
  everywhere else, issue ACT(R1)-PRE-ACT(R2), and count how many *other*
  rows were overwritten: one extra row means a three-row activation, two
  extra rows a four-row activation (the Section VI-A.1 exploration).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..analysis.reverse_engineering import (batched_probe_opened_rows,
                                            probe_opened_rows)
from ..core.batched_ops import BatchedFracDram
from ..core.ops import FracDram
from ..dram.batched import BatchedChip
from ..dram.vendor import GROUPS, GroupProfile
from .base import (DEFAULT_CONFIG, ExperimentConfig, make_fd, markdown_table,
                   resolve_batch)

__all__ = ["Table1Row", "Table1Result", "run", "probe_frac", "probe_pair",
           "shard_units", "run_shard", "merge"]

PAPER_EXPECTATION = (
    "Table I: groups A-I support Frac; only B supports three-row "
    "activation; B, C, D support four-row activation; J, K, L support "
    "nothing (command-spacing checks).")


@dataclass(frozen=True)
class Table1Row:
    """Measured capabilities of one group."""

    group_id: str
    vendor: str
    freq_mhz: int
    n_chips: int
    frac: bool
    three_row: bool
    four_row: bool

    def matches(self, profile: GroupProfile) -> bool:
        return (self.frac == profile.frac_capable
                and self.three_row == profile.three_row
                and self.four_row == profile.four_row)


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]
    matches_paper: bool

    def format_table(self) -> str:
        def check(flag: bool) -> str:
            return "yes" if flag else ""

        body = [
            (row.group_id, row.vendor, row.freq_mhz, row.n_chips,
             check(row.frac), check(row.three_row), check(row.four_row))
            for row in self.rows
        ]
        table = markdown_table(
            ("Group", "Vendor", "Freq(MHz)", "#Chips", "Frac",
             "Three-row-activation", "Four-row-activation"),
            body)
        verdict = ("matches Table I" if self.matches_paper
                   else "DEVIATES from Table I")
        return f"{table}\n\nCapability matrix {verdict}."


def probe_frac(fd: FracDram, bank: int = 0, row: int = 1) -> bool:
    """Behavioural Frac probe: does 10x Frac disturb stored all-ones?"""
    fd.fill_row(bank, row, True)
    fd.frac(bank, row, 10)
    weight = float(np.mean(fd.read_row(bank, row)))
    return 0.02 < weight < 0.98


def probe_pair(fd: FracDram, bank: int, r1: int, r2: int,
               rng: np.random.Generator,
               changed_threshold: float = 0.15,
               repeats: int = 2) -> int:
    """Count rows opened by ACT(r1)-PRE-ACT(r2) within r1's sub-array.

    Delegates to the black-box probe in
    :mod:`repro.analysis.reverse_engineering`; returns 2 when no extra
    rows open (or the chip dropped the sequence).
    """
    opened = probe_opened_rows(fd, bank, r1, r2, rng,
                               changed_threshold=changed_threshold,
                               repeats=repeats)
    return len(opened)


def probe_multi_row_support(fd: FracDram, bank: int = 0,
                            max_rows: int = 16,
                            seed: int = 7) -> tuple[bool, bool]:
    """Scan all pairs in sub-array 0: (three-row support, four-row support)."""
    rng = np.random.default_rng(seed)
    rows_per_subarray = int(fd.device.geometry.rows_per_subarray)
    scan_rows = min(max_rows, rows_per_subarray)
    saw_three = saw_four = False
    for r1, r2 in itertools.combinations(range(scan_rows), 2):
        opened = probe_pair(fd, bank, r1, r2, rng)
        if opened == 3:
            saw_three = True
        elif opened >= 4:
            saw_four = True
        if saw_three and saw_four:
            break
    return saw_three, saw_four


def _batched_probes(config: ExperimentConfig, group_ids: list[str],
                    bank: int = 0, row: int = 1, max_rows: int = 16,
                    seed: int = 7) -> list[tuple[bool, bool, bool]]:
    """Both behavioural probes for a cohort of groups, one lane each.

    The pair scan honours each lane's early exit: a lane that has seen
    both a three- and a four-row activation is retired from the active
    set, so its pattern generator and chip noise stream stop exactly
    where the scalar scan stops.
    """
    device = BatchedChip.from_fleet(
        [(group_id, 0) for group_id in group_ids],
        geometry=config.geometry(), master_seed=config.master_seed)
    bfd = BatchedFracDram(device)
    lanes = bfd.all_lanes()

    bfd.fill_row(bank, [row] * len(lanes), True, lanes)
    bfd.frac(bank, [row] * len(lanes), 10, lanes)
    weights = np.mean(bfd.read_row(bank, [row] * len(lanes), lanes), axis=1)
    frac = [0.02 < float(weight) < 0.98 for weight in weights]

    rngs = {lane: np.random.default_rng(seed) for lane in lanes}
    rows_per_subarray = int(device.geometry.rows_per_subarray)
    scan_rows = min(max_rows, rows_per_subarray)
    saw_three = {lane: False for lane in lanes}
    saw_four = {lane: False for lane in lanes}
    active = list(lanes)
    for r1, r2 in itertools.combinations(range(scan_rows), 2):
        if not active:
            break
        opened = batched_probe_opened_rows(
            bfd, bank, r1, r2, [rngs[lane] for lane in active], active)
        remaining = []
        for index, lane in enumerate(active):
            count = len(opened[index])
            if count == 3:
                saw_three[lane] = True
            elif count >= 4:
                saw_four[lane] = True
            if not (saw_three[lane] and saw_four[lane]):
                remaining.append(lane)
        active = remaining
    return [(frac[lane], saw_three[lane], saw_four[lane]) for lane in lanes]


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The work unit is one
# vendor group: each probe fabricates that group's serial-0 chip from
# scratch, so units never share state.
# ----------------------------------------------------------------------

def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                **_kwargs) -> tuple[str, ...]:
    """One work unit per vendor group."""
    return tuple(GROUPS)


def run_shard(config: ExperimentConfig, units, **_kwargs) -> list:
    """Probe each group in ``units``; payloads are
    ``(group_id, frac, three_row, four_row)``.

    Groups are probed as lanes of one :meth:`BatchedChip.from_fleet`
    device cohort (they share electrical timing; decoders, couplings and
    polarity stay per lane) — byte-identical to the scalar per-group
    loop at any batch width.
    """
    units = list(units)
    batch = resolve_batch(config, len(units))
    if batch <= 1:
        payloads = []
        for group_id in units:
            fd = make_fd(group_id, config, serial=0)
            frac = probe_frac(fd)
            three_row, four_row = probe_multi_row_support(fd)
            payloads.append((group_id, frac, three_row, four_row))
        return payloads
    payloads = []
    for start in range(0, len(units), batch):
        cohort = units[start:start + batch]
        probes = _batched_probes(config, cohort)
        payloads.extend(
            (group_id, frac, three_row, four_row)
            for group_id, (frac, three_row, four_row) in zip(cohort, probes))
    return payloads


def merge(config: ExperimentConfig, payloads, **_kwargs) -> Table1Result:
    """Assemble the capability matrix in Table I group order."""
    by_group = {group_id: flags for group_id, *flags in payloads}
    rows = []
    all_match = True
    for group_id, profile in GROUPS.items():
        frac, three_row, four_row = by_group[group_id]
        row = Table1Row(
            group_id=group_id,
            vendor=profile.vendor,
            freq_mhz=profile.freq_mhz,
            n_chips=profile.n_chips,
            frac=frac,
            three_row=three_row,
            four_row=four_row,
        )
        rows.append(row)
        all_match &= row.matches(profile)
    return Table1Result(tuple(rows), all_match)


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> Table1Result:
    """Probe every group and compare against the declared Table I."""
    return merge(config, run_shard(config, shard_units(config)))
