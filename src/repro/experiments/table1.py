"""Experiment T1: reproduce Table I — per-group capability matrix.

The probes are purely behavioural (no simulator introspection), mirroring
how the authors characterized real chips:

* **Frac capability** — initialize a row to all ones, issue ten Frac
  operations, read back: a chip that honors the out-of-spec sequence
  yields a mixed readout (the sense amps resolve ~Vdd/2 by their offsets);
  a chip with command-spacing checks returns the intact all-ones data.

* **Multi-row activation** — for every row pair (R1, R2) in a sub-array,
  store a shared random pattern in R1/R2 and distinct random patterns
  everywhere else, issue ACT(R1)-PRE-ACT(R2), and count how many *other*
  rows were overwritten: one extra row means a three-row activation, two
  extra rows a four-row activation (the Section VI-A.1 exploration).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..analysis.reverse_engineering import probe_opened_rows
from ..core.ops import FracDram
from ..dram.vendor import GROUPS, GroupProfile
from .base import DEFAULT_CONFIG, ExperimentConfig, make_fd, markdown_table

__all__ = ["Table1Row", "Table1Result", "run", "probe_frac", "probe_pair"]

PAPER_EXPECTATION = (
    "Table I: groups A-I support Frac; only B supports three-row "
    "activation; B, C, D support four-row activation; J, K, L support "
    "nothing (command-spacing checks).")


@dataclass(frozen=True)
class Table1Row:
    """Measured capabilities of one group."""

    group_id: str
    vendor: str
    freq_mhz: int
    n_chips: int
    frac: bool
    three_row: bool
    four_row: bool

    def matches(self, profile: GroupProfile) -> bool:
        return (self.frac == profile.frac_capable
                and self.three_row == profile.three_row
                and self.four_row == profile.four_row)


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]
    matches_paper: bool

    def format_table(self) -> str:
        def check(flag: bool) -> str:
            return "yes" if flag else ""

        body = [
            (row.group_id, row.vendor, row.freq_mhz, row.n_chips,
             check(row.frac), check(row.three_row), check(row.four_row))
            for row in self.rows
        ]
        table = markdown_table(
            ("Group", "Vendor", "Freq(MHz)", "#Chips", "Frac",
             "Three-row-activation", "Four-row-activation"),
            body)
        verdict = ("matches Table I" if self.matches_paper
                   else "DEVIATES from Table I")
        return f"{table}\n\nCapability matrix {verdict}."


def probe_frac(fd: FracDram, bank: int = 0, row: int = 1) -> bool:
    """Behavioural Frac probe: does 10x Frac disturb stored all-ones?"""
    fd.fill_row(bank, row, True)
    fd.frac(bank, row, 10)
    weight = float(np.mean(fd.read_row(bank, row)))
    return 0.02 < weight < 0.98


def probe_pair(fd: FracDram, bank: int, r1: int, r2: int,
               rng: np.random.Generator,
               changed_threshold: float = 0.15,
               repeats: int = 2) -> int:
    """Count rows opened by ACT(r1)-PRE-ACT(r2) within r1's sub-array.

    Delegates to the black-box probe in
    :mod:`repro.analysis.reverse_engineering`; returns 2 when no extra
    rows open (or the chip dropped the sequence).
    """
    opened = probe_opened_rows(fd, bank, r1, r2, rng,
                               changed_threshold=changed_threshold,
                               repeats=repeats)
    return len(opened)


def probe_multi_row_support(fd: FracDram, bank: int = 0,
                            max_rows: int = 16,
                            seed: int = 7) -> tuple[bool, bool]:
    """Scan all pairs in sub-array 0: (three-row support, four-row support)."""
    rng = np.random.default_rng(seed)
    rows_per_subarray = int(fd.device.geometry.rows_per_subarray)
    scan_rows = min(max_rows, rows_per_subarray)
    saw_three = saw_four = False
    for r1, r2 in itertools.combinations(range(scan_rows), 2):
        opened = probe_pair(fd, bank, r1, r2, rng)
        if opened == 3:
            saw_three = True
        elif opened >= 4:
            saw_four = True
        if saw_three and saw_four:
            break
    return saw_three, saw_four


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> Table1Result:
    """Probe every group and compare against the declared Table I."""
    rows = []
    all_match = True
    for group_id, profile in GROUPS.items():
        fd = make_fd(group_id, config, serial=0)
        frac = probe_frac(fd)
        three_row, four_row = probe_multi_row_support(fd)
        row = Table1Row(
            group_id=group_id,
            vendor=profile.vendor,
            freq_mhz=profile.freq_mhz,
            n_chips=profile.n_chips,
            frac=frac,
            three_row=three_row,
            four_row=four_row,
        )
        rows.append(row)
        all_match &= row.matches(profile)
    return Table1Result(tuple(rows), all_match)
