"""Experiment DDR4: the Section VII outlook, executable.

The paper argues (via QUAC-TRNG) that DDR4 modules support four-row
activation and therefore F-MAJ and Half-m "potentially".  On the
hypothetical DDR4 profiles (Q1-Q3) we run exactly the checks that
argument needs:

* three-row activation absent, four-row present (the DDR3 group C/D
  situation, where only F-MAJ enables in-memory majority),
* F-MAJ coverage with each group's preferred configuration,
* QUAC-style TRNG throughput and a basic randomness gate.

These are projections from hypothetical calibrations, not measurements of
DDR4 silicon — the point is that every DDR4-relevant code path runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ops import FracDram
from ..dram.chip import DramChip
from ..dram.ddr4 import DDR4_GROUPS
from ..puf.nist import frequency_test, runs_test
from ..trng import QuacTrng
from .base import DEFAULT_CONFIG, ExperimentConfig, markdown_table, percent
from .fig9_fmaj_coverage import coverage_fmaj

__all__ = ["Ddr4GroupOutlook", "Ddr4OutlookResult", "run", "shard_units",
           "run_shard", "merge"]

PAPER_EXPECTATION = (
    "Section VII: DDR4 modules open four rows (QUAC-TRNG), so F-MAJ and "
    "the TRNG should work there; three-row MAJ3 remains impossible.")


@dataclass(frozen=True)
class Ddr4GroupOutlook:
    group_id: str
    vendor: str
    three_row: bool
    four_row: bool
    fmaj_coverage: float
    trng_throughput_mbps: float
    trng_random: bool


@dataclass(frozen=True)
class Ddr4OutlookResult:
    groups: tuple[Ddr4GroupOutlook, ...]

    def outlook_holds(self) -> bool:
        return all(
            (not group.three_row) and group.four_row
            and group.fmaj_coverage > 0.9 and group.trng_random
            for group in self.groups)

    def format_table(self) -> str:
        lines = ["DDR4 outlook (hypothetical Q1-Q3 profiles; Section VII)"]
        lines.append(markdown_table(
            ("group", "vendor", "3-row", "4-row", "F-MAJ coverage",
             "TRNG Mbit/s", "TRNG random"),
            [(g.group_id, g.vendor,
              "yes" if g.three_row else "",
              "yes" if g.four_row else "",
              percent(g.fmaj_coverage),
              f"{g.trng_throughput_mbps:.1f}",
              "yes" if g.trng_random else "NO")
             for g in self.groups]))
        lines.append("\nProjection from hypothetical calibrations — the "
                     "claim is that the DDR4-relevant code paths all work, "
                     "not that these numbers describe real DDR4 silicon.")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The work unit is one
# hypothetical DDR4 group; each unit fabricates its own chips, so units
# never share state.
# ----------------------------------------------------------------------

def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                **_kwargs) -> tuple[str, ...]:
    """One work unit per DDR4 profile."""
    return tuple(DDR4_GROUPS)


def run_shard(config: ExperimentConfig, units,
              trng_bits: int = 4000, **_kwargs) -> list:
    """Run the outlook checks for each group in ``units``; payloads are
    the per-group :class:`Ddr4GroupOutlook` rows."""
    payloads = []
    for group_id in units:
        profile = DDR4_GROUPS[group_id]
        chip = DramChip(profile, geometry=config.geometry(),
                        master_seed=config.master_seed)
        fd = FracDram(chip)
        coverage = float(np.mean([
            coverage_fmaj(fd, profile.preferred_fmaj, bank, subarray)
            for bank in range(config.n_banks)
            for subarray in range(config.subarrays_per_bank)]))
        trng = QuacTrng(DramChip(profile, geometry=config.geometry(),
                                 master_seed=config.master_seed, serial=1))
        bits, stats = trng.generate(trng_bits)
        random_ok = frequency_test(bits).passed() and runs_test(bits).passed()
        payloads.append(Ddr4GroupOutlook(
            group_id=group_id,
            vendor=profile.vendor,
            three_row=fd.can_three_row,
            four_row=fd.can_four_row,
            fmaj_coverage=coverage,
            trng_throughput_mbps=stats.throughput_mbps,
            trng_random=random_ok,
        ))
    return payloads


def merge(config: ExperimentConfig, payloads, **_kwargs) -> Ddr4OutlookResult:
    """Assemble the outlook rows in DDR4 profile order."""
    by_group = {group.group_id: group for group in payloads}
    return Ddr4OutlookResult(
        tuple(by_group[group_id] for group_id in DDR4_GROUPS))


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        trng_bits: int = 4000) -> Ddr4OutlookResult:
    units = shard_units(config)
    return merge(config, run_shard(config, units, trng_bits=trng_bits))
