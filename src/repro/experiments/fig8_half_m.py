"""Experiment F8: Figure 8 — evaluation of the Half-m primitive.

On group B's four-row set {8, 1, 0, 9} we store three data layouts and
evaluate the frozen result of the interrupted four-row activation:

* **Half** — ones in R1/R3, zeros in R2/R4 (two-vs-two split),
* **weak one** — all ones in the four rows,
* **weak zero** — all zeros.

Measurements mirror the paper: a retention-time PDF of the Half value
(compared against the fractional value from five Frac ops as a reference)
and of the weak one, plus the MAJ3 X1/X2 test on each layout.

Paper expectation: the Half retention PDF resembles the 5x-Frac reference;
weak ones retain like normal ones; MAJ3 shows weak ones giving X1=X2=1,
weak zeros X1=X2=0, and only a minority (~16%) of columns yielding the
distinguishable Half signature X1=1, X2=0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.retention import (
    N_BUCKETS,
    RETENTION_BUCKET_LABELS,
    RETENTION_PROBE_TIMES_S,
)
from ..core.batched_ops import BatchedFracDram
from ..core.ops import FracDram, MultiRowPlan
from ..core.verify import COMBO_LABELS
from ..dram.batched import BatchedChip
from .base import (DEFAULT_CONFIG, ExperimentConfig, make_fd, markdown_table,
                   percent, resolve_batch)

__all__ = ["Fig8Result", "run", "shard_units", "run_shard", "merge"]

PAPER_EXPECTATION = (
    "Figure 8: Half retention PDF ~= 5x-Frac reference; weak ones retain "
    "like normal ones; MAJ3 distinguishes the Half value on a minority of "
    "columns (~16%) while weak ones/zeros behave as normal ones/zeros.")

LAYOUTS = ("half", "weak_one", "weak_zero")


def _layout_bits(layout: str, columns: int) -> list[np.ndarray]:
    """Initial values for the opened rows (R1, R2, R3, R4)."""
    ones = np.ones(columns, dtype=bool)
    zeros = np.zeros(columns, dtype=bool)
    if layout == "half":
        return [ones, zeros, ones, zeros]
    if layout == "weak_one":
        return [ones, ones, ones, ones]
    if layout == "weak_zero":
        return [zeros, zeros, zeros, zeros]
    raise ValueError(f"unknown layout {layout!r}")


def _prepare_half_m(fd: FracDram, bank: int, layout: str,
                    subarray: int) -> MultiRowPlan:
    plan = fd.quad_plan(bank, subarray)
    for row, bits in zip(plan.opened, _layout_bits(layout, fd.columns)):
        fd.write_row(bank, row, bits)
    fd.half_m_activate(plan)
    return plan


def _retention_bucket(fd: FracDram, bank: int, subarray: int,
                      prepare, measure_row: int) -> np.ndarray:
    """Bucket the retention of whatever ``prepare`` stores in ``measure_row``."""
    n_cols = fd.columns
    bucket = np.full(n_cols, N_BUCKETS - 1, dtype=int)
    resolved = np.zeros(n_cols, dtype=bool)
    for probe_index, wait_s in enumerate(RETENTION_PROBE_TIMES_S):
        prepare()
        if wait_s > 0:
            fd.precharge_all()
            fd.advance_time(wait_s)
        alive = fd.read_row(bank, measure_row).astype(bool)
        newly_dead = ~alive & ~resolved
        bucket[newly_dead] = probe_index
        resolved |= newly_dead
    return bucket


def _maj3_x1_x2(fd: FracDram, bank: int, layout: str,
                subarray: int) -> tuple[np.ndarray, np.ndarray]:
    """The MAJ3 test on a Half-m result (carrier in local row 2)."""
    triple = fd.triple_plan(bank, subarray)
    carrier = triple.opened[1]  # local row 2

    _prepare_half_m(fd, bank, layout, subarray)
    fd.fill_row(bank, carrier, True)
    fd.multi_row_activate(triple)
    x1 = fd.read_row(bank, triple.opened[0]).astype(bool)

    _prepare_half_m(fd, bank, layout, subarray)
    fd.fill_row(bank, carrier, False)
    fd.multi_row_activate(triple)
    x2 = fd.read_row(bank, triple.opened[0]).astype(bool)
    return x1, x2


def _pdf(bucket: np.ndarray) -> np.ndarray:
    counts = np.bincount(bucket, minlength=N_BUCKETS)
    return counts / counts.sum()


@dataclass(frozen=True)
class Fig8Result:
    half_retention_pdf: np.ndarray
    frac5_reference_pdf: np.ndarray
    weak_one_retention_pdf: np.ndarray
    maj3_fractions: dict[str, dict[str, float]]

    @property
    def half_distinguishable_fraction(self) -> float:
        return self.maj3_fractions["half"]["X1=1,X2=0"]

    def weak_values_behave_normally(self) -> bool:
        """Weak ones/zeros act as normal values for the vast majority of
        columns (the paper reports "decent quality", not a percentage)."""
        return (self.maj3_fractions["weak_one"]["X1=1,X2=1"] > 0.90
                and self.maj3_fractions["weak_zero"]["X1=0,X2=0"] > 0.90)

    def format_table(self) -> str:
        lines = ["Figure 8 — Half-m evaluation on group B"]
        lines.append("\nRetention PDFs (fraction of cells per bucket):")
        header = ("bucket", "Half value", "5x Frac reference", "weak one")
        rows = []
        for bucket in range(N_BUCKETS - 1, -1, -1):
            rows.append((RETENTION_BUCKET_LABELS[bucket],
                         f"{self.half_retention_pdf[bucket]:.2f}",
                         f"{self.frac5_reference_pdf[bucket]:.2f}",
                         f"{self.weak_one_retention_pdf[bucket]:.2f}"))
        lines.append(markdown_table(header, rows))
        lines.append("\nMAJ3 outcomes per layout:")
        header = ("layout", *COMBO_LABELS)
        rows = [(layout,
                 *[f"{self.maj3_fractions[layout][label]:.3f}"
                   for label in COMBO_LABELS])
                for layout in LAYOUTS]
        lines.append(markdown_table(header, rows))
        lines.append(
            f"\nDistinguishable Half value on "
            f"{percent(self.half_distinguishable_fraction)} of columns "
            "(paper: ~16%)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Fleet shard protocol (see repro.fleet.merge).  The work unit is one
# measurement — a retention PDF or one layout's MAJ3 test — on a fresh
# group-B chip whose noise is reseeded to the unit's index, so units
# never share analog state or stream position (the original
# implementation threaded one chip through every measurement, which made
# the measurements order-dependent and unshardable).
# ----------------------------------------------------------------------

#: Unit index doubles as the chip's noise epoch.
UNITS: tuple[tuple[str, str], ...] = (
    ("retention", "half"),
    ("retention", "weak_one"),
    ("retention", "frac5"),
    ("maj3", "half"),
    ("maj3", "weak_one"),
    ("maj3", "weak_zero"),
)


def shard_units(config: ExperimentConfig = DEFAULT_CONFIG,
                **_kwargs) -> tuple[tuple[int, str, str], ...]:
    """One work unit per (epoch, measurement kind, layout)."""
    return tuple((index, kind, layout)
                 for index, (kind, layout) in enumerate(UNITS))


def _batched_prepare_half_m(bfd: BatchedFracDram, plan: MultiRowPlan,
                            layouts, lanes) -> None:
    per_lane = [_layout_bits(layout, bfd.columns) for layout in layouts]
    for position, row in enumerate(plan.opened):
        bits = np.stack([bits_for_lane[position] for bits_for_lane in per_lane])
        bfd.write_row(plan.bank, [row] * len(lanes), bits, lanes)
    bfd.half_m_activate(plan, lanes)


def _batched_retention_bucket(bfd: BatchedFracDram, bank: int, prepare,
                              measure_row: int, lanes) -> np.ndarray:
    """Lane-major ``(L, C)`` retention buckets (see ``_retention_bucket``)."""
    n = len(lanes)
    bucket = np.full((n, bfd.columns), N_BUCKETS - 1, dtype=int)
    resolved = np.zeros((n, bfd.columns), dtype=bool)
    for probe_index, wait_s in enumerate(RETENTION_PROBE_TIMES_S):
        prepare()
        if wait_s > 0:
            bfd.precharge_all(lanes)
            bfd.advance_time(wait_s, lanes)
        alive = bfd.read_row(bank, [measure_row] * n, lanes).astype(bool)
        newly_dead = ~alive & ~resolved
        bucket[newly_dead] = probe_index
        resolved |= newly_dead
    return bucket


def _fleet(config: ExperimentConfig, group_id: str, epochs) -> BatchedFracDram:
    return BatchedFracDram(BatchedChip.from_fleet(
        [(group_id, 0)] * len(epochs), geometry=config.geometry(),
        master_seed=config.master_seed, epochs=list(epochs)))


def run_shard(config: ExperimentConfig, units, group_id: str = "B",
              **_kwargs) -> list:
    """Measure each unit in ``units``; payloads are ``(unit, data)``.

    Units sharing a command-stream shape batch as lanes of one device
    cohort — the same serial-0 chip at each unit's noise epoch: the two
    Half-m retention PDFs together, the MAJ3 layouts together, the
    5x-Frac reference on its own — byte-identical to the scalar
    per-unit loop at any batch width.
    """
    units = list(units)
    bank, subarray = 0, 0
    batch = resolve_batch(config, len(units))
    if batch <= 1:
        payloads = []
        for index, kind, layout in units:
            fd = make_fd(group_id, config, serial=0)
            fd.device.reseed_noise(index)
            quad = fd.quad_plan(bank, subarray)
            measure_row = quad.opened[1]  # local row 1 holds the result
            if (kind, layout) == ("retention", "frac5"):
                def prepare() -> None:
                    fd.fill_row(bank, measure_row, True)
                    fd.frac(bank, measure_row, 5)
                data = _retention_bucket(fd, bank, subarray, prepare,
                                         measure_row)
            elif kind == "retention":
                data = _retention_bucket(
                    fd, bank, subarray,
                    lambda: _prepare_half_m(fd, bank, layout, subarray),
                    measure_row)
            else:
                data = _maj3_x1_x2(fd, bank, layout, subarray)
            payloads.append(((index, kind, layout), data))
        return payloads

    donor = make_fd(group_id, config, serial=0)
    quad = donor.quad_plan(bank, subarray)
    triple = donor.triple_plan(bank, subarray)
    measure_row = quad.opened[1]
    by_shape: dict[str, list[tuple[int, str, str]]] = {}
    for unit in units:
        index, kind, layout = unit
        shape = "frac5" if (kind, layout) == ("retention", "frac5") else kind
        by_shape.setdefault(shape, []).append(unit)
    payloads = []
    for shape, shape_units in by_shape.items():
        for start in range(0, len(shape_units), batch):
            cohort = shape_units[start:start + batch]
            bfd = _fleet(config, group_id, [index for index, _, _ in cohort])
            lanes = bfd.all_lanes()
            layouts = [layout for _, _, layout in cohort]
            if shape == "frac5":
                def prepare() -> None:
                    bfd.fill_row(bank, [measure_row] * len(lanes), True, lanes)
                    bfd.frac(bank, [measure_row] * len(lanes), 5, lanes)
                buckets = _batched_retention_bucket(bfd, bank, prepare,
                                                    measure_row, lanes)
                payloads.extend((unit, buckets[lane].copy())
                                for lane, unit in enumerate(cohort))
            elif shape == "retention":
                buckets = _batched_retention_bucket(
                    bfd, bank,
                    lambda: _batched_prepare_half_m(bfd, quad, layouts, lanes),
                    measure_row, lanes)
                payloads.extend((unit, buckets[lane].copy())
                                for lane, unit in enumerate(cohort))
            else:
                carrier = triple.opened[1]  # local row 2
                _batched_prepare_half_m(bfd, quad, layouts, lanes)
                bfd.fill_row(bank, [carrier] * len(lanes), True, lanes)
                bfd.multi_row_activate(triple, lanes)
                x1 = bfd.read_row(bank, [triple.opened[0]] * len(lanes),
                                  lanes).astype(bool)
                _batched_prepare_half_m(bfd, quad, layouts, lanes)
                bfd.fill_row(bank, [carrier] * len(lanes), False, lanes)
                bfd.multi_row_activate(triple, lanes)
                x2 = bfd.read_row(bank, [triple.opened[0]] * len(lanes),
                                  lanes).astype(bool)
                payloads.extend(
                    (unit, (x1[lane].copy(), x2[lane].copy()))
                    for lane, unit in enumerate(cohort))
    return payloads


def merge(config: ExperimentConfig, payloads, **_kwargs) -> Fig8Result:
    """Assemble the PDFs and MAJ3 outcome shares from unit payloads."""
    by_unit = {(kind, layout): data
               for (_, kind, layout), data in payloads}
    maj3_fractions: dict[str, dict[str, float]] = {}
    for layout in LAYOUTS:
        x1, x2 = by_unit[("maj3", layout)]
        maj3_fractions[layout] = {
            "X1=1,X2=1": float(np.mean(x1 & x2)),
            "X1=0,X2=0": float(np.mean(~x1 & ~x2)),
            "X1=1,X2=0": float(np.mean(x1 & ~x2)),
            "X1=0,X2=1": float(np.mean(~x1 & x2)),
        }
    return Fig8Result(
        half_retention_pdf=_pdf(by_unit[("retention", "half")]),
        frac5_reference_pdf=_pdf(by_unit[("retention", "frac5")]),
        weak_one_retention_pdf=_pdf(by_unit[("retention", "weak_one")]),
        maj3_fractions=maj3_fractions,
    )


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        group_id: str = "B") -> Fig8Result:
    units = shard_units(config)
    return merge(config, run_shard(config, units, group_id=group_id))
