"""Sub-array electrical model: cells, bit-lines, sense amplifiers.

This module is the heart of the reproduction.  A :class:`SubArray` holds a
matrix of *continuous* cell voltages (normalized to Vdd = 1.0) and executes
the low-level consequences of timed commands:

* **ACTIVATE** raises a word-line and charge-shares the row's cells with
  the bit-lines; if left undisturbed for ``sense_enable_cycles`` the sense
  amplifiers fire, rail the bit-lines, and restore the connected cells.

* **PRECHARGE** issued before the sense amps fire *interrupts* activation:
  the word-line closes while the cell still holds the shared, fractional
  voltage — this is the Frac effect (Section III-A, Figure 3).

* **ACTIVATE during an in-flight PRECHARGE** aborts the row close and
  triggers the row-decoder glitch, opening extra rows (Section II-D); the
  subsequent settle either fires the sense amps (MAJ3 / F-MAJ) or a second
  interrupting PRECHARGE freezes the shared voltages (Half-m, Figure 4).

The model is event-driven: commands carry absolute cycle timestamps and
state transitions are resolved lazily in command order, so no per-cycle
tick loop is needed.  All per-column quantities are NumPy vectors; a whole
8 KB row is processed in a handful of vector ops.

Manufacturing variation (sense-amp offsets, leakage time constants, the
per-column primary-row coupling boost, multi-row threshold bias) is drawn
once from the chip's deterministic fabrication stream; per-trial
measurement noise comes from a separate :class:`~repro.dram.rng.NoiseSource`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CommandSequenceError, ConfigurationError
from ..telemetry.registry import active as _telemetry_active
from .decoder import DecoderProfile, resolve_glitch
from .environment import Environment
from .parameters import ElectricalParams, VariationParams
from .rng import NoiseSource

__all__ = ["SubArray", "CouplingProfile"]

#: An ACTIVATE arriving within this many cycles of a PRECHARGE aborts the
#: row close (the decoder-glitch window of ComputeDRAM's sequence).
CLOSE_ABORT_WINDOW: int = 2

#: Bit-line differential (Vdd units) over which partial sense
#: amplification speeds up by a factor of e (slew rate grows with input).
_AMP_DIFFERENTIAL_SCALE: float = 0.2

#: Fraction of full charge-sharing equilibrium reached by a row whose
#: activation is aborted by the in-flight PRECHARGE of a glitch sequence.
#: The word-line barely rises before the close begins, so R1's cells share
#: only partially — the physical origin of R1's reduced influence in MAJ3
#: (and of the "primary row" asymmetry favoring later-opened rows).
INTERRUPTED_SHARE_FRACTION: float = 0.35


@dataclass(frozen=True)
class CouplingProfile:
    """Which opened-row position carries the per-column coupling boost.

    Positions index the ordered open-row tuple ``(R1, R2, R3[, R4])`` as
    returned by the decoder model.  Vendor-dependent (Section VI-A.2):
    group B's strongest row is R2, group C's is R1, group D's is R4.
    """

    primary_position_triple: int = 1
    primary_position_quad: int = 1

    def primary_position(self, n_open: int) -> int | None:
        if n_open == 3:
            return self.primary_position_triple
        if n_open >= 4:
            return self.primary_position_quad
        return None


class SubArray:
    """One DRAM sub-array: ``n_rows`` word-lines crossing ``n_cols`` bit-lines."""

    def __init__(
        self,
        *,
        n_rows: int,
        n_cols: int,
        electrical: ElectricalParams,
        variation: VariationParams,
        decoder_profile: DecoderProfile,
        coupling: CouplingProfile,
        fabrication_rng: np.random.Generator,
        noise: NoiseSource,
        origin: tuple[int, int] = (0, 0),
    ) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ConfigurationError("sub-array dimensions must be positive")
        self.n_rows = n_rows
        self.n_cols = n_cols
        #: (bank index, sub-array index) — address stamped onto telemetry
        #: events so traces can attribute electrical activity.
        self.origin = (int(origin[0]), int(origin[1]))
        self.electrical = electrical
        self.variation = variation
        self.decoder_profile = decoder_profile
        self.coupling = coupling
        self._noise = noise

        # --- manufacturing variation (fixed at "fabrication") ---
        var = variation
        self.sa_offset = fabrication_rng.normal(
            var.sa_offset_mean, var.sa_offset_sigma, size=n_cols)
        primary_mean = var.primary_weight_mean
        if var.primary_weight_module_sigma > 0:
            primary_mean += float(fabrication_rng.normal(
                0.0, var.primary_weight_module_sigma))
        self.primary_boost = np.abs(fabrication_rng.normal(
            primary_mean, var.primary_weight_sigma, size=n_cols))
        bias_mean = var.multirow_bias_mean
        if var.multirow_bias_module_sigma > 0:
            bias_mean += float(fabrication_rng.normal(
                0.0, var.multirow_bias_module_sigma))
        self.multirow_bias = fabrication_rng.normal(
            bias_mean, var.multirow_bias_sigma, size=n_cols)
        self.amp_alpha = np.clip(
            fabrication_rng.normal(var.halfm_amp_mean, var.halfm_amp_sigma,
                                   size=n_cols),
            0.02, 0.998)
        log_tau = fabrication_rng.normal(
            var.tau_log_median_s, var.tau_log_sigma, size=(n_rows, n_cols))
        strong = (fabrication_rng.random(size=(n_rows, n_cols))
                  < var.strong_cell_fraction)
        log_tau = np.where(
            strong, log_tau + np.log(var.strong_cell_tau_multiplier),
            log_tau)
        self.tau_s = np.exp(log_tau)
        self.vrt_mask = (fabrication_rng.random(size=(n_rows, n_cols))
                         < var.vrt_cell_fraction)
        # Interrupt-coupling: how completely a cell latches the shared
        # (fractional) level when the activation is interrupted after one
        # cycle.  Normal cells latch fully; "frac-weak" cells barely move.
        weak = fabrication_rng.random(size=(n_rows, n_cols)) < var.frac_weak_fraction
        weak_coupling = fabrication_rng.uniform(
            0.0, var.frac_weak_coupling_max, size=(n_rows, n_cols))
        self.interrupt_coupling = np.where(weak, weak_coupling, 1.0)

        # --- dynamic state ---
        self.cell_v = np.zeros((n_rows, n_cols))
        self.bitline_v = np.full(n_cols, 0.5)
        self._open_rows: tuple[int, ...] = ()
        self._sense_fired = False
        self._row_buffer: np.ndarray | None = None
        self._last_act_cycle = -(10 ** 9)
        self._pre_started_cycle: int | None = None
        self._preshare_snapshot: np.ndarray | None = None
        self._preshare_rows: tuple[int, ...] = ()

    def reset_dynamic(self) -> None:
        """Return all dynamic state to power-on: discharged cells, precharged
        bit-lines, no open rows.

        Manufacturing variation and the noise stream are untouched — this
        models a power cycle of the same physical silicon, which is what
        per-trial independence in the stability experiments needs.
        """
        self.cell_v[:] = 0.0
        self.bitline_v[:] = 0.5
        self._open_rows = ()
        self._sense_fired = False
        self._row_buffer = None
        self._last_act_cycle = -(10 ** 9)
        self._pre_started_cycle = None
        self._preshare_snapshot = None
        self._preshare_rows = ()

    # ------------------------------------------------------------------
    # introspection ("oscilloscope" access — not available on real DRAM)
    # ------------------------------------------------------------------

    @property
    def open_rows(self) -> tuple[int, ...]:
        """Currently raised word-lines, in open order."""
        return self._open_rows

    @property
    def sense_fired(self) -> bool:
        return self._sense_fired

    def probe_cell(self, row: int, col: int) -> float:
        """Analog cell voltage (Vdd units) — simulator-only introspection."""
        return float(self.cell_v[row, col])

    def probe_bitline(self, col: int) -> float:
        """Analog bit-line voltage (Vdd units) — simulator-only introspection."""
        return float(self.bitline_v[col])

    @property
    def is_idle(self) -> bool:
        """True when no rows are open and no precharge is in flight."""
        return not self._open_rows and self._pre_started_cycle is None

    # ------------------------------------------------------------------
    # command interface (called by the bank with absolute cycle stamps)
    # ------------------------------------------------------------------

    def activate(self, row: int, cycle: int, env: Environment) -> None:
        """Raise word-line ``row`` at ``cycle``.

        If a PRECHARGE is still in flight (within the abort window) the
        close is aborted and the decoder glitch resolves the set of rows
        that actually open.
        """
        if not 0 <= row < self.n_rows:
            raise CommandSequenceError(f"row {row} outside sub-array")
        if self._pre_started_cycle is not None:
            if cycle - self._pre_started_cycle < CLOSE_ABORT_WINDOW:
                self._abort_close_and_glitch(row, cycle, env)
                return
            self._commit_close()
        self.settle(cycle, env)
        if self._open_rows:
            # Out-of-spec ACT-ACT: physically just raises another word-line.
            if row not in self._open_rows:
                self._open((*self._open_rows, row), cycle)
        else:
            self._open((row,), cycle)

    def precharge(self, cycle: int, env: Environment) -> None:
        """Begin closing all open rows and precharging bit-lines at ``cycle``."""
        if self._pre_started_cycle is not None:
            self._commit_close()
        self.settle(cycle, env)
        if not self._open_rows:
            self.bitline_v[:] = 0.5
            return
        if not self._sense_fired:
            # A late interrupt (two or more cycles after the last ACT, as
            # in Half-m's trailing PRE) catches the sense amplifiers
            # mid-flight: fast columns have partially railed their value.
            amplify_steps = cycle - self._last_act_cycle - 1
            if amplify_steps >= 1:
                self._partial_amplify(min(amplify_steps, 3), env)
        self._pre_started_cycle = cycle

    def settle(self, cycle: int, env: Environment) -> None:
        """Resolve any state transition due strictly before ``cycle`` ends.

        Commits an in-flight row close whose abort window has passed, or
        fires the sense amplifiers if activation has run undisturbed for
        ``sense_enable_cycles``.
        """
        if self._pre_started_cycle is not None:
            if cycle - self._pre_started_cycle >= CLOSE_ABORT_WINDOW:
                self._commit_close()
            return  # interrupted activation: sense amps can no longer fire
        if (self._open_rows and not self._sense_fired
                and (cycle - self._last_act_cycle
                     >= self.electrical.sense_enable_cycles)):
            self._fire_sense_amps(env)

    def finish(self, cycle: int, env: Environment) -> None:
        """Settle and commit any pending close regardless of window timing.

        Used at end-of-sequence when the controller guarantees enough idle
        cycles have elapsed.
        """
        self.settle(cycle, env)
        if self._pre_started_cycle is not None:
            self._commit_close()

    def row_buffer(self) -> np.ndarray:
        """Sensed row-buffer bits (physical polarity) after the SA fired."""
        if not self._sense_fired or self._row_buffer is None:
            raise CommandSequenceError(
                "row buffer read before sense amplifiers fired")
        return self._row_buffer.copy()

    def write_open_row(self, physical_bits: np.ndarray) -> None:
        """Drive ``physical_bits`` through the bit-lines into all open rows.

        Requires a sensed (normally activated) row, mirroring a WRITE after
        ACT + tRCD on real hardware.
        """
        if not self._sense_fired:
            raise CommandSequenceError("WRITE issued before sense amplifiers fired")
        bits = np.asarray(physical_bits, dtype=bool)
        if bits.shape != (self.n_cols,):
            raise CommandSequenceError(
                f"write data has shape {bits.shape}, expected ({self.n_cols},)")
        level = np.where(bits, self.electrical.restore_level, 0.0)
        self.bitline_v[:] = level
        for row in self._open_rows:
            self.cell_v[row] = level
        self._row_buffer = bits.copy()

    # ------------------------------------------------------------------
    # retention / leakage
    # ------------------------------------------------------------------

    def leak(self, dt_s: float, env: Environment) -> None:
        """Advance simulated time by ``dt_s`` seconds of pure leakage.

        Only legal while idle (no open rows), matching the experimental
        procedure of "stop sending any memory commands" (Section V-A).
        """
        if not self.is_idle:
            raise CommandSequenceError("cannot advance time with rows open")
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        if dt_s == 0:
            return
        tau = self.tau_s
        if self.vrt_mask.any():
            span = self.variation.vrt_tau_span
            exponent = self._noise.rng.uniform(-1.0, 1.0, size=self.cell_v.shape)
            vrt_factor = np.where(self.vrt_mask, span ** exponent, 1.0)
            tau = tau * vrt_factor
        decay = np.exp(-dt_s * env.leakage_acceleration / tau)
        self.cell_v *= decay

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _open(self, rows: tuple[int, ...], cycle: int) -> None:
        """Raise word-lines ``rows`` (replacing the open set) and share charge."""
        self._preshare_rows = rows
        self._preshare_snapshot = self.cell_v[list(rows)].copy()
        self._open_rows = rows
        self._last_act_cycle = cycle
        self._sense_fired = False
        self._row_buffer = None
        self._charge_share()

    def _abort_close_and_glitch(self, row: int, cycle: int, env: Environment) -> None:
        """ACT arrived inside the precharge abort window: decoder glitch."""
        del env  # no sense-amp involvement on this path
        self._pre_started_cycle = None
        previous = self._open_rows
        if not previous:
            self.bitline_v[:] = 0.5
            self._open((row,), cycle)
            return
        glitch_rows = resolve_glitch(
            self.decoder_profile, previous[0], row, self.n_rows)
        if self._sense_fired:
            # The sense amps fired before the PRECHARGE, so the bit-lines
            # are still driven to the rails: every row opened by the abort
            # is overwritten with the sensed value.  This is the RowClone /
            # ComputeDRAM in-DRAM row-copy mechanism.
            opened = tuple(dict.fromkeys((*previous, *glitch_rows)))
            self._record_glitch(previous, row, opened, overwrite=True)
            level = self.bitline_v.copy()
            for open_row in opened:
                self.cell_v[open_row] = level
            self._open_rows = opened
            self._last_act_cycle = cycle
            return
        # The interrupted first activation only partially shared: roll the
        # connected cells back toward their pre-share voltage, then the
        # precharge equalizer briefly resets the bit-lines to Vdd/2.
        self._record_glitch(previous, row, glitch_rows, overwrite=False)
        self._rollback_partial_share()
        self.bitline_v[:] = 0.5
        self._open(glitch_rows, cycle)

    def _record_glitch(self, previous: tuple[int, ...], requested: int,
                       opened: tuple[int, ...], *, overwrite: bool) -> None:
        telemetry = _telemetry_active()
        if telemetry is None:
            return
        telemetry.count("dram.glitch_overwrite" if overwrite
                        else "dram.glitch_abort")
        telemetry.emit("glitch", {
            "bank": self.origin[0], "subarray": self.origin[1],
            "previous": [int(r) for r in previous],
            "requested": int(requested),
            "opened": [int(r) for r in opened],
            "overwrite": overwrite,
        })

    def _rollback_partial_share(self) -> None:
        if self._preshare_snapshot is None:
            return
        rows = list(self._preshare_rows)
        full = self.cell_v[rows]
        original = self._preshare_snapshot
        partial = original + INTERRUPTED_SHARE_FRACTION * (full - original)
        self.cell_v[rows] = partial

    def _commit_close(self) -> None:
        """Word-lines drop: cells keep their current (possibly fractional)
        voltage; bit-lines finish precharging to Vdd/2.

        When the close interrupts an un-sensed activation (the Frac /
        Half-m freeze), each cell only latches the shared level to the
        degree its access transistor allows: frac-weak cells mostly revert
        to their pre-share voltage.
        """
        if (not self._sense_fired and self._preshare_snapshot is not None
                and self._preshare_rows):
            rows = list(self._preshare_rows)
            coupling = self.interrupt_coupling[rows]
            shared = self.cell_v[rows]
            self.cell_v[rows] = (
                self._preshare_snapshot
                + coupling * (shared - self._preshare_snapshot))
            telemetry = _telemetry_active()
            if telemetry is not None:
                telemetry.count("dram.frac_freeze")
                telemetry.emit("frac_freeze", {
                    "bank": self.origin[0], "subarray": self.origin[1],
                    "rows": [int(row) for row in rows],
                })
        self._pre_started_cycle = None
        self._open_rows = ()
        self._preshare_rows = ()
        self._preshare_snapshot = None
        self._sense_fired = False
        self._row_buffer = None
        self.bitline_v[:] = 0.5

    def _coupling_weights(self) -> np.ndarray:
        """Per-(open row, column) coupling weights for charge sharing."""
        k = len(self._open_rows)
        weights = np.ones((k, self.n_cols))
        primary = self.coupling.primary_position(k)
        if primary is not None and primary < k:
            weights[primary] += self.primary_boost
        jitter_sigma = self.variation.weight_jitter_sigma
        if jitter_sigma > 0:
            weights *= 1.0 + self._noise.normal(jitter_sigma, (k, self.n_cols))
            np.clip(weights, 0.05, None, out=weights)
        return weights

    def _charge_share(self) -> None:
        """Equilibrate bit-lines with all open cells (per column)."""
        rows = list(self._open_rows)
        if not rows:
            return
        cb = self.electrical.bitline_to_cell_ratio
        weights = self._coupling_weights()
        cell_block = self.cell_v[rows]
        numerator = cb * self.bitline_v + np.sum(weights * cell_block, axis=0)
        denominator = cb + np.sum(weights, axis=0)
        equilibrium = numerator / denominator
        self.bitline_v[:] = equilibrium
        self.cell_v[rows] = equilibrium

    def _partial_amplify(self, steps: int, env: Environment) -> None:
        """Move bit-lines and connected cells part-way toward the rails.

        Called when an interrupting PRECHARGE arrives after the sense
        amplifiers began engaging but before full amplification.  The rail
        each column heads for is the comparator's decision; per-column
        strength ``amp_alpha`` encodes sense-amp speed variation.
        """
        telemetry = _telemetry_active()
        if telemetry is not None:
            telemetry.count("dram.partial_amplify")
            telemetry.emit("partial_amplify", {
                "bank": self.origin[0], "subarray": self.origin[1],
                "rows": [int(row) for row in self._open_rows],
                "steps": int(steps),
            })
        noise_sigma = env.read_noise_scale(
            self.variation.read_noise_sigma, self.variation.read_noise_temp_coeff)
        sensed = self.bitline_v + self._noise.normal(noise_sigma, self.n_cols)
        threshold = 0.5 + self.sa_offset + env.effective_offset_shift()
        if len(self._open_rows) >= 3:
            threshold = threshold + self.multirow_bias
        rail = np.where(sensed > threshold, self.electrical.restore_level, 0.0)
        # Amplification speed grows with the input differential: a bit-line
        # far from the threshold (weak one/zero) rails almost immediately,
        # while a near-Half bit-line amplifies only as fast as the column's
        # sense amp allows.  This is why weak ones/zeros behave like normal
        # values while the Half value survives on slow-sense-amp columns.
        differential = np.abs(sensed - threshold)
        residual = (1.0 - self.amp_alpha) * np.exp(
            -differential / _AMP_DIFFERENTIAL_SCALE)
        pull = 1.0 - residual ** steps
        self.bitline_v += pull * (rail - self.bitline_v)
        rows = list(self._open_rows)
        self.cell_v[rows] += pull * (rail - self.cell_v[rows])

    def _fire_sense_amps(self, env: Environment) -> None:
        """Amplify bit-lines to the rails and restore all open cells."""
        noise_sigma = env.read_noise_scale(
            self.variation.read_noise_sigma, self.variation.read_noise_temp_coeff)
        sensed = self.bitline_v + self._noise.normal(noise_sigma, self.n_cols)
        threshold = 0.5 + self.sa_offset + env.effective_offset_shift()
        if len(self._open_rows) >= 3:
            threshold = threshold + self.multirow_bias
        decision = sensed > threshold
        telemetry = _telemetry_active()
        if telemetry is not None:
            # Sense-amp flips: cells whose restored logical value differs
            # from their pre-share state (the destructive part of sensing).
            flips = 0
            if self._preshare_snapshot is not None:
                flips = int(np.sum((self._preshare_snapshot > 0.5) != decision))
            telemetry.count("dram.sense_fired")
            telemetry.count("dram.sense_flips", flips)
            telemetry.emit("sense", {
                "bank": self.origin[0], "subarray": self.origin[1],
                "rows": [int(row) for row in self._open_rows],
                "ones": int(np.sum(decision)), "flips": flips,
            })
        level = np.where(decision, self.electrical.restore_level, 0.0)
        self.bitline_v[:] = level
        for row in self._open_rows:
            self.cell_v[row] = level
        self._row_buffer = decision
        self._sense_fired = True
