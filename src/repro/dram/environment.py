"""Operating environment: temperature and supply voltage.

The environment influences the model in three physically motivated ways:

* **Leakage acceleration** — cell leakage is thermally activated; we apply
  an Arrhenius-style factor doubling leakage roughly every 10 C (the
  commonly used rule of thumb for DRAM retention, cf. Liu et al. 2013).

* **Read noise** — thermal noise grows mildly with temperature.  This is
  the mechanism behind the small intra-HD increase with temperature seen in
  Figure 12(b).

* **Supply voltage** — all cell voltages, the bit-line precharge level, and
  the sense-amp threshold scale *together* with Vdd because the sense amp
  is a ratio-metric comparator.  Consequently a Vdd change barely perturbs
  PUF responses (Figure 12(a)) — the normalized decision margin is
  unchanged; only a small secondary offset-shift term remains.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Environment", "NOMINAL_VDD_VOLTS", "NOMINAL_TEMPERATURE_C"]

NOMINAL_VDD_VOLTS: float = 1.5
NOMINAL_TEMPERATURE_C: float = 20.0

#: Leakage doubles every this many degrees C.
_LEAKAGE_DOUBLING_C: float = 10.0

#: Fraction of a sense-amp offset that does NOT track Vdd (residual
#: non-ratiometric component, e.g. device Vt mismatch).
_OFFSET_VDD_SENSITIVITY: float = 0.08


@dataclass(frozen=True)
class Environment:
    """Immutable operating point of a DRAM device."""

    temperature_c: float = NOMINAL_TEMPERATURE_C
    vdd_volts: float = NOMINAL_VDD_VOLTS

    def __post_init__(self) -> None:
        if not 0.5 <= self.vdd_volts <= 2.5:
            raise ValueError(f"vdd {self.vdd_volts} V outside plausible DDR3 range")
        if not -40.0 <= self.temperature_c <= 125.0:
            raise ValueError(f"temperature {self.temperature_c} C outside model range")

    @property
    def leakage_acceleration(self) -> float:
        """Multiplier on leakage rate relative to 20 C (Arrhenius-like)."""
        return 2.0 ** ((self.temperature_c - NOMINAL_TEMPERATURE_C)
                       / _LEAKAGE_DOUBLING_C)

    @property
    def vdd_ratio(self) -> float:
        """Supply voltage relative to nominal."""
        return self.vdd_volts / NOMINAL_VDD_VOLTS

    def read_noise_scale(self, base_sigma: float, temp_coeff: float) -> float:
        """Effective read-noise sigma at this operating point."""
        delta = max(self.temperature_c - NOMINAL_TEMPERATURE_C, 0.0)
        return base_sigma * (1.0 + temp_coeff * delta)

    def effective_offset_shift(self) -> float:
        """Additive shift (Vdd units) applied to all thresholds off-nominal.

        The sense amplifier is ratio-metric, so most of an offset tracks
        Vdd; the small non-tracking residue shows up as a common-mode shift
        when the supply moves.  At nominal Vdd this is exactly zero.
        """
        return _OFFSET_VDD_SENSITIVITY * (1.0 - self.vdd_ratio) * 0.05

    def with_temperature(self, temperature_c: float) -> "Environment":
        return replace(self, temperature_c=temperature_c)

    def with_vdd(self, vdd_volts: float) -> "Environment":
        return replace(self, vdd_volts=vdd_volts)


NOMINAL_ENVIRONMENT = Environment()
