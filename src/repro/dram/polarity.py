"""True-cell / anti-cell polarity maps (Section II-C).

Modern DRAM reuses a neighboring bit-line as the sense-amp reference, so
half of the cells ("anti-cells") store the *inverse* physical voltage of
their logical value: Vdd in an anti-cell reads as logical zero.  Anti-cells
can be located empirically by pausing refresh and watching which bits leak
from logical zero toward one (true cells only leak one -> zero).

The paper writes inverted data to anti-cells so all cells physically hold
the same voltage, then treats everything as true cells.  We expose polarity
schemes so this behaviour can be reproduced and tested:

* ``"true-only"`` (default) — every cell is a true cell; experiments match
  the paper's simplifying assumption.
* ``"row-paired"`` — rows come in true/anti pairs (rows with bit 1 of the
  local address set are anti), mimicking a folded bit-line layout.

The chip applies the logical<->physical inversion automatically on reads
and writes, which is exactly the paper's "store opposite logic values to
anti-cells by default" policy.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["POLARITY_SCHEMES", "polarity_map", "is_anti_row"]

POLARITY_SCHEMES = ("true-only", "row-paired")


def polarity_map(scheme: str, n_rows: int) -> np.ndarray:
    """Boolean vector over local row addresses; ``True`` marks anti rows.

    >>> polarity_map("row-paired", 8).tolist()
    [False, False, True, True, False, False, True, True]
    """
    if n_rows < 0:
        raise ConfigurationError("n_rows must be non-negative")
    if scheme == "true-only":
        return np.zeros(n_rows, dtype=bool)
    if scheme == "row-paired":
        rows = np.arange(n_rows)
        return (rows >> 1 & 1).astype(bool)
    raise ConfigurationError(
        f"unknown polarity scheme {scheme!r}; expected one of {POLARITY_SCHEMES}")


def is_anti_row(scheme: str, local_row: int) -> bool:
    """Polarity of a single local row under ``scheme``."""
    if scheme == "true-only":
        return False
    if scheme == "row-paired":
        return bool(local_row >> 1 & 1)
    raise ConfigurationError(
        f"unknown polarity scheme {scheme!r}; expected one of {POLARITY_SCHEMES}")
