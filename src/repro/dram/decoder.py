"""Row-decoder glitch model for out-of-spec multi-row activation.

Under nominal timing the row decoder latches exactly one word-line.  The
ComputeDRAM / QUAC-TRNG command sequence ``ACTIVATE(R1)-PRECHARGE-
ACTIVATE(R2)`` with zero idle cycles interrupts the decoder mid-reset and
implicitly raises *extra* word-lines.  Section VI-A.1 of FracDRAM reports
the empirical structure of this glitch for DDR3:

* Only ``2**k`` rows can open simultaneously, and every ``(R1, R2)`` pair
  that opens ``2**k`` rows differs in exactly ``k`` address bits — but not
  every such pair works; the differing bits must fall on positions the
  (vendor-specific) predecoder exposes.

* Group B additionally supports a *three*-row glitch: e.g. activating
  ``R1=1, R2=2`` opens rows ``{0, 1, 2}`` — the two-bit hypercube minus its
  top element (``R1 | R2``).  This asymmetric set is what ComputeDRAM's
  MAJ3 builds on.

* Group B's four-row combos, e.g. ``R1=8, R2=1`` opening ``{0, 1, 8, 9}``,
  and groups C/D's combos (``R1=1, R2=2`` opening ``{0, 1, 2, 3}``) are
  full two-bit hypercubes.

The *order* of the returned rows is significant downstream: charge-sharing
coupling weights are assigned per position (R1 opened earliest, glitch rows
last), which is the source of the "primary row" asymmetry.  We return rows
in the paper's naming order ``(R1, R2, R3, R4)`` where ``R3 = R1 & R2``
(the hypercube base) and ``R4 = R1 | R2`` (the top).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from ..errors import ConfigurationError

__all__ = ["DecoderProfile", "resolve_glitch", "differing_bits", "hypercube_rows"]

BitPair = Tuple[int, int]


def differing_bits(r1: int, r2: int) -> tuple[int, ...]:
    """Bit positions where two row addresses differ, ascending.

    >>> differing_bits(8, 1)
    (0, 3)
    """
    xor = r1 ^ r2
    bits = []
    position = 0
    while xor:
        if xor & 1:
            bits.append(position)
        xor >>= 1
        position += 1
    return tuple(bits)


def hypercube_rows(r1: int, r2: int) -> tuple[int, ...]:
    """All addresses in the hypercube spanned by ``r1`` and ``r2``.

    Returned in paper order: ``(R1, R2, base, ..., top)`` for the two-bit
    case; for larger cubes the base-derived members follow in ascending
    order after R1 and R2.

    >>> hypercube_rows(8, 1)
    (8, 1, 0, 9)
    >>> hypercube_rows(1, 2)
    (1, 2, 0, 3)
    """
    base = r1 & r2
    bits = differing_bits(r1, r2)
    members = set()
    for mask_index in range(1 << len(bits)):
        member = base
        for bit_index, bit in enumerate(bits):
            if mask_index >> bit_index & 1:
                member |= 1 << bit
        members.add(member)
    rest = sorted(members - {r1, r2})
    return (r1, r2, *rest)


@dataclass(frozen=True)
class DecoderProfile:
    """Vendor-specific multi-row-activation capability.

    ``triple_bit_pairs`` — differing-bit pairs for which the glitch opens
    the hypercube *minus its top* (three rows).  Only group B has these.

    ``quad_bit_pairs`` — differing-bit pairs for which the glitch opens the
    full two-bit hypercube (four rows).  Groups B, C, D.

    ``enforces_command_spacing`` — groups J/K/L implement a command-spacing
    check and silently drop commands arriving too close together, which
    defeats both the glitch *and* the Frac interrupt.
    """

    triple_bit_pairs: FrozenSet[BitPair] = field(default_factory=frozenset)
    quad_bit_pairs: FrozenSet[BitPair] = field(default_factory=frozenset)
    enforces_command_spacing: bool = False

    def __post_init__(self) -> None:
        for pair in (*self.triple_bit_pairs, *self.quad_bit_pairs):
            if len(pair) != 2 or pair[0] >= pair[1] or pair[0] < 0:
                raise ConfigurationError(
                    f"bit pair {pair!r} must be an ascending pair of bit positions")

    @property
    def supports_three_row(self) -> bool:
        return bool(self.triple_bit_pairs)

    @property
    def supports_four_row(self) -> bool:
        return bool(self.quad_bit_pairs)

    @property
    def supports_glitch(self) -> bool:
        return self.supports_three_row or self.supports_four_row


@functools.lru_cache(maxsize=8192)
def resolve_glitch(profile: DecoderProfile, r1: int, r2: int,
                   rows_per_subarray: int) -> tuple[int, ...]:
    """Rows opened by ``ACT(r1)-PRE-ACT(r2)`` with zero idle cycles.

    ``r1`` and ``r2`` are *local* (sub-array) row addresses.  Returns the
    ordered tuple of open rows; when no glitch fires the result is simply
    ``(r1, r2)`` (both word-lines end up raised, no implicit extras).

    Memoized: the result depends only on the frozen decoder profile and
    the (small) address pair, yet the batched engine resolves it per
    lane per activation — on multi-row hot loops that lookup dominates
    the abort-glitch path.
    """
    if not 0 <= r1 < rows_per_subarray or not 0 <= r2 < rows_per_subarray:
        raise ConfigurationError(
            f"rows ({r1}, {r2}) outside sub-array of {rows_per_subarray} rows")
    if r1 == r2:
        return (r1,)
    bits = differing_bits(r1, r2)
    if len(bits) != 2:
        return (r1, r2)
    pair: BitPair = (bits[0], bits[1])
    cube = hypercube_rows(r1, r2)
    if any(row >= rows_per_subarray for row in cube):
        return (r1, r2)
    if pair in profile.triple_bit_pairs:
        # The triple glitch additionally latches the bitwise-AND address
        # (e.g. R1=1, R2=2 also opens R3=0); the cube top (R1|R2) is not
        # latched.  When one activated row *is* the base or the top (one
        # address bitwise contains the other), no extra row opens.
        base = r1 & r2
        if base in (r1, r2):
            return (r1, r2)
        return (r1, r2, base)
    if pair in profile.quad_bit_pairs:
        return cube
    return (r1, r2)
