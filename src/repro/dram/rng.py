"""Deterministic random-stream derivation for the DRAM simulator.

Two kinds of randomness live in this model and they must never be mixed:

* **Manufacturing variation** — sense-amplifier offsets, per-cell leakage
  time constants, coupling-weight asymmetries.  These are burnt into a chip
  at "fabrication" and must be a *pure function* of the chip's identity:
  re-instantiating the same chip (same master seed, group, serial) must
  produce bit-identical silicon.  This property is what makes the Frac-based
  PUF meaningful in simulation — a response is unique to a chip and
  reproducible across program runs.

* **Measurement noise** — thermal noise on bit-lines, per-trial jitter of
  coupling, VRT state flips.  These differ between repeated operations on
  the same chip and are drawn from a separate, reseedable stream.

Streams are derived by hashing human-readable key paths into
``numpy.random.SeedSequence`` entropy, so adding a new consumer never
perturbs existing streams (no ordering coupling between consumers).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["derive_seed", "derive_rng", "NoiseSource"]

_HASH_BYTES = 16  # 128 bits of derived entropy per stream


def derive_seed(master_seed: int, *keys: object) -> int:
    """Derive a stable child seed from a master seed and a key path.

    The key path is rendered with ``repr`` and hashed with BLAKE2b, so any
    hashable-free mixture of strings and integers works and the result is
    stable across Python processes (unlike built-in ``hash``).

    >>> derive_seed(0, "chip", 3) == derive_seed(0, "chip", 3)
    True
    >>> derive_seed(0, "chip", 3) != derive_seed(0, "chip", 4)
    True
    """
    hasher = hashlib.blake2b(digest_size=_HASH_BYTES)
    hasher.update(str(int(master_seed)).encode())
    for key in keys:
        hasher.update(b"/")
        hasher.update(repr(key).encode())
    return int.from_bytes(hasher.digest(), "little")


def derive_rng(master_seed: int, *keys: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the derived stream."""
    return np.random.default_rng(
        np.random.SeedSequence(derive_seed(master_seed, *keys)))


class NoiseSource:
    """Reseedable measurement-noise stream for one chip.

    A fresh :class:`NoiseSource` starts from a deterministic child seed of
    the chip identity, so a full simulation run is reproducible end to end;
    :meth:`reseed` lets experiments decorrelate repeated measurement
    campaigns (e.g. the two PUF response collections taken ten days apart
    in the paper).
    """

    def __init__(self, master_seed: int, *identity: object) -> None:
        self._master_seed = master_seed
        self._identity: tuple[object, ...] = tuple(identity)
        self._epoch = 0
        self._rng = derive_rng(master_seed, *identity, "noise", 0)

    @property
    def epoch(self) -> int:
        """Number of times this source has been reseeded."""
        return self._epoch

    @property
    def rng(self) -> np.random.Generator:
        """The live generator; consumers draw from it directly."""
        return self._rng

    def reseed(self, epoch: int | None = None) -> None:
        """Jump to a new deterministic noise epoch.

        With ``epoch=None`` the next sequential epoch is used.  Passing an
        explicit epoch makes a measurement campaign addressable: epoch 0 is
        "day one", epoch 1 "ten days later", and so on.
        """
        self._epoch = self._epoch + 1 if epoch is None else int(epoch)
        self._rng = derive_rng(self._master_seed, *self._identity, "noise", self._epoch)

    def normal(self, scale: float, size: int | tuple[int, ...]) -> np.ndarray:
        """Gaussian noise with standard deviation ``scale``."""
        if scale <= 0.0:
            return np.zeros(size)
        return self._rng.normal(0.0, scale, size=size)

    def spawn(self, *keys: object) -> "NoiseSource":
        """Create an independent child source (e.g. one per bank).

        The child inherits the parent's current epoch, so reseeding a
        device-level source and re-spawning its children moves the whole
        tree to the new measurement campaign.
        """
        child = NoiseSource(self._master_seed, *self._identity, *keys)
        if self._epoch:
            child.reseed(self._epoch)
        return child


def interleave_identity(keys: Iterable[object]) -> tuple[object, ...]:
    """Normalize an identity key path to a hashable tuple (helper)."""
    return tuple(keys)
