"""Trial-batched sub-array physics: one vector op across B lanes.

:class:`BatchedSubArray` executes the exact electrical model of
:class:`~repro.dram.subarray.SubArray` for ``B`` independent *lanes* at
once.  A lane is one scalar trial: its cell-voltage plane is one slice of
a ``(B, n_rows, n_cols)`` tensor, its manufacturing variation one slice
of stacked (or broadcast) fabrication arrays, and its measurement noise a
private :class:`~repro.dram.rng.NoiseSource` — the *same* source a scalar
trial would own.  Charge sharing, partial amplification, sense, leakage
and the decoder-glitch resolution then run as whole-batch NumPy
expressions instead of B separate passes.

Byte-identity contract
----------------------

The batched engine must produce bit-for-bit the floats the scalar engine
produces, lane by lane.  Three rules make that hold:

* **RNG draws are never merged across lanes.**  Each lane draws from its
  own generator, in the same order and with the same shapes as its scalar
  counterpart; draws are stacked, arithmetic is vectorized.

* **Expressions mirror scalar associativity.**  Every kernel is a
  transliteration of the scalar method with a leading lane axis; gathered
  operations (``a[mask] * b[mask]``) are used only where they are bitwise
  equal to the scalar gather-after-compute form.

* **Structurally divergent lanes are partitioned, not masked.**  Open-row
  tuples, pending precharges and sense flags are per-lane Python state;
  each operation groups the active lanes by structural signature (open
  count, glitch shape, amplify steps) and runs one vector kernel per
  group.

Environments are captured per lane at construction; batched lanes do not
support mid-run :meth:`~repro.dram.chip.DramChip.set_environment`.

:class:`BatchedChip` assembles a grid of batched sub-arrays with the
bank/row routing, polarity and command-spacing semantics of
:class:`~repro.dram.chip.DramChip`, again per lane.  Construct one with
:meth:`BatchedChip.from_chips` (one donor chip per lane, e.g. a serial
sweep), :meth:`BatchedChip.from_fleet` (one freshly fabricated chip per
``(group_id, serial)`` spec — the device axis), or
:meth:`BatchedChip.from_subarray_views` (one donor *sub-array* per lane
from a single chip, e.g. the PUF experiments).

Lanes carry *heterogeneous fabrication state*: every per-lane array —
sense-amp offsets, leak taus, VRT population, coupling weights, decoder
profile, polarity, row map — is stacked from its donor, so a batch may
mix vendor groups and serials freely as long as geometry (and, for the
controller's shared command templates, electrical timing) agree.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import AddressError, CommandSequenceError, ConfigurationError
from ..telemetry.registry import active as _telemetry_active
from .chip import MIN_COMMAND_SPACING_CYCLES, DramChip
from .decoder import resolve_glitch
from .environment import Environment
from .parameters import GeometryParams
from .pcg_jump import JumpGroup, UniformBlockJump
from .polarity import is_anti_row
from .subarray import (
    _AMP_DIFFERENTIAL_SCALE,
    CLOSE_ABORT_WINDOW,
    INTERRUPTED_SHARE_FRACTION,
    SubArray,
)

__all__ = ["BatchedSubArray", "BatchedChip"]

#: Entries kept in the per-sub-array leak decay cache (distinct dt values
#: recur across retention passes; each entry is a (B, R, C) float plane).
_LEAK_CACHE_CAPACITY: int = 8


def _stack_fab(donors: Sequence[SubArray], attr: str) -> np.ndarray:
    """Stack a fabrication array across lanes.

    When every lane shares one donor (trial batching over a single chip)
    the array is broadcast instead of copied — fabrication data is
    read-only, so the zero-copy view is safe.
    """
    first = getattr(donors[0], attr)
    if all(donor is donors[0] for donor in donors):
        return np.broadcast_to(first, (len(donors),) + first.shape)
    return np.stack([getattr(donor, attr) for donor in donors])


class BatchedSubArray:
    """``B`` scalar sub-arrays executing in lock-step vector form."""

    def __init__(
        self,
        *,
        donors: Sequence[SubArray],
        noises: Sequence,
        environments: Sequence[Environment],
        origins: Sequence[tuple[int, int]],
    ) -> None:
        if not donors:
            raise ConfigurationError("batched sub-array needs at least one lane")
        if not (len(donors) == len(noises) == len(environments) == len(origins)):
            raise ConfigurationError("per-lane inputs must have equal length")
        first = donors[0]
        for donor in donors:
            if (donor.n_rows, donor.n_cols) != (first.n_rows, first.n_cols):
                raise ConfigurationError("all lanes must share sub-array shape")
        self.n_lanes = len(donors)
        self.n_rows = first.n_rows
        self.n_cols = first.n_cols
        self.origins = [(int(b), int(s)) for b, s in origins]
        self._noises = list(noises)

        # --- fabrication variation, stacked lane-major ---
        self.sa_offset = _stack_fab(donors, "sa_offset")            # (B, C)
        self.primary_boost = _stack_fab(donors, "primary_boost")    # (B, C)
        self.multirow_bias = _stack_fab(donors, "multirow_bias")    # (B, C)
        self.amp_alpha = _stack_fab(donors, "amp_alpha")            # (B, C)
        self.tau_s = _stack_fab(donors, "tau_s")                    # (B, R, C)
        self.vrt_mask = _stack_fab(donors, "vrt_mask")              # (B, R, C)
        self.interrupt_coupling = _stack_fab(donors, "interrupt_coupling")

        # --- per-lane parameters (vendor profile x environment) ---
        self._couplings = [donor.coupling for donor in donors]
        self._decoders = [donor.decoder_profile for donor in donors]
        self._sense_enable = [donor.electrical.sense_enable_cycles
                              for donor in donors]
        self._restore = np.array([donor.electrical.restore_level
                                  for donor in donors])
        self._cb = np.array([donor.electrical.bitline_to_cell_ratio
                             for donor in donors])
        self._jitter_sigma = [donor.variation.weight_jitter_sigma
                              for donor in donors]
        self._jitter_any = any(sigma > 0 for sigma in self._jitter_sigma)
        self._primary_cache: dict[int, list[int | None]] = {}
        self._weights_base_cache: dict[tuple, np.ndarray] = {}
        self._vrt_span = [donor.variation.vrt_tau_span for donor in donors]
        self._vrt_any = [bool(donor.vrt_mask.any()) for donor in donors]
        # Static per-lane VRT cell coordinates and their tau values, so
        # the leak path never re-scans the (sparse) mask.
        self._vrt_idx = [np.nonzero(donor.vrt_mask) for donor in donors]
        self._vrt_tau = [self.tau_s[lane][idx]
                         for lane, idx in enumerate(self._vrt_idx)]
        # Leak jump tables: the scalar engine draws a full (R, C) uniform
        # block per leak event but only reads the VRT positions, so each
        # lane gets a PCG64 jump that predicts exactly those positions
        # and skips the stream past the block (bit-identical either way).
        # Built lazily on the first leak — experiments that never advance
        # retention time (e.g. the PUF sweeps) skip the setup entirely.
        self._vrt_jump: list[UniformBlockJump | None] = [None] * self.n_lanes
        self._leak_ctx_cache: dict[tuple[int, ...], tuple] = {}
        self._noise_sigma = [
            env.read_noise_scale(donor.variation.read_noise_sigma,
                                 donor.variation.read_noise_temp_coeff)
            for donor, env in zip(donors, environments)]
        self._offset_shift = np.array([env.effective_offset_shift()
                                       for env in environments])
        self._leak_acc = np.array([env.leakage_acceleration
                                   for env in environments])
        self._leak_cache: dict[float, np.ndarray] = {}

        # --- dynamic state: tensors for voltages, lists for structure ---
        self.cell_v = np.zeros((self.n_lanes, self.n_rows, self.n_cols))
        # Rows that have ever been opened (the only way cells get written).
        # Never-written rows hold exact +0.0, so the leak decay multiply
        # can skip them: 0.0 * decay == +0.0 bit-for-bit.
        self._written = np.zeros((self.n_lanes, self.n_rows), dtype=bool)
        self.bitline_v = np.full((self.n_lanes, self.n_cols), 0.5)
        self._open_rows: list[tuple[int, ...]] = [()] * self.n_lanes
        # Exact counts of lanes with open rows / a pending precharge.
        # They let the hot no-op cases (settle/precharge hitting a
        # sub-array no lane is using) return before any per-lane scan.
        self._n_open = 0
        self._n_pre = 0
        self._sense_fired: list[bool] = [False] * self.n_lanes
        self._row_buffer: list[np.ndarray | None] = [None] * self.n_lanes
        self._last_act: list[int] = [-(10 ** 9)] * self.n_lanes
        self._pre_started: list[int | None] = [None] * self.n_lanes
        self._preshare_snapshot: list[np.ndarray | None] = [None] * self.n_lanes
        self._preshare_rows: list[tuple[int, ...]] = [()] * self.n_lanes

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def lane_is_idle(self, lane: int) -> bool:
        return not self._open_rows[lane] and self._pre_started[lane] is None

    def open_rows(self, lane: int) -> tuple[int, ...]:
        return self._open_rows[lane]

    def reseed_noise(self, epoch: int) -> None:
        """Reseed every lane's noise source to ``epoch``.

        A reseeded child derives the same stream as a freshly spawned
        child reseeded to that epoch (see :class:`~repro.dram.rng
        .NoiseSource`), so this matches the tree the scalar
        :meth:`~repro.dram.chip.DramChip.reseed_noise` rebuilds.
        """
        for noise in self._noises:
            noise.reseed(int(epoch))

    # ------------------------------------------------------------------
    # command interface (lanes: lane ids; cycles: (B,) absolute stamps)
    # ------------------------------------------------------------------

    def activate(self, lanes: Sequence[int], rows: Sequence[int],
                 cycles: np.ndarray) -> None:
        abort_lanes: list[int] = []
        abort_rows: list[int] = []
        advance: list[int] = []
        advance_rows: list[int] = []
        for lane, row in zip(lanes, rows):
            row = int(row)
            if not 0 <= row < self.n_rows:
                raise CommandSequenceError(f"row {row} outside sub-array")
            pre = self._pre_started[lane]
            if pre is not None and cycles[lane] - pre < CLOSE_ABORT_WINDOW:
                abort_lanes.append(lane)
                abort_rows.append(row)
            else:
                advance.append(lane)
                advance_rows.append(row)
        if abort_lanes:
            self._abort_close_and_glitch(abort_lanes, abort_rows, cycles)
        if not advance:
            return
        if self._n_pre:
            commit = [lane for lane in advance
                      if self._pre_started[lane] is not None]
            if commit:
                self._commit_close(commit)
        self.settle(advance, cycles)
        groups: dict[int, tuple[list[int], list[tuple[int, ...]]]] = {}
        for lane, row in zip(advance, advance_rows):
            current = self._open_rows[lane]
            if current:
                # Out-of-spec ACT-ACT: physically just raises another word-line.
                if row in current:
                    continue
                new_rows = (*current, row)
            else:
                new_rows = (row,)
            group = groups.setdefault(len(new_rows), ([], []))
            group[0].append(lane)
            group[1].append(new_rows)
        for group_lanes, row_tuples in groups.values():
            self._open_group(group_lanes, row_tuples, cycles)

    def precharge(self, lanes: Sequence[int], cycles: np.ndarray) -> None:
        if not self._n_pre and not self._n_open:
            # Nothing open, nothing closing: the command only re-asserts
            # the idle bit-line level (exactly what the general path
            # would do for every lane).
            self.bitline_v[np.asarray(lanes, dtype=np.intp)] = 0.5
            return
        if self._n_pre:
            commit = [lane for lane in lanes
                      if self._pre_started[lane] is not None]
            if commit:
                self._commit_close(commit)
        self.settle(lanes, cycles)
        idle = [lane for lane in lanes if not self._open_rows[lane]]
        if idle:
            self.bitline_v[np.asarray(idle, dtype=np.intp)] = 0.5
        open_lanes = [lane for lane in lanes if self._open_rows[lane]]
        amp_groups: dict[tuple[int, int], list[int]] = {}
        for lane in open_lanes:
            if not self._sense_fired[lane]:
                amplify_steps = int(cycles[lane]) - self._last_act[lane] - 1
                if amplify_steps >= 1:
                    key = (min(amplify_steps, 3), len(self._open_rows[lane]))
                    amp_groups.setdefault(key, []).append(lane)
        for (steps, _), group_lanes in amp_groups.items():
            self._partial_amplify(group_lanes, steps)
        for lane in open_lanes:
            self._pre_started[lane] = int(cycles[lane])
        self._n_pre += len(open_lanes)

    def settle(self, lanes: Sequence[int], cycles: np.ndarray) -> None:
        if not self._n_pre and not self._n_open:
            return
        commit: list[int] = []
        fire: dict[int, list[int]] = {}
        for lane in lanes:
            pre = self._pre_started[lane]
            if pre is not None:
                if cycles[lane] - pre >= CLOSE_ABORT_WINDOW:
                    commit.append(lane)
                continue  # interrupted activation: sense amps can no longer fire
            if (self._open_rows[lane] and not self._sense_fired[lane]
                    and cycles[lane] - self._last_act[lane]
                    >= self._sense_enable[lane]):
                fire.setdefault(len(self._open_rows[lane]), []).append(lane)
        if commit:
            self._commit_close(commit)
        for group_lanes in fire.values():
            self._fire_sense_amps(group_lanes)

    def finish(self, lanes: Sequence[int], cycles: np.ndarray) -> None:
        self.settle(lanes, cycles)
        if self._n_pre:
            commit = [lane for lane in lanes
                      if self._pre_started[lane] is not None]
            if commit:
                self._commit_close(commit)

    def row_buffer(self, lanes: Sequence[int]) -> np.ndarray:
        """Sensed bits (physical polarity), lane-major ``(len(lanes), C)``."""
        out = np.empty((len(lanes), self.n_cols), dtype=bool)
        for index, lane in enumerate(lanes):
            buffer = self._row_buffer[lane]
            if not self._sense_fired[lane] or buffer is None:
                raise CommandSequenceError(
                    "row buffer read before sense amplifiers fired")
            out[index] = buffer
        return out

    def write_open_row(self, lanes: Sequence[int],
                       physical_bits: np.ndarray) -> None:
        bits = np.asarray(physical_bits, dtype=bool)
        if bits.shape != (len(lanes), self.n_cols):
            raise CommandSequenceError(
                f"write data has shape {bits.shape}, expected "
                f"({len(lanes)}, {self.n_cols})")
        for lane in lanes:
            if not self._sense_fired[lane]:
                raise CommandSequenceError(
                    "WRITE issued before sense amplifiers fired")
        groups: dict[int, tuple[list[int], list[int]]] = {}
        for index, lane in enumerate(lanes):
            group = groups.setdefault(len(self._open_rows[lane]), ([], []))
            group[0].append(lane)
            group[1].append(index)
        for group_lanes, indices in groups.values():
            lane_arr = np.asarray(group_lanes, dtype=np.intp)
            rows_mat = np.asarray([self._open_rows[lane]
                                   for lane in group_lanes], dtype=np.intp)
            group_bits = bits[indices]
            level = np.where(group_bits, self._restore[lane_arr][:, None], 0.0)
            self.bitline_v[lane_arr] = level
            self.cell_v[lane_arr[:, None], rows_mat] = level[:, None, :]
            for offset, lane in enumerate(group_lanes):
                self._row_buffer[lane] = group_bits[offset].copy()

    # ------------------------------------------------------------------
    # retention / leakage
    # ------------------------------------------------------------------

    def leak(self, lanes: Sequence[int], dt_s: float) -> None:
        for lane in lanes:
            if not self.lane_is_idle(lane):
                raise CommandSequenceError("cannot advance time with rows open")
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        if dt_s == 0:
            return
        base = self._leak_base(dt_s)
        # Per-lane VRT draws, same shape/order as the scalar engine; the
        # expensive transcendental (one exp over every VRT cell of every
        # lane) runs once, concatenated — gather -> elementwise ->
        # scatter is bitwise identical to the scalar full-array version
        # because the non-VRT factor there is an exact ``tau * 1.0``.
        vrt_lanes = [lane for lane in lanes if self._vrt_any[lane]]
        corrected = None
        flat_cells = self.cell_v.reshape(-1)
        if vrt_lanes:
            group, tau_cat, span_cat, acc_cat, flat_idx = (
                self._leak_ctx(tuple(vrt_lanes)))
            picked = group.values_flat(
                [self._noises[lane].rng.bit_generator for lane in vrt_lanes])
            if picked is None:  # non-PCG64 stream: fall back to real draws
                picked = np.concatenate([
                    self._noises[lane].rng.uniform(
                        -1.0, 1.0, size=(self.n_rows, self.n_cols)
                    )[self._vrt_idx[lane]]
                    for lane in vrt_lanes])
            tau = tau_cat * span_cat ** picked
            corrected = flat_cells[flat_idx] * np.exp(((-dt_s) * acc_cat) / tau)
        if len(lanes) == self.n_lanes:
            written = self._written
        else:
            selected = np.zeros(self.n_lanes, dtype=bool)
            selected[np.asarray(lanes, dtype=np.intp)] = True
            written = self._written & selected[:, None]
        # Decay only rows that were ever written: the rest are exact +0.0
        # and 0.0 * decay == +0.0, so skipping them is bitwise identical
        # while touching a fraction of the (B, R, C) tensor.
        dirty = np.nonzero(written.reshape(-1))[0]
        if dirty.size:
            cells_2d = self.cell_v.reshape(-1, self.n_cols)
            cells_2d[dirty] *= base.reshape(-1, self.n_cols)[dirty]
        if vrt_lanes:
            flat_cells[flat_idx] = corrected

    def _lane_jump(self, lane: int) -> UniformBlockJump | None:
        """The lane's (lazily built) VRT leak jump table."""
        jump = self._vrt_jump[lane]
        if jump is None and self._vrt_any[lane]:
            jump = UniformBlockJump(
                np.ravel_multi_index(self._vrt_idx[lane],
                                     (self.n_rows, self.n_cols)),
                self.n_rows * self.n_cols)
            self._vrt_jump[lane] = jump
        return jump

    def _leak_ctx(self, key: tuple[int, ...]):
        """Cached per-lane-set leak context: jump group + flattened params.

        Concatenating the per-lane VRT tau / span / acceleration vectors
        once per lane set turns the per-leak work into a handful of flat
        array ops instead of a Python loop over lanes.
        """
        ctx = self._leak_ctx_cache.get(key)
        if ctx is None:
            counts = [self._vrt_tau[lane].size for lane in key]
            block = self.n_rows * self.n_cols
            ctx = (
                JumpGroup([self._lane_jump(lane) for lane in key]),
                np.concatenate([self._vrt_tau[lane] for lane in key]),
                np.repeat(np.array([self._vrt_span[lane] for lane in key]),
                          counts),
                np.repeat(np.array([float(self._leak_acc[lane])
                                    for lane in key]), counts),
                np.concatenate([
                    lane * block + np.ravel_multi_index(
                        self._vrt_idx[lane], (self.n_rows, self.n_cols))
                    for lane in key]),
            )
            if len(self._leak_ctx_cache) >= _LEAK_CACHE_CAPACITY:
                self._leak_ctx_cache.pop(next(iter(self._leak_ctx_cache)))
            self._leak_ctx_cache[key] = ctx
        return ctx

    def _leak_base(self, dt_s: float) -> np.ndarray:
        """``exp(-dt * acceleration / tau)`` for every lane, cached per dt."""
        key = float(dt_s)
        base = self._leak_cache.get(key)
        if base is None:
            num = (-dt_s) * self._leak_acc
            # In-place exp: one fresh (B, R, C) allocation per miss, not
            # two — misses are dominated by page faults on these buffers.
            base = num[:, None, None] / self.tau_s
            np.exp(base, out=base)
            if len(self._leak_cache) >= _LEAK_CACHE_CAPACITY:
                self._leak_cache.pop(next(iter(self._leak_cache)))
            self._leak_cache[key] = base
        return base

    # ------------------------------------------------------------------
    # internals (vector kernels over structurally uniform lane groups)
    # ------------------------------------------------------------------

    def _open_group(self, lanes: Sequence[int],
                    row_tuples: Sequence[tuple[int, ...]],
                    cycles: np.ndarray) -> None:
        lane_arr = np.asarray(lanes, dtype=np.intp)
        rows_mat = np.asarray(row_tuples, dtype=np.intp)
        self._written[lane_arr[:, None], rows_mat] = True
        snapshots = self.cell_v[lane_arr[:, None], rows_mat]
        for index, lane in enumerate(lanes):
            self._preshare_rows[lane] = row_tuples[index]
            self._preshare_snapshot[lane] = snapshots[index]
            if not self._open_rows[lane]:
                self._n_open += 1
            self._open_rows[lane] = row_tuples[index]
            self._last_act[lane] = int(cycles[lane])
            self._sense_fired[lane] = False
            self._row_buffer[lane] = None
        self._charge_share(lanes, lane_arr, rows_mat)

    def _abort_close_and_glitch(self, lanes: Sequence[int],
                                rows: Sequence[int],
                                cycles: np.ndarray) -> None:
        for lane in lanes:
            if self._pre_started[lane] is not None:
                self._n_pre -= 1
            self._pre_started[lane] = None
        fresh: list[int] = []
        fresh_rows: list[tuple[int, ...]] = []
        sensed_groups: dict[int, tuple[list[int], list[tuple[int, ...]]]] = {}
        unsensed: list[int] = []
        unsensed_rows: list[tuple[int, ...]] = []
        for lane, row in zip(lanes, rows):
            previous = self._open_rows[lane]
            if not previous:
                fresh.append(lane)
                fresh_rows.append((row,))
                continue
            glitch_rows = resolve_glitch(
                self._decoders[lane], previous[0], row, self.n_rows)
            if self._sense_fired[lane]:
                opened = tuple(dict.fromkeys((*previous, *glitch_rows)))
                self._record_glitch(lane, previous, row, opened, overwrite=True)
                group = sensed_groups.setdefault(len(opened), ([], []))
                group[0].append(lane)
                group[1].append(opened)
            else:
                self._record_glitch(lane, previous, row, glitch_rows,
                                    overwrite=False)
                unsensed.append(lane)
                unsensed_rows.append(glitch_rows)
        if fresh:
            self.bitline_v[np.asarray(fresh, dtype=np.intp)] = 0.5
            self._open_group(fresh, fresh_rows, cycles)
        for group_lanes, opened_list in sensed_groups.values():
            # Bit-lines still driven: every opened row takes the sensed
            # value (the in-DRAM row-copy mechanism).
            lane_arr = np.asarray(group_lanes, dtype=np.intp)
            rows_mat = np.asarray(opened_list, dtype=np.intp)
            self._written[lane_arr[:, None], rows_mat] = True
            level = self.bitline_v[lane_arr]
            self.cell_v[lane_arr[:, None], rows_mat] = level[:, None, :]
            for index, lane in enumerate(group_lanes):
                self._open_rows[lane] = opened_list[index]
                self._last_act[lane] = int(cycles[lane])
        if unsensed:
            self._rollback_partial_share(unsensed)
            self.bitline_v[np.asarray(unsensed, dtype=np.intp)] = 0.5
            glitch_groups: dict[int, tuple[list[int], list[tuple[int, ...]]]] = {}
            for lane, glitch_rows in zip(unsensed, unsensed_rows):
                group = glitch_groups.setdefault(len(glitch_rows), ([], []))
                group[0].append(lane)
                group[1].append(glitch_rows)
            for group_lanes, rows_list in glitch_groups.values():
                self._open_group(group_lanes, rows_list, cycles)

    def _record_glitch(self, lane: int, previous: tuple[int, ...],
                       requested: int, opened: tuple[int, ...],
                       *, overwrite: bool) -> None:
        telemetry = _telemetry_active()
        if telemetry is None:
            return
        telemetry.count("dram.glitch_overwrite" if overwrite
                        else "dram.glitch_abort")
        telemetry.emit("glitch", {
            "bank": self.origins[lane][0], "subarray": self.origins[lane][1],
            "previous": [int(r) for r in previous],
            "requested": int(requested),
            "opened": [int(r) for r in opened],
            "overwrite": overwrite,
        })

    def _rollback_partial_share(self, lanes: Sequence[int]) -> None:
        groups: dict[int, list[int]] = {}
        for lane in lanes:
            if self._preshare_snapshot[lane] is None:
                continue
            groups.setdefault(len(self._preshare_rows[lane]), []).append(lane)
        for group_lanes in groups.values():
            lane_arr = np.asarray(group_lanes, dtype=np.intp)
            rows_mat = np.asarray([self._preshare_rows[lane]
                                   for lane in group_lanes], dtype=np.intp)
            full = self.cell_v[lane_arr[:, None], rows_mat]
            original = np.stack([self._preshare_snapshot[lane]
                                 for lane in group_lanes])
            partial = original + INTERRUPTED_SHARE_FRACTION * (full - original)
            self.cell_v[lane_arr[:, None], rows_mat] = partial

    def _commit_close(self, lanes: Sequence[int]) -> None:
        freeze: dict[int, list[int]] = {}
        for lane in lanes:
            if (not self._sense_fired[lane]
                    and self._preshare_snapshot[lane] is not None
                    and self._preshare_rows[lane]):
                freeze.setdefault(len(self._preshare_rows[lane]), []).append(lane)
        telemetry = _telemetry_active()
        for group_lanes in freeze.values():
            lane_arr = np.asarray(group_lanes, dtype=np.intp)
            rows_mat = np.asarray([self._preshare_rows[lane]
                                   for lane in group_lanes], dtype=np.intp)
            coupling = self.interrupt_coupling[lane_arr[:, None], rows_mat]
            shared = self.cell_v[lane_arr[:, None], rows_mat]
            snapshot = np.stack([self._preshare_snapshot[lane]
                                 for lane in group_lanes])
            self.cell_v[lane_arr[:, None], rows_mat] = (
                snapshot + coupling * (shared - snapshot))
            if telemetry is not None:
                for lane in group_lanes:
                    telemetry.count("dram.frac_freeze")
                    telemetry.emit("frac_freeze", {
                        "bank": self.origins[lane][0],
                        "subarray": self.origins[lane][1],
                        "rows": [int(r) for r in self._preshare_rows[lane]],
                    })
        closed_open = 0
        for lane in lanes:
            self._pre_started[lane] = None
            if self._open_rows[lane]:
                closed_open += 1
                self._open_rows[lane] = ()
            self._preshare_rows[lane] = ()
            self._preshare_snapshot[lane] = None
            self._sense_fired[lane] = False
            self._row_buffer[lane] = None
        # Every caller filters on a pending precharge, so the whole group
        # leaves the pending set at once.
        self._n_pre -= len(lanes)
        self._n_open -= closed_open
        self.bitline_v[np.asarray(lanes, dtype=np.intp)] = 0.5

    def _primary_positions(self, k: int) -> list[int | None]:
        """Per-lane primary coupling position for ``k`` open rows, cached.

        ``CouplingProfile.primary_position`` is pure in ``(profile, k)``,
        so one lookup pass per distinct ``k`` serves every charge share.
        """
        cached = self._primary_cache.get(k)
        if cached is None:
            cached = [coupling.primary_position(k)
                      for coupling in self._couplings]
            self._primary_cache[k] = cached
        return cached

    def _weights_base(self, lanes: tuple[int, ...], k: int) -> np.ndarray:
        """Jitter-free coupling weights for a lane group, cached.

        The ones-plus-primary-boost base is pure in ``(lanes, k)``;
        callers must never mutate the returned array (the jitter path
        multiplies into a fresh copy).
        """
        key = (lanes, k)
        cached = self._weights_base_cache.get(key)
        if cached is None:
            cached = np.ones((len(lanes), k, self.n_cols))
            primaries = self._primary_positions(k)
            for index, lane in enumerate(lanes):
                primary = primaries[lane]
                if primary is not None and primary < k:
                    cached[index, primary] += self.primary_boost[lane]
            if len(self._weights_base_cache) >= 16:
                self._weights_base_cache.clear()
            self._weights_base_cache[key] = cached
        return cached

    def _lane_noise_draws(self, lanes: Sequence[int], sigma_vec: np.ndarray,
                          shape: tuple[int, ...]) -> np.ndarray:
        """Per-lane Gaussian draws, one ``standard_normal`` per lane.

        Bitwise-identical to ``NoiseSource.normal`` per lane:
        ``normal(0, s)`` computes ``0.0 + s*x`` per value; drawing raw
        into the block with ``standard_normal(out=...)``, scaling by the
        lane sigma and adding ``0.0`` computes ``s*x + 0.0`` — the same
        float (IEEE addition commutes) — while skipping the per-call
        loc/scale machinery on the multi-row hot path.  Zero-sigma lanes
        draw nothing (stream untouched), exactly like ``NoiseSource``.
        """
        count = 1
        for extent in shape:
            count *= extent
        draws = np.empty((len(lanes), *shape))
        flat = draws.reshape(len(lanes), count)
        scales = np.empty((len(lanes), *(1,) * len(shape)))
        for index, lane in enumerate(lanes):
            sigma = sigma_vec[lane]
            if sigma > 0.0:
                self._noises[lane].rng.standard_normal(out=flat[index])
                scales.flat[index] = sigma
            else:
                flat[index] = 0.0
                scales.flat[index] = 1.0  # keep the zeros exactly +0.0
        draws *= scales
        draws += 0.0
        return draws

    def _coupling_weights(self, lanes: Sequence[int], lane_arr: np.ndarray,
                          k: int) -> np.ndarray:
        weights = self._weights_base(tuple(lanes), k)
        if not self._jitter_any:
            # No lane jitters: the scalar engine skips the multiply and
            # the clip outright (and draws nothing), so skipping here is
            # exact, not merely close.
            return weights
        # Zero-sigma lanes draw nothing (NoiseSource returns zeros
        # without consuming); 1.0 + 0.0 multiplies are bitwise no-ops
        # and the 0.05 clip never binds for weights >= 1.
        draws = self._lane_noise_draws(lanes, self._jitter_sigma,
                                       (k, self.n_cols))
        weights = weights * (1.0 + draws)
        np.clip(weights, 0.05, None, out=weights)
        return weights

    def _charge_share(self, lanes: Sequence[int], lane_arr: np.ndarray,
                      rows_mat: np.ndarray) -> None:
        k = rows_mat.shape[1]
        if k == 0:
            return
        weights = self._coupling_weights(lanes, lane_arr, k)
        cell_block = self.cell_v[lane_arr[:, None], rows_mat]
        cb = self._cb[lane_arr][:, None]
        if k == 1:
            # A one-element reduction returns its element bit-for-bit, so
            # the single-row case (every plain ACT) drops the axis sums.
            numerator = cb * self.bitline_v[lane_arr] + (
                weights[:, 0] * cell_block[:, 0])
            denominator = cb + weights[:, 0]
        else:
            numerator = cb * self.bitline_v[lane_arr] + np.sum(
                weights * cell_block, axis=1)
            denominator = cb + np.sum(weights, axis=1)
        equilibrium = numerator / denominator
        self.bitline_v[lane_arr] = equilibrium
        self.cell_v[lane_arr[:, None], rows_mat] = equilibrium[:, None, :]

    def _partial_amplify(self, lanes: Sequence[int], steps: int) -> None:
        lane_arr = np.asarray(lanes, dtype=np.intp)
        rows_mat = np.asarray([self._open_rows[lane] for lane in lanes],
                              dtype=np.intp)
        k = rows_mat.shape[1]
        telemetry = _telemetry_active()
        if telemetry is not None:
            for lane in lanes:
                telemetry.count("dram.partial_amplify")
                telemetry.emit("partial_amplify", {
                    "bank": self.origins[lane][0],
                    "subarray": self.origins[lane][1],
                    "rows": [int(r) for r in self._open_rows[lane]],
                    "steps": int(steps),
                })
        draws = self._lane_noise_draws(lanes, self._noise_sigma,
                                       (self.n_cols,))
        sensed = self.bitline_v[lane_arr] + draws
        threshold = (0.5 + self.sa_offset[lane_arr]
                     ) + self._offset_shift[lane_arr][:, None]
        if k >= 3:
            threshold = threshold + self.multirow_bias[lane_arr]
        rail = np.where(sensed > threshold,
                        self._restore[lane_arr][:, None], 0.0)
        differential = np.abs(sensed - threshold)
        residual = (1.0 - self.amp_alpha[lane_arr]) * np.exp(
            -differential / _AMP_DIFFERENTIAL_SCALE)
        pull = 1.0 - residual ** steps
        bitline = self.bitline_v[lane_arr]
        bitline += pull * (rail - bitline)
        self.bitline_v[lane_arr] = bitline
        cell_block = self.cell_v[lane_arr[:, None], rows_mat]
        cell_block += pull[:, None, :] * (rail[:, None, :] - cell_block)
        self.cell_v[lane_arr[:, None], rows_mat] = cell_block

    def _fire_sense_amps(self, lanes: Sequence[int]) -> None:
        lane_arr = np.asarray(lanes, dtype=np.intp)
        rows_mat = np.asarray([self._open_rows[lane] for lane in lanes],
                              dtype=np.intp)
        k = rows_mat.shape[1]
        draws = self._lane_noise_draws(lanes, self._noise_sigma,
                                       (self.n_cols,))
        sensed = self.bitline_v[lane_arr] + draws
        threshold = (0.5 + self.sa_offset[lane_arr]
                     ) + self._offset_shift[lane_arr][:, None]
        if k >= 3:
            threshold = threshold + self.multirow_bias[lane_arr]
        decision = sensed > threshold
        telemetry = _telemetry_active()
        if telemetry is not None:
            for index, lane in enumerate(lanes):
                flips = 0
                if self._preshare_snapshot[lane] is not None:
                    flips = int(np.sum(
                        (self._preshare_snapshot[lane] > 0.5) != decision[index]))
                telemetry.count("dram.sense_fired")
                telemetry.count("dram.sense_flips", flips)
                telemetry.emit("sense", {
                    "bank": self.origins[lane][0],
                    "subarray": self.origins[lane][1],
                    "rows": [int(r) for r in self._open_rows[lane]],
                    "ones": int(np.sum(decision[index])),
                    "flips": flips,
                })
        level = np.where(decision, self._restore[lane_arr][:, None], 0.0)
        self.bitline_v[lane_arr] = level
        self.cell_v[lane_arr[:, None], rows_mat] = level[:, None, :]
        for index, lane in enumerate(lanes):
            self._row_buffer[lane] = decision[index].copy()
            self._sense_fired[lane] = True

    # ------------------------------------------------------------------
    # fused entry points (repro.xir)
    # ------------------------------------------------------------------
    #
    # The xir executor (:mod:`repro.xir.executor`) replays a compiled
    # experiment program as whole-batch kernels.  These are the phases
    # of the step-by-step walk above with the structural bookkeeping
    # (open-row lists, pending-precharge scans, sense-window checks)
    # stripped: the compiler already proved what each phase touches and
    # when, so the kernels only move voltages.  Every expression mirrors
    # its step-by-step counterpart bit-for-bit; RNG draws arrive
    # pre-advanced from the executor's merged per-lane streams.  The
    # kernels leave ``_open_rows``/``_pre_started`` untouched (lanes
    # stay structurally idle), which is what lets batched and fused
    # calls interleave on one device.

    def xir_charge_share(self, lanes: Sequence[int], lane_arr: np.ndarray,
                         rows_mat: np.ndarray,
                         jitter_draws: np.ndarray | None,
                         want_snapshot: bool) -> np.ndarray | None:
        """Fused ACT body: mark written, snapshot, charge-share.

        ``jitter_draws`` is ``None`` on jitter-free sub-arrays, else the
        pre-scaled ``(B, k, C)`` weight-jitter draws.  Returns the
        pre-share cell snapshot (for freeze and flips accounting) when
        requested, else ``None``.
        """
        k = rows_mat.shape[1]
        self._written[lane_arr[:, None], rows_mat] = True
        # Fancy indexing copies, so this block doubles as the pre-share
        # snapshot (it is never mutated below).
        cell_block = self.cell_v[lane_arr[:, None], rows_mat]
        weights = self._weights_base(tuple(lanes), k)
        if jitter_draws is not None:
            weights = weights * (1.0 + jitter_draws)
            np.clip(weights, 0.05, None, out=weights)
        cb = self._cb[lane_arr][:, None]
        if k == 1:
            numerator = cb * self.bitline_v[lane_arr] + (
                weights[:, 0] * cell_block[:, 0])
            denominator = cb + weights[:, 0]
        else:
            numerator = cb * self.bitline_v[lane_arr] + np.sum(
                weights * cell_block, axis=1)
            denominator = cb + np.sum(weights, axis=1)
        equilibrium = numerator / denominator
        self.bitline_v[lane_arr] = equilibrium
        self.cell_v[lane_arr[:, None], rows_mat] = equilibrium[:, None, :]
        return cell_block if want_snapshot else None

    def xir_sense(self, lane_arr: np.ndarray, rows_mat: np.ndarray,
                  draws: np.ndarray) -> np.ndarray:
        """Fused sense-amp firing; returns the ``(B, C)`` decisions."""
        k = rows_mat.shape[1]
        sensed = self.bitline_v[lane_arr] + draws
        threshold = (0.5 + self.sa_offset[lane_arr]
                     ) + self._offset_shift[lane_arr][:, None]
        if k >= 3:
            threshold = threshold + self.multirow_bias[lane_arr]
        decision = sensed > threshold
        level = np.where(decision, self._restore[lane_arr][:, None], 0.0)
        self.bitline_v[lane_arr] = level
        self.cell_v[lane_arr[:, None], rows_mat] = level[:, None, :]
        return decision

    def xir_write(self, lane_arr: np.ndarray, rows_mat: np.ndarray,
                  physical_bits: np.ndarray) -> None:
        """Fused WRITE into sensed open rows (physical polarity)."""
        level = np.where(physical_bits, self._restore[lane_arr][:, None], 0.0)
        self.bitline_v[lane_arr] = level
        self.cell_v[lane_arr[:, None], rows_mat] = level[:, None, :]

    def xir_store(self, lane_arr: np.ndarray, rows_mat: np.ndarray,
                  physical_bits: np.ndarray) -> None:
        """Fused whole write-row cycle (open + write + close collapsed).

        The net state transition of ``charge_share -> sense -> write ->
        close`` on one row: every intermediate bit-line and cell level is
        overwritten by the write, so only the written restore levels, the
        refresh marking and the idle bit-line remain — the charge-share /
        sense draws are dead and the executor jumps their streams instead
        of drawing them.
        """
        self._written[lane_arr[:, None], rows_mat] = True
        level = np.where(physical_bits, self._restore[lane_arr][:, None], 0.0)
        self.cell_v[lane_arr[:, None], rows_mat] = level[:, None, :]
        self.bitline_v[lane_arr] = 0.5

    def xir_freeze(self, lane_arr: np.ndarray, rows_mat: np.ndarray,
                   snapshot: np.ndarray) -> None:
        """Fused interrupted-precharge freeze (the Frac payoff)."""
        coupling = self.interrupt_coupling[lane_arr[:, None], rows_mat]
        shared = self.cell_v[lane_arr[:, None], rows_mat]
        self.cell_v[lane_arr[:, None], rows_mat] = (
            snapshot + coupling * (shared - snapshot))
        self.bitline_v[lane_arr] = 0.5

    def xir_frac_burst(self, lanes: Sequence[int], lane_arr: np.ndarray,
                       rows_mat: np.ndarray,
                       jitter_draws: np.ndarray | None,
                       n_frac: int) -> None:
        """``n_frac`` fused (charge-share, freeze) pairs — one Frac burst.

        Bitwise identical to ``n_frac`` sequential
        :meth:`xir_charge_share` / :meth:`xir_freeze` pairs on a single
        row: the per-iteration formulas are verbatim, only the loop
        overhead (index gathers, weight-base lookups, the intermediate
        ``cell_v`` store each freeze immediately overwrites) is hoisted.
        ``jitter_draws`` is ``None`` on jitter-free sub-arrays, else the
        pre-scaled ``(B, n_frac, C)`` weight-jitter draws.
        """
        row_index = (lane_arr[:, None], rows_mat)
        self._written[row_index] = True
        base = self._weights_base(tuple(lanes), 1)
        cb = self._cb[lane_arr][:, None]
        coupling = self.interrupt_coupling[row_index]
        bitline: np.ndarray | float = self.bitline_v[lane_arr]
        cell = self.cell_v[row_index]
        for index in range(n_frac):
            if jitter_draws is None:
                w0 = base[:, 0]
            else:
                weights = base * (1.0 + jitter_draws[:, index:index + 1])
                np.clip(weights, 0.05, None, out=weights)
                w0 = weights[:, 0]
            numerator = cb * bitline + w0 * cell[:, 0]
            denominator = cb + w0
            equilibrium = numerator / denominator
            cell = cell + coupling * (equilibrium[:, None, :] - cell)
            # The freeze leaves the bit-line at the 0.5 idle level; the
            # next share multiplies it elementwise, and x * 0.5 is exact
            # either way, so the scalar stands in for the full array.
            bitline = 0.5
        self.cell_v[row_index] = cell
        self.bitline_v[lane_arr] = 0.5

    def xir_overwrite(self, lane_arr: np.ndarray,
                      rows_mat: np.ndarray) -> None:
        """Fused glitch overwrite: driven bit-lines into opened rows."""
        self._written[lane_arr[:, None], rows_mat] = True
        self.cell_v[lane_arr[:, None], rows_mat] = (
            self.bitline_v[lane_arr][:, None, :])

    def xir_close(self, lane_arr: np.ndarray) -> None:
        """Fused row close: restore the idle bit-line level."""
        self.bitline_v[lane_arr] = 0.5


class BatchedChip:
    """Per-lane bank routing, polarity and command spacing over a grid of
    :class:`BatchedSubArray` cells."""

    def __init__(
        self,
        *,
        geometry: GeometryParams,
        cells: list[list[BatchedSubArray]],
        groups: Sequence,
        row_maps: Sequence,
        polarity_schemes: Sequence[str],
    ) -> None:
        self.geometry = geometry
        self.cells = cells
        self.n_lanes = cells[0][0].n_lanes
        self.groups = list(groups)
        self._row_maps = list(row_maps)
        self._polarity = list(polarity_schemes)
        # Per-lane logical->physical and anti-cell tables: the row map and
        # polarity scheme are frozen at construction, so every ACT's
        # per-lane lookups collapse to plain list indexing.
        rps = geometry.rows_per_subarray
        self._phys_rows = [
            [row_map.to_physical(row) for row in range(rps)]
            for row_map in self._row_maps]
        self._anti_rows = [
            [is_anti_row(scheme, physical) for physical in lane_rows]
            for scheme, lane_rows in zip(self._polarity, self._phys_rows)]
        self._enforce = [group.decoder.enforces_command_spacing
                         for group in self.groups]
        self._any_enforce = any(self._enforce)
        self._last_cmd: list[dict[int, int]] = [
            {} for _ in range(self.n_lanes)]
        self.dropped_commands = [0] * self.n_lanes
        self.time_s = np.zeros(self.n_lanes)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_chips(cls, chips: Sequence[DramChip],
                   epochs: Sequence[int] | None = None) -> "BatchedChip":
        """One lane per donor chip.

        With ``epochs`` given, each lane's sub-array noise sources are
        freshly spawned children reseeded to that epoch — exactly the tree
        :meth:`DramChip.reseed_noise` builds — so a single donor chip can
        be broadcast across trial lanes.  Without ``epochs`` the donors'
        live noise sources are adopted (and must no longer be used through
        the scalar chips).
        """
        if not chips:
            raise ConfigurationError("batched chip needs at least one lane")
        first = chips[0]
        for chip in chips:
            if chip.geometry != first.geometry:
                raise ConfigurationError("all lanes must share chip geometry")
        cells: list[list[BatchedSubArray]] = []
        for bank in range(first.geometry.n_banks):
            bank_cells = []
            for sub in range(first.geometry.subarrays_per_bank):
                donors = [chip.banks[bank].subarrays[sub] for chip in chips]
                if epochs is None:
                    noises = [donor._noise for donor in donors]
                else:
                    noises = []
                    for chip, epoch in zip(chips, epochs):
                        child = chip.noise.spawn("bank", bank, "subarray", sub)
                        child.reseed(int(epoch))
                        noises.append(child)
                bank_cells.append(BatchedSubArray(
                    donors=donors, noises=noises,
                    environments=[chip.environment for chip in chips],
                    origins=[(bank, sub)] * len(chips)))
            cells.append(bank_cells)
        return cls(
            geometry=first.geometry,
            cells=cells,
            groups=[chip.group for chip in chips],
            row_maps=[chip.row_map for chip in chips],
            polarity_schemes=[chip.polarity_scheme for chip in chips])

    @classmethod
    def from_fleet(
        cls,
        specs: Sequence[tuple[str, int]],
        *,
        geometry: GeometryParams,
        master_seed: int = 0,
        environment: Environment | None = None,
        epochs: Sequence[int] | None = None,
    ) -> "BatchedChip":
        """One lane per ``(group_id, serial)`` module spec — the device axis.

        Each lane is fabricated exactly as ``make_chip`` fabricates a
        scalar module: a fresh :class:`DramChip` seeded from
        ``(master_seed, group_id, serial)``, so fabrication arrays are
        bit-identical to the scalar fleet member.  Specs may mix vendor
        groups; the per-lane parameter planes keep their distinct
        decoders, couplings, polarity and variation.  ``epochs`` reseeds
        each lane's noise tree exactly as ``DramChip.reseed_noise`` would
        (default: every lane at epoch 0, i.e. the fresh-chip stream).
        """
        if not specs:
            raise ConfigurationError("fleet batch needs at least one module")
        chips = [
            DramChip(group_id, geometry=geometry, serial=int(serial),
                     master_seed=master_seed, environment=environment)
            for group_id, serial in specs]
        return cls.from_chips(chips, epochs=epochs)

    @classmethod
    def from_subarray_views(
        cls, chip: DramChip, sites: Sequence[tuple[int, int]],
        epochs: Sequence[int] | None = None,
    ) -> "BatchedChip":
        """One lane per (bank, sub-array) site of a single donor chip.

        The batched device is a virtual 1-bank x 1-sub-array chip whose
        lane ``i`` *is* ``chip.banks[sites[i][0]].subarrays[sites[i][1]]``;
        rows are sub-array-local.  Used when an experiment iterates
        independent units that each touch one sub-array (the PUF reads).
        """
        donors = [chip.banks[bank].subarrays[sub] for bank, sub in sites]
        if epochs is None:
            noises = [donor._noise for donor in donors]
        else:
            noises = []
            for (bank, sub), epoch in zip(sites, epochs):
                child = chip.noise.spawn("bank", bank, "subarray", sub)
                child.reseed(int(epoch))
                noises.append(child)
        geometry = GeometryParams(
            n_banks=1, subarrays_per_bank=1,
            rows_per_subarray=chip.geometry.rows_per_subarray,
            columns=chip.geometry.columns)
        cell = BatchedSubArray(
            donors=donors, noises=noises,
            environments=[chip.environment] * len(donors),
            origins=list(sites))
        return cls(
            geometry=geometry,
            cells=[[cell]],
            groups=[chip.group] * len(donors),
            row_maps=[chip.row_map] * len(donors),
            polarity_schemes=[chip.polarity_scheme] * len(donors))

    # ------------------------------------------------------------------
    # identity / bookkeeping
    # ------------------------------------------------------------------

    @property
    def n_banks(self) -> int:
        return self.geometry.n_banks

    @property
    def columns(self) -> int:
        return self.geometry.columns

    @property
    def rows_per_bank(self) -> int:
        return self.geometry.rows_per_bank

    def lane_is_idle(self, lane: int) -> bool:
        return all(cell.lane_is_idle(lane)
                   for bank_cells in self.cells for cell in bank_cells)

    def reseed_noise(self, epoch: int) -> None:
        """Start a new measurement-noise epoch on every lane.

        Equivalent to calling :meth:`DramChip.reseed_noise` on each
        lane's scalar chip: the per-sub-array child sources re-derive
        their streams from the new epoch.
        """
        for bank_cells in self.cells:
            for cell in bank_cells:
                cell.reseed_noise(epoch)

    def _check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.geometry.n_banks:
            raise AddressError(f"bank {bank} out of range")

    def _is_anti(self, lane: int, row: int) -> bool:
        return self._anti_rows[lane][row % self.geometry.rows_per_subarray]

    # ------------------------------------------------------------------
    # command interface
    # ------------------------------------------------------------------

    def _spacing_filter(self, bank: int, lanes: Sequence[int],
                        cycles: np.ndarray) -> Sequence[int]:
        if not self._any_enforce:
            # No lane's decoder gates command spacing, and the spacing
            # history is only ever read for enforcing lanes — skip the
            # per-lane bookkeeping outright.
            return lanes
        allowed: list[int] = []
        telemetry = _telemetry_active()
        for lane in lanes:
            if not self._enforce[lane]:
                allowed.append(lane)
                continue
            cycle = int(cycles[lane])
            last = self._last_cmd[lane].get(bank)
            if last is not None and cycle - last < MIN_COMMAND_SPACING_CYCLES:
                self.dropped_commands[lane] += 1
                if telemetry is not None:
                    telemetry.count("dram.dropped_commands")
                    telemetry.emit("drop", {"bank": bank, "cycle": cycle})
                continue
            self._last_cmd[lane][bank] = cycle
            allowed.append(lane)
        return allowed

    def activate(self, bank: int, rows: Sequence[int],
                 lanes: Sequence[int], cycles: np.ndarray) -> None:
        self._check_bank(bank)
        allowed = self._spacing_filter(bank, lanes, cycles)
        if not allowed:
            return
        if allowed is lanes or len(allowed) == len(lanes):
            allowed_rows: Sequence[int] = rows
        else:
            rows_by_lane = dict(zip(lanes, rows))
            allowed_rows = [rows_by_lane[lane] for lane in allowed]
        rps = self.geometry.rows_per_subarray
        by_sub: dict[int, tuple[list[int], list[int]]] = {}
        for lane, row in zip(allowed, allowed_rows):
            row = int(row)
            if not 0 <= row < self.geometry.rows_per_bank:
                raise AddressError(
                    f"row {row} out of range for bank with "
                    f"{self.geometry.rows_per_bank} rows")
            sub, local_logical = divmod(row, rps)
            group = by_sub.setdefault(sub, ([], []))
            group[0].append(lane)
            group[1].append(self._phys_rows[lane][local_logical])
        for sub, (sub_lanes, local_rows) in by_sub.items():
            self.cells[bank][sub].activate(sub_lanes, local_rows, cycles)

    def precharge(self, bank: int, lanes: Sequence[int],
                  cycles: np.ndarray) -> None:
        self._check_bank(bank)
        allowed = self._spacing_filter(bank, lanes, cycles)
        if not allowed:
            return
        for cell in self.cells[bank]:
            cell.precharge(allowed, cycles)

    def precharge_all(self, lanes: Sequence[int], cycles: np.ndarray) -> None:
        for bank in range(self.geometry.n_banks):
            self.precharge(bank, lanes, cycles)

    def settle(self, lanes: Sequence[int], cycles: np.ndarray) -> None:
        for bank_cells in self.cells:
            for cell in bank_cells:
                cell.settle(lanes, cycles)

    def finish(self, lanes: Sequence[int], cycles: np.ndarray) -> None:
        for bank_cells in self.cells:
            for cell in bank_cells:
                cell.finish(lanes, cycles)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def row_buffer_logical(self, bank: int, rows: Sequence[int],
                           lanes: Sequence[int]) -> np.ndarray:
        """Logical bits per lane, ``(len(lanes), columns)`` in lane order."""
        self._check_bank(bank)
        out = np.empty((len(lanes), self.geometry.columns), dtype=bool)
        rps = self.geometry.rows_per_subarray
        by_sub: dict[int, tuple[list[int], list[int]]] = {}
        for index, lane in enumerate(lanes):
            group = by_sub.setdefault(int(rows[index]) // rps, ([], []))
            group[0].append(lane)
            group[1].append(index)
        for sub, (sub_lanes, indices) in by_sub.items():
            physical = self.cells[bank][sub].row_buffer(sub_lanes)
            for offset, (lane, index) in enumerate(zip(sub_lanes, indices)):
                bits = physical[offset]
                if self._is_anti(lane, int(rows[index])):
                    bits = ~bits
                out[index] = bits
        return out

    def write_open(self, bank: int, rows: Sequence[int],
                   lanes: Sequence[int], logical_bits: np.ndarray) -> None:
        self._check_bank(bank)
        bits = np.asarray(logical_bits, dtype=bool)
        if bits.ndim == 1:
            bits = np.broadcast_to(bits, (len(lanes), bits.shape[0]))
        physical = bits.copy()
        for index, lane in enumerate(lanes):
            if self._is_anti(lane, int(rows[index])):
                physical[index] = ~bits[index]
        rps = self.geometry.rows_per_subarray
        by_sub: dict[int, tuple[list[int], list[int]]] = {}
        for index, lane in enumerate(lanes):
            group = by_sub.setdefault(int(rows[index]) // rps, ([], []))
            group[0].append(lane)
            group[1].append(index)
        for sub, (sub_lanes, indices) in by_sub.items():
            self.cells[bank][sub].write_open_row(sub_lanes, physical[indices])

    # ------------------------------------------------------------------
    # time / retention
    # ------------------------------------------------------------------

    def advance_time(self, dt_s: float, lanes: Sequence[int]) -> None:
        # The sub-arrays keep exact open/pending-precharge counts; when
        # every count is zero no lane can be busy and the per-lane
        # all-cells scan (the hot cost of short leak probes) is skipped.
        if any(cell._n_open or cell._n_pre
               for bank_cells in self.cells for cell in bank_cells):
            for lane in lanes:
                if not self.lane_is_idle(lane):
                    raise CommandSequenceError(
                        "advance_time requires all banks idle "
                        "(precharge first)")
        for bank_cells in self.cells:
            for cell in bank_cells:
                cell.leak(lanes, dt_s)
        self.time_s[np.asarray(lanes, dtype=np.intp)] += dt_s
        telemetry = _telemetry_active()
        if telemetry is not None:
            for lane in lanes:
                telemetry.count("dram.leak_events")
                telemetry.observe("dram.leak_dt_s", dt_s)
                telemetry.emit("leak", {"dt_s": float(dt_s),
                                        "time_s": float(self.time_s[lane])})
