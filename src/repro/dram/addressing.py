"""Logical-to-physical row address mapping (vendor scrambling).

DRAM vendors remap the row addresses a controller issues onto physical
word-lines — for repair (redundant rows) and layout reasons — and do not
document the mapping.  The multi-row-activation glitch operates on
*physical* addresses, which is why the paper had to search for working
(R1, R2) combinations empirically, and why it observes that "not all
combinations of R1 and R2 that have k different bits can open 2^k rows":
the controller's view of a physical hypercube looks arbitrary.

This module provides the mapping layer (identity by default; an XOR/bit-
permutation scramble for studies) and pairs with
:func:`repro.analysis.reverse_engineering.discover_multi_row_pairs`,
which recovers the working combinations black-box, exactly like the
authors' exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError

__all__ = ["RowAddressMap", "IdentityMap", "BitScrambleMap", "random_scramble"]


@runtime_checkable
class RowAddressMap(Protocol):
    """Bijection between local logical and physical row addresses."""

    n_rows: int

    def to_physical(self, logical: int) -> int: ...
    def to_logical(self, physical: int) -> int: ...


@dataclass(frozen=True)
class IdentityMap:
    """No scrambling: logical == physical (the default)."""

    n_rows: int

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        return logical

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return physical

    def _check(self, row: int) -> None:
        if not 0 <= row < self.n_rows:
            raise ConfigurationError(f"row {row} outside 0..{self.n_rows - 1}")


@dataclass(frozen=True)
class BitScrambleMap:
    """Bit permutation + XOR mask over the row address bits.

    ``physical = permute(logical) ^ xor_mask`` where ``permutation[i]``
    names the logical bit that feeds physical bit ``i``.  Both operations
    are involutions of structure the decoder glitch "sees through": a
    physical two-bit hypercube maps to a logical set whose pairwise XORs
    are constant — the signature the reverse-engineering tool exploits.
    """

    permutation: tuple[int, ...]
    xor_mask: int

    def __post_init__(self) -> None:
        if sorted(self.permutation) != list(range(len(self.permutation))):
            raise ConfigurationError(
                f"{self.permutation!r} is not a permutation of bit indices")
        if not 0 <= self.xor_mask < self.n_rows:
            raise ConfigurationError("xor_mask outside the address space")

    @property
    def n_bits(self) -> int:
        return len(self.permutation)

    @property
    def n_rows(self) -> int:
        return 1 << self.n_bits

    def _permute(self, value: int, permutation: tuple[int, ...]) -> int:
        result = 0
        for target_bit, source_bit in enumerate(permutation):
            if value >> source_bit & 1:
                result |= 1 << target_bit
        return result

    def to_physical(self, logical: int) -> int:
        if not 0 <= logical < self.n_rows:
            raise ConfigurationError(f"row {logical} outside address space")
        return self._permute(logical, self.permutation) ^ self.xor_mask

    def to_logical(self, physical: int) -> int:
        if not 0 <= physical < self.n_rows:
            raise ConfigurationError(f"row {physical} outside address space")
        unmasked = physical ^ self.xor_mask
        inverse = tuple(self.permutation.index(bit)
                        for bit in range(self.n_bits))
        return self._permute(unmasked, inverse)


def random_scramble(n_rows: int, seed: int) -> BitScrambleMap:
    """A reproducible scramble for an address space of ``n_rows``.

    ``n_rows`` must be a power of two (row decoders address bit-wise).
    """
    n_bits = n_rows.bit_length() - 1
    if 1 << n_bits != n_rows:
        raise ConfigurationError("n_rows must be a power of two")
    rng = np.random.default_rng(seed)
    permutation = tuple(int(x) for x in rng.permutation(n_bits))
    xor_mask = int(rng.integers(0, n_rows))
    return BitScrambleMap(permutation=permutation, xor_mask=xor_mask)
