"""A DRAM bank: a stack of sub-arrays sharing one command interface.

Row addresses within a bank are *global*; the bank maps them onto
(sub-array index, local row).  Multi-row activation glitches only ever
involve rows of the same sub-array — the decoder hierarchy that the glitch
exploits is per-sub-array — so the mapping also defines which row pairs
can participate in MAJ3 / Half-m together.

A PRECHARGE targets the whole bank: every sub-array closes its rows and
precharges its bit-lines, matching the JEDEC command semantics.
"""

from __future__ import annotations

import numpy as np

from ..errors import AddressError
from .addressing import IdentityMap, RowAddressMap
from .decoder import DecoderProfile
from .environment import Environment
from .parameters import ElectricalParams, VariationParams
from .rng import NoiseSource
from .subarray import CouplingProfile, SubArray

__all__ = ["Bank"]


class Bank:
    """One bank of ``subarrays_per_bank`` sub-arrays."""

    def __init__(
        self,
        *,
        bank_index: int,
        subarrays_per_bank: int,
        rows_per_subarray: int,
        n_cols: int,
        electrical: ElectricalParams,
        variation: VariationParams,
        decoder_profile: DecoderProfile,
        coupling: CouplingProfile,
        fabrication_rng: np.random.Generator,
        noise: NoiseSource,
        row_map: RowAddressMap | None = None,
    ) -> None:
        self.bank_index = bank_index
        self.rows_per_subarray = rows_per_subarray
        self.n_cols = n_cols
        self.row_map: RowAddressMap = row_map or IdentityMap(rows_per_subarray)
        if self.row_map.n_rows != rows_per_subarray:
            raise AddressError(
                f"row map covers {self.row_map.n_rows} rows, sub-arrays "
                f"have {rows_per_subarray}")
        self.subarrays = [
            SubArray(
                n_rows=rows_per_subarray,
                n_cols=n_cols,
                electrical=electrical,
                variation=variation,
                decoder_profile=decoder_profile,
                coupling=coupling,
                fabrication_rng=np.random.default_rng(
                    fabrication_rng.integers(0, 2 ** 63)),
                noise=noise.spawn("bank", bank_index, "subarray", index),
                origin=(bank_index, index),
            )
            for index in range(subarrays_per_bank)
        ]

    @property
    def n_rows(self) -> int:
        return len(self.subarrays) * self.rows_per_subarray

    def locate(self, row: int) -> tuple[int, int]:
        """Map a bank-global *logical* row to (sub-array index, physical
        local row), applying the vendor's address scramble."""
        if not 0 <= row < self.n_rows:
            raise AddressError(
                f"row {row} out of range for bank with {self.n_rows} rows")
        subarray_index, local_logical = divmod(row, self.rows_per_subarray)
        return subarray_index, self.row_map.to_physical(local_logical)

    def same_subarray(self, row_a: int, row_b: int) -> bool:
        """Whether two bank rows share a sub-array (glitch prerequisite)."""
        return self.locate(row_a)[0] == self.locate(row_b)[0]

    # ------------------------------------------------------------------
    # command routing
    # ------------------------------------------------------------------

    def activate(self, row: int, cycle: int, env: Environment) -> None:
        subarray_index, local_row = self.locate(row)
        self.subarrays[subarray_index].activate(local_row, cycle, env)

    def precharge(self, cycle: int, env: Environment) -> None:
        for subarray in self.subarrays:
            subarray.precharge(cycle, env)

    def settle(self, cycle: int, env: Environment) -> None:
        for subarray in self.subarrays:
            subarray.settle(cycle, env)

    def finish(self, cycle: int, env: Environment) -> None:
        for subarray in self.subarrays:
            subarray.finish(cycle, env)

    def subarray_of(self, row: int) -> SubArray:
        return self.subarrays[self.locate(row)[0]]

    @property
    def is_idle(self) -> bool:
        return all(subarray.is_idle for subarray in self.subarrays)

    def open_rows(self) -> list[int]:
        """Bank-global *logical* addresses of all currently open rows."""
        opened = []
        for index, subarray in enumerate(self.subarrays):
            base = index * self.rows_per_subarray
            opened.extend(base + self.row_map.to_logical(physical)
                          for physical in subarray.open_rows)
        return opened

    def leak(self, dt_s: float, env: Environment) -> None:
        for subarray in self.subarrays:
            subarray.leak(dt_s, env)

    def reset_dynamic(self) -> None:
        for subarray in self.subarrays:
            subarray.reset_dynamic()
