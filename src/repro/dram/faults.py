"""Fault injection for robustness studies.

Real DRAM populations include defective cells; any system built on
out-of-spec behaviour must tolerate them.  This module injects classic
fault models into a simulated chip *post-fabrication*, so experiments can
study how each FracDRAM application degrades:

* ``stuck-at`` — the cell reads a constant regardless of writes (modeled
  by pinning its voltage after every operation is insufficient; instead
  the cell's time constant is zeroed / its voltage forced at fault-apply
  time and re-forced by a wrapper around the sub-array ops),
* ``leaky`` — retention time collapsed by orders of magnitude,
* ``coupled`` — a column's sense threshold pushed far off nominal
  (victim of bit-line imbalance).

Faults are applied through :class:`FaultInjector`, which records every
injection so tests can compare against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..errors import ConfigurationError
from ..telemetry.registry import active as _telemetry_active
from .chip import DramChip
from .subarray import SubArray

__all__ = ["Fault", "FaultInjector"]

FaultKind = Literal["stuck-at-0", "stuck-at-1", "leaky", "offset"]


@dataclass(frozen=True)
class Fault:
    """One injected defect."""

    kind: FaultKind
    bank: int
    row: int
    column: int

    def __post_init__(self) -> None:
        if self.kind not in ("stuck-at-0", "stuck-at-1", "leaky", "offset"):
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")


class _StuckCellPatch:
    """Wraps a sub-array so stuck cells re-assert after every operation."""

    def __init__(self, subarray: SubArray) -> None:
        self.subarray = subarray
        self.stuck_rows: list[int] = []
        self.stuck_cols: list[int] = []
        self.stuck_values: list[float] = []
        self._original_charge_share = subarray._charge_share
        self._original_fire = subarray._fire_sense_amps
        subarray._charge_share = self._wrapped(self._original_charge_share)
        subarray._fire_sense_amps = self._wrapped(self._original_fire)

    def add(self, row: int, column: int, value: float) -> None:
        self.stuck_rows.append(row)
        self.stuck_cols.append(column)
        self.stuck_values.append(value)
        self._assert_stuck()

    def _assert_stuck(self) -> None:
        self.subarray.cell_v[self.stuck_rows, self.stuck_cols] = self.stuck_values

    def _wrapped(self, original):
        def run(*args, **kwargs):
            self._assert_stuck()
            result = original(*args, **kwargs)
            self._assert_stuck()
            return result

        return run


class FaultInjector:
    """Applies and tracks faults on one chip."""

    def __init__(self, chip: DramChip) -> None:
        self.chip = chip
        self.faults: list[Fault] = []
        self._patches: dict[int, _StuckCellPatch] = {}

    def _subarray(self, bank: int, row: int) -> tuple[SubArray, int]:
        subarray = self.chip.bank(bank).subarray_of(row)
        local_row = row % self.chip.geometry.rows_per_subarray
        return subarray, local_row

    def _patch_for(self, subarray: SubArray) -> _StuckCellPatch:
        key = id(subarray)
        if key not in self._patches:
            self._patches[key] = _StuckCellPatch(subarray)
        return self._patches[key]

    # ------------------------------------------------------------------

    def inject(self, fault: Fault) -> None:
        """Apply one fault to the chip."""
        subarray, local_row = self._subarray(fault.bank, fault.row)
        if not 0 <= fault.column < subarray.n_cols:
            raise ConfigurationError(f"column {fault.column} out of range")
        if fault.kind in ("stuck-at-0", "stuck-at-1"):
            value = 1.0 if fault.kind == "stuck-at-1" else 0.0
            self._patch_for(subarray).add(local_row, fault.column, value)
        elif fault.kind == "leaky":
            subarray.tau_s[local_row, fault.column] = 1e-3
        elif fault.kind == "offset":
            # Push the column's comparator far off nominal: every cell on
            # this bit-line becomes unreliable near Vdd/2.
            subarray.sa_offset[fault.column] += 0.2
        self.faults.append(fault)
        telemetry = _telemetry_active()
        if telemetry is not None:
            telemetry.count("dram.faults_injected")
            telemetry.count(f"dram.faults.{fault.kind}")
            telemetry.emit("fault", {
                "fault_kind": fault.kind, "bank": fault.bank,
                "row": fault.row, "column": fault.column,
            })

    def inject_random(self, kind: FaultKind, count: int,
                      rng: np.random.Generator) -> list[Fault]:
        """Sprinkle ``count`` faults of one kind uniformly over the chip."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        geometry = self.chip.geometry
        faults = []
        for _ in range(count):
            fault = Fault(
                kind=kind,
                bank=int(rng.integers(geometry.n_banks)),
                row=int(rng.integers(geometry.rows_per_bank)),
                column=int(rng.integers(geometry.columns)),
            )
            self.inject(fault)
            faults.append(fault)
        return faults

    # ------------------------------------------------------------------

    def faulty_cells(self, bank: int) -> set[tuple[int, int]]:
        """(row, column) pairs with injected cell faults in ``bank``."""
        return {(fault.row, fault.column) for fault in self.faults
                if fault.bank == bank and fault.kind != "offset"}

    def faulty_columns(self, bank: int) -> set[int]:
        """Columns with injected offset faults in ``bank``."""
        return {fault.column for fault in self.faults
                if fault.bank == bank and fault.kind == "offset"}
