"""DRAM electrical substrate: chips, banks, sub-arrays, and group profiles.

This subpackage replaces the physical DDR3 devices of the paper with a
circuit-level software model (see DESIGN.md section 1 for the substitution
rationale).  The public surface is:

* :class:`DramChip` / :class:`DramModule` — simulated devices,
* :class:`Environment` — temperature / supply-voltage operating point,
* :class:`GeometryParams` and friends — model configuration,
* :data:`GROUPS` / :func:`get_group` — the Table I vendor group profiles.
"""

from .addressing import BitScrambleMap, IdentityMap, RowAddressMap, random_scramble
from .chip import DramChip
from .decoder import DecoderProfile, differing_bits, hypercube_rows, resolve_glitch
from .environment import Environment, NOMINAL_TEMPERATURE_C, NOMINAL_VDD_VOLTS
from .module_ import DramModule
from .parameters import (
    MEMORY_CYCLE_NS,
    ElectricalParams,
    GeometryParams,
    TimingParams,
    VariationParams,
)
from .polarity import POLARITY_SCHEMES, is_anti_row, polarity_map
from .rng import NoiseSource, derive_rng, derive_seed
from .subarray import CouplingProfile, SubArray
from .vendor import (
    CHIPS_PER_MODULE,
    GROUPS,
    GroupProfile,
    PreferredFMajConfig,
    get_group,
    group_ids,
)

__all__ = [
    "BitScrambleMap",
    "CHIPS_PER_MODULE",
    "IdentityMap",
    "RowAddressMap",
    "random_scramble",
    "CouplingProfile",
    "DecoderProfile",
    "DramChip",
    "DramModule",
    "ElectricalParams",
    "Environment",
    "GROUPS",
    "GeometryParams",
    "GroupProfile",
    "MEMORY_CYCLE_NS",
    "NOMINAL_TEMPERATURE_C",
    "NOMINAL_VDD_VOLTS",
    "NoiseSource",
    "POLARITY_SCHEMES",
    "PreferredFMajConfig",
    "SubArray",
    "TimingParams",
    "VariationParams",
    "derive_rng",
    "derive_seed",
    "differing_bits",
    "get_group",
    "group_ids",
    "hypercube_rows",
    "is_anti_row",
    "polarity_map",
    "resolve_glitch",
]
