"""DDR4 outlook profiles (extension — Section VII).

The paper evaluates DDR3 only ("due to the limitation of our experiment
platform") but argues its techniques carry to DDR4 because QUAC-TRNG
demonstrated four-row activation on commodity DDR4 chips.  These profiles
make that outlook executable: DDR4-like groups with four-row (but no
three-row) decoder glitches, DDR4 electrical context (1.2 V nominal is
handled by Environment scaling; the normalized model is unchanged), and
the QUAC paper's observation that *all* tested DDR4 modules opened four
rows.

These are **hypothetical calibrations** — no DDR4 silicon stands behind
the distributions — kept in a separate registry so Table I experiments
never mix them with the paper's evaluated groups.  They exist so the
DDR4-relevant code paths (F-MAJ, Half-m, QUAC TRNG) have a first-class
target, as DESIGN.md section 5 describes.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .vendor import GroupProfile, PreferredFMajConfig, _make_group

__all__ = ["DDR4_GROUPS", "get_ddr4_group"]

#: Hypothetical DDR4 groups, named Q1-Q3 after QUAC-TRNG's module sets.
DDR4_GROUPS: dict[str, GroupProfile] = {
    "Q1": _make_group("Q1", "SK Hynix (DDR4)", 2400, 32, frac=True,
                      four_row=True,
                      hamming_weight=0.45, strong_fraction=0.86,
                      primary_quad=1, primary_mean=0.22,
                      primary_sigma=0.15, primary_module_sigma=0.05,
                      multirow_bias=0.005, bias_module_sigma=0.002,
                      weight_jitter=0.11,
                      preferred_fmaj=PreferredFMajConfig(1, True, 2)),
    "Q2": _make_group("Q2", "Samsung (DDR4)", 2666, 32, frac=True,
                      four_row=True,
                      hamming_weight=0.50, strong_fraction=0.84,
                      primary_quad=0, primary_mean=0.35,
                      primary_sigma=0.25, primary_module_sigma=0.10,
                      multirow_bias=0.008, bias_module_sigma=0.003,
                      weight_jitter=0.12,
                      preferred_fmaj=PreferredFMajConfig(0, True, 1)),
    "Q3": _make_group("Q3", "Micron (DDR4)", 3200, 32, frac=True,
                      four_row=True,
                      hamming_weight=0.40, strong_fraction=0.88,
                      primary_quad=3, primary_mean=0.30,
                      primary_sigma=0.22, primary_module_sigma=0.08,
                      multirow_bias=-0.006, bias_module_sigma=0.003,
                      weight_jitter=0.10,
                      preferred_fmaj=PreferredFMajConfig(3, False, 2)),
}


def get_ddr4_group(group_id: str) -> GroupProfile:
    """Look up a DDR4 outlook profile (Q1-Q3)."""
    try:
        return DDR4_GROUPS[group_id.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown DDR4 group {group_id!r}; expected one of "
            f"{', '.join(DDR4_GROUPS)}") from None
