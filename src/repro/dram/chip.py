"""A simulated DDR3 chip: banks, polarity, environment, command spacing.

:class:`DramChip` is the unit the memory controller talks to.  It routes
timed commands to banks/sub-arrays, applies true-/anti-cell polarity on
the data path, tracks simulated wall-clock time for retention experiments,
and — for groups J/K/L — enforces minimum command spacing, silently
dropping commands that arrive too close together (the paper's explanation
for why Frac has no effect on those vendors).

Chips are deterministic: two chips constructed with the same
``(master_seed, group, serial)`` are identical silicon, while different
serials differ in all manufacturing variation.  This property underpins
the PUF experiments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import AddressError, CommandSequenceError, ConfigurationError
from ..telemetry.registry import active as _telemetry_active
from .bank import Bank
from .environment import Environment
from .parameters import GeometryParams
from .polarity import is_anti_row, polarity_map
from .rng import NoiseSource, derive_rng
from .subarray import SubArray
from .vendor import GroupProfile, get_group

__all__ = ["DramChip", "MIN_COMMAND_SPACING_CYCLES"]

#: Groups with spacing-check circuits drop commands closer than this.
MIN_COMMAND_SPACING_CYCLES: int = 4


class DramChip:
    """One simulated DRAM device."""

    def __init__(
        self,
        group: GroupProfile | str,
        *,
        geometry: GeometryParams | None = None,
        serial: int = 0,
        master_seed: int = 0,
        environment: Environment | None = None,
        polarity_scheme: str = "true-only",
        row_map=None,
    ) -> None:
        self.group: GroupProfile = (
            get_group(group) if isinstance(group, str) else group)
        self.geometry = geometry or GeometryParams()
        self.serial = serial
        self.master_seed = master_seed
        self.environment = environment or Environment()
        self.polarity_scheme = polarity_scheme
        # Validate the scheme eagerly so errors surface at construction.
        polarity_map(polarity_scheme, self.geometry.rows_per_subarray)

        from .addressing import IdentityMap

        self.row_map = row_map or IdentityMap(self.geometry.rows_per_subarray)
        self.noise = NoiseSource(master_seed, "chip", self.group.group_id, serial)
        fabrication = derive_rng(master_seed, "fab", self.group.group_id, serial)
        self.banks = [
            Bank(
                bank_index=index,
                subarrays_per_bank=self.geometry.subarrays_per_bank,
                rows_per_subarray=self.geometry.rows_per_subarray,
                n_cols=self.geometry.columns,
                electrical=self.group.electrical,
                variation=self.group.variation,
                decoder_profile=self.group.decoder,
                coupling=self.group.coupling,
                fabrication_rng=fabrication,
                noise=self.noise,
                row_map=self.row_map,
            )
            for index in range(self.geometry.n_banks)
        ]
        self.time_s: float = 0.0
        self.dropped_commands: int = 0
        self._last_command_cycle: dict[int, int] = {}

    # ------------------------------------------------------------------
    # identity / bookkeeping
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DramChip(group={self.group.group_id!r}, serial={self.serial}, "
                f"geometry={self.geometry})")

    @property
    def n_banks(self) -> int:
        return self.geometry.n_banks

    @property
    def columns(self) -> int:
        return self.geometry.columns

    @property
    def rows_per_bank(self) -> int:
        return self.geometry.rows_per_bank

    def bank(self, index: int) -> Bank:
        if not 0 <= index < len(self.banks):
            raise AddressError(f"bank {index} out of range")
        return self.banks[index]

    def subarray_of(self, bank: int, row: int) -> SubArray:
        """Simulator-only introspection helper."""
        return self.bank(bank).subarray_of(row)

    def is_anti(self, row: int) -> bool:
        """Polarity of a bank-global (logical) row address.

        Polarity is a physical-layout property, so the scramble applies
        before the lookup.
        """
        local_logical = row % self.geometry.rows_per_subarray
        physical = self.row_map.to_physical(local_logical)
        return is_anti_row(self.polarity_scheme, physical)

    def reseed_noise(self, epoch: int | None = None) -> None:
        """Start a new measurement-noise epoch (see :class:`NoiseSource`).

        Per-sub-array noise sources are spawned children of the chip
        source, so reseeding recreates the tree for a fresh campaign.
        """
        self.noise.reseed(epoch)
        for bank in self.banks:
            for index, subarray in enumerate(bank.subarrays):
                subarray._noise = self.noise.spawn(
                    "bank", bank.bank_index, "subarray", index)

    def reset_dynamic(self) -> None:
        """Power-cycle the chip: discharge all cells, clear command history.

        Fabrication variation is preserved (same silicon) and the noise
        stream position is untouched; pair with :meth:`reseed_noise` to
        start a fully independent measurement trial.  The cumulative
        ``dropped_commands`` diagnostic is deliberately kept.
        """
        for bank in self.banks:
            bank.reset_dynamic()
        self.time_s = 0.0
        self._last_command_cycle.clear()

    # ------------------------------------------------------------------
    # command interface
    # ------------------------------------------------------------------

    def _spacing_allows(self, bank: int, cycle: int) -> bool:
        """Apply the J/K/L command-spacing check; True means 'execute'."""
        if not self.group.decoder.enforces_command_spacing:
            self._last_command_cycle[bank] = cycle
            return True
        last = self._last_command_cycle.get(bank)
        if last is not None and cycle - last < MIN_COMMAND_SPACING_CYCLES:
            self.dropped_commands += 1
            telemetry = _telemetry_active()
            if telemetry is not None:
                telemetry.count("dram.dropped_commands")
                telemetry.emit("drop", {"bank": bank, "cycle": cycle})
            return False
        self._last_command_cycle[bank] = cycle
        return True

    def activate(self, bank: int, row: int, cycle: int) -> None:
        if self._spacing_allows(bank, cycle):
            self.bank(bank).activate(row, cycle, self.environment)

    def precharge(self, bank: int, cycle: int) -> None:
        if self._spacing_allows(bank, cycle):
            self.bank(bank).precharge(cycle, self.environment)

    def precharge_all(self, cycle: int) -> None:
        for index in range(self.n_banks):
            self.precharge(index, cycle)

    def settle(self, cycle: int) -> None:
        for bank in self.banks:
            bank.settle(cycle, self.environment)

    def finish(self, cycle: int) -> None:
        """End-of-sequence: resolve all pending sub-array transitions."""
        for bank in self.banks:
            bank.finish(cycle, self.environment)

    # ------------------------------------------------------------------
    # data path (used by the controller's read/write sequences)
    # ------------------------------------------------------------------

    def row_buffer_logical(self, bank: int, row: int) -> np.ndarray:
        """Logical bits sensed for ``row`` (polarity-corrected)."""
        physical = self.bank(bank).subarray_of(row).row_buffer()
        if self.is_anti(row):
            return ~physical
        return physical

    def write_open(self, bank: int, row: int, logical_bits: Sequence[bool]) -> None:
        """Drive logical data into the (normally activated) open row."""
        bits = np.asarray(logical_bits, dtype=bool)
        physical = ~bits if self.is_anti(row) else bits
        self.bank(bank).subarray_of(row).write_open_row(physical)

    # ------------------------------------------------------------------
    # time / retention
    # ------------------------------------------------------------------

    @property
    def is_idle(self) -> bool:
        return all(bank.is_idle for bank in self.banks)

    def advance_time(self, dt_s: float) -> None:
        """Let ``dt_s`` seconds of leakage pass with no commands issued."""
        if not self.is_idle:
            raise CommandSequenceError(
                "advance_time requires all banks idle (precharge first)")
        for bank in self.banks:
            bank.leak(dt_s, self.environment)
        self.time_s += dt_s
        telemetry = _telemetry_active()
        if telemetry is not None:
            telemetry.count("dram.leak_events")
            telemetry.observe("dram.leak_dt_s", dt_s)
            telemetry.emit("leak", {"dt_s": float(dt_s),
                                    "time_s": float(self.time_s)})

    def set_environment(self, environment: Environment) -> None:
        """Change the operating point (temperature / supply voltage)."""
        if not isinstance(environment, Environment):
            raise ConfigurationError("environment must be an Environment")
        self.environment = environment
