"""DRAM group profiles A-L, encoding Table I of the paper.

Each :class:`GroupProfile` bundles the capability matrix entry for one of
the twelve evaluated DDR3 chip groups with the calibration parameters that
make the rest of the paper's results *emerge* from the physics model:

* decoder glitch structure (three-/four-row activation support),
* which opened-row position couples strongest to the bit-line (the
  "primary" row — this decides each group's favorite F-MAJ configuration),
* sense-amp offset statistics (these set the PUF Hamming weight per group,
  e.g. group A's 0.21),
* leakage population mix (the Fig. 6 long/monotonic/other category split),
* whether the chip enforces command spacing (groups J/K/L drop
  too-close commands, which is why Frac has no effect on them).

The capability booleans (``frac_capable`` etc.) are *expected* behaviour
used for reporting; the simulator does not read them — capabilities emerge
from ``decoder`` and ``enforces_command_spacing``, and the Table I
experiment verifies that the emergent behaviour matches the declared
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError
from .decoder import DecoderProfile
from .parameters import ElectricalParams, VariationParams
from .subarray import CouplingProfile

__all__ = ["GroupProfile", "PreferredFMajConfig", "GROUPS", "get_group", "group_ids"]

#: Paper convention: chips sit on modules of eight x8 devices.
CHIPS_PER_MODULE: int = 8


@dataclass(frozen=True)
class PreferredFMajConfig:
    """The best F-MAJ configuration found for a group (Section VI-A.2).

    ``frac_position`` indexes the ordered opened-row tuple (R1..R4);
    ``init_ones`` selects the initial row value before Frac (all ones gives
    a fractional value above Vdd/2, all zeros below); ``n_frac`` is the
    number of Frac operations.
    """

    frac_position: int
    init_ones: bool
    n_frac: int


@dataclass(frozen=True)
class GroupProfile:
    """One row of Table I plus the physics calibration for that group."""

    group_id: str
    vendor: str
    freq_mhz: int
    n_chips: int
    frac_capable: bool
    three_row: bool
    four_row: bool
    decoder: DecoderProfile
    coupling: CouplingProfile = field(default_factory=CouplingProfile)
    variation: VariationParams = field(default_factory=VariationParams)
    electrical: ElectricalParams = field(default_factory=ElectricalParams)
    preferred_fmaj: PreferredFMajConfig | None = None
    #: Approximate fraction of response bits reading one after 10x Frac
    #: (per-group PUF Hamming weight; reported in Figure 11).
    expected_hamming_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.three_row and not self.decoder.supports_three_row:
            raise ConfigurationError(
                f"group {self.group_id}: three_row declared but decoder lacks triples")
        if self.four_row and not self.decoder.supports_four_row:
            raise ConfigurationError(
                f"group {self.group_id}: four_row declared but decoder lacks quads")
        if self.frac_capable and self.decoder.enforces_command_spacing:
            raise ConfigurationError(
                f"group {self.group_id}: command-spacing enforcement defeats Frac")

    @property
    def n_modules(self) -> int:
        return max(1, self.n_chips // CHIPS_PER_MODULE)

    def with_variation(self, **overrides: float) -> "GroupProfile":
        """Copy of this profile with variation parameters overridden."""
        return replace(self, variation=replace(self.variation, **overrides))


def _offset_mean_for_weight(hamming_weight: float, sigma: float) -> float:
    """Sense-amp offset mean that yields a target PUF Hamming weight.

    After ~10 Frac ops the cell residue is negligible, so a column reads
    one iff its offset is below ~zero: HW = Phi(-mean/sigma).  Inverting
    with a rational approximation of the probit is overkill — scipy is a
    dependency, but keeping this self-contained avoids an import cycle at
    module-definition time, so we use a small fixed-point iteration.
    """
    from scipy.special import ndtri  # local import: cheap, avoids cycles

    return float(-ndtri(hamming_weight) * sigma)


def _make_group(
    group_id: str,
    vendor: str,
    freq_mhz: int,
    n_chips: int,
    *,
    frac: bool,
    three_row: bool = False,
    four_row: bool = False,
    enforces_spacing: bool = False,
    hamming_weight: float = 0.5,
    offset_sigma: float = 0.008,
    read_noise: float = 0.0002,
    strong_fraction: float = 0.85,
    primary_triple: int = 1,
    primary_quad: int = 1,
    primary_mean: float = 0.18,
    primary_sigma: float = 0.12,
    primary_module_sigma: float = 0.0,
    multirow_bias: float = 0.0,
    bias_module_sigma: float = 0.0,
    weight_jitter: float = 0.04,
    halfm_amp_mean: float = 0.9,
    preferred_fmaj: PreferredFMajConfig | None = None,
) -> GroupProfile:
    decoder = DecoderProfile(
        triple_bit_pairs=frozenset({(0, 1)}) if three_row else frozenset(),
        quad_bit_pairs=frozenset({(0, 3)} if three_row else {(0, 1)}) if four_row
        else frozenset(),
        enforces_command_spacing=enforces_spacing,
    )
    variation = VariationParams(
        sa_offset_mean=_offset_mean_for_weight(hamming_weight, offset_sigma),
        sa_offset_sigma=offset_sigma,
        read_noise_sigma=read_noise,
        strong_cell_fraction=strong_fraction,
        primary_weight_mean=primary_mean,
        primary_weight_sigma=primary_sigma,
        primary_weight_module_sigma=primary_module_sigma,
        multirow_bias_mean=multirow_bias,
        multirow_bias_module_sigma=bias_module_sigma,
        weight_jitter_sigma=weight_jitter,
        halfm_amp_mean=halfm_amp_mean,
    )
    return GroupProfile(
        group_id=group_id,
        vendor=vendor,
        freq_mhz=freq_mhz,
        n_chips=n_chips,
        frac_capable=frac,
        three_row=three_row,
        four_row=four_row,
        decoder=decoder,
        coupling=CouplingProfile(
            primary_position_triple=primary_triple,
            primary_position_quad=primary_quad,
        ),
        variation=variation,
        preferred_fmaj=preferred_fmaj,
        expected_hamming_weight=hamming_weight,
    )


# Table I.  Group B supports both three-row (bit pair (0,1): e.g. rows
# {0,1,2} from R1=1,R2=2) and four-row activation (bit pair (0,3): rows
# {0,1,8,9} from R1=8,R2=1).  Groups C/D only open 2^k-row hypercubes
# (bit pair (0,1): rows {0,1,2,3} from R1=1,R2=2).  Preferred F-MAJ
# configurations reproduce Section VI-A.2: B -> frac in R2, init ones,
# 2x Frac; C -> frac in R1, init ones; D -> frac in R4, init zeros.
GROUPS: dict[str, GroupProfile] = {
    "A": _make_group("A", "SK Hynix", 1066, 16, frac=True,
                     hamming_weight=0.21, strong_fraction=0.86),
    "B": _make_group("B", "SK Hynix", 1333, 80, frac=True,
                     three_row=True, four_row=True,
                     hamming_weight=0.35, strong_fraction=0.80,
                     primary_triple=1, primary_quad=1,
                     primary_mean=0.18, primary_sigma=0.12,
                     primary_module_sigma=0.03,
                     multirow_bias=0.004, bias_module_sigma=0.001,
                     weight_jitter=0.10,
                     preferred_fmaj=PreferredFMajConfig(1, True, 2)),
    "C": _make_group("C", "SK Hynix", 1333, 160, frac=True, four_row=True,
                     hamming_weight=0.45, strong_fraction=0.88,
                     primary_quad=0, primary_mean=0.45, primary_sigma=0.30,
                     primary_module_sigma=0.15,
                     multirow_bias=0.010, bias_module_sigma=0.004,
                     weight_jitter=0.14,
                     preferred_fmaj=PreferredFMajConfig(0, True, 1)),
    "D": _make_group("D", "SK Hynix", 1600, 16, frac=True, four_row=True,
                     hamming_weight=0.50, strong_fraction=0.84,
                     primary_quad=3, primary_mean=0.40, primary_sigma=0.28,
                     primary_module_sigma=0.10,
                     multirow_bias=-0.008, bias_module_sigma=0.003,
                     weight_jitter=0.12,
                     preferred_fmaj=PreferredFMajConfig(3, False, 1)),
    "E": _make_group("E", "Samsung", 1066, 32, frac=True,
                     hamming_weight=0.30, strong_fraction=0.78),
    "F": _make_group("F", "Samsung", 1333, 48, frac=True,
                     hamming_weight=0.45, strong_fraction=0.80),
    "G": _make_group("G", "Samsung", 1600, 32, frac=True,
                     hamming_weight=0.50, read_noise=0.0006,
                     strong_fraction=0.88),
    "H": _make_group("H", "TimeTec", 1333, 32, frac=True,
                     hamming_weight=0.40, strong_fraction=0.84),
    "I": _make_group("I", "Corsair", 1333, 32, frac=True,
                     hamming_weight=0.55, strong_fraction=0.90),
    "J": _make_group("J", "Micron", 1333, 16, frac=False,
                     enforces_spacing=True),
    "K": _make_group("K", "Elpida", 1333, 32, frac=False,
                     enforces_spacing=True),
    "L": _make_group("L", "Nanya", 1333, 32, frac=False,
                     enforces_spacing=True),
}


def group_ids() -> tuple[str, ...]:
    """All group identifiers, A through L."""
    return tuple(GROUPS)


def get_group(group_id: str) -> GroupProfile:
    """Look up a group profile by its Table I letter."""
    try:
        return GROUPS[group_id.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown DRAM group {group_id!r}; expected one of {', '.join(GROUPS)}"
        ) from None
