"""Electrical, timing, and variation parameter sets for the DRAM model.

All voltages are normalized to ``vdd = 1.0`` internally; the environment
model (``repro.dram.environment``) maps the normalized space to physical
volts (nominal DDR3 Vdd = 1.5 V).  All times at the command level are in
*memory cycles* of 2.5 ns (SoftMC runs the DRAM bus at 400 MHz regardless of
the module's speed grade — Section IV-A), and at the retention level in
seconds of simulated wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "MEMORY_CYCLE_NS",
    "ElectricalParams",
    "TimingParams",
    "VariationParams",
    "GeometryParams",
]

#: SoftMC memory cycle (Section IV-A): 2.5 ns at 400 MHz.
MEMORY_CYCLE_NS: float = 2.5


@dataclass(frozen=True)
class ElectricalParams:
    """First-order electrical model of a sub-array column.

    The single most important number is ``bitline_to_cell_ratio`` (Cb/Cc):
    charge sharing between a precharged bit-line (at Vdd/2) and one cell at
    voltage ``v`` settles at ``(Cb*Vdd/2 + Cc*v) / (Cb + Cc)``, so each Frac
    operation multiplies the cell's deviation from Vdd/2 by
    ``Cc / (Cb + Cc)``.  With the default ratio of 3 the deviation shrinks
    4x per Frac — after 10 Fracs (the paper's PUF recipe) the residue is
    ~5e-7 Vdd, far below sense-amp offsets, which is exactly why the PUF
    response is offset-dominated.
    """

    #: Bit-line capacitance divided by cell capacitance (dimensionless).
    bitline_to_cell_ratio: float = 3.0
    #: Cycles between ACTIVATE and completed charge sharing.
    charge_share_cycles: int = 1
    #: Cycles after ACTIVATE at which the sense amplifier fires if not
    #: interrupted by a PRECHARGE (within the tRCD window).
    sense_enable_cycles: int = 4
    #: Cycles a PRECHARGE needs to fully close rows and restore bit-lines;
    #: an ACTIVATE arriving earlier interrupts it (multi-row glitch window).
    precharge_cycles: int = 5
    #: Cycles after ACT(R2) at which decoder-glitch rows become conductive.
    glitch_open_cycles: int = 1
    #: Voltage (fraction of Vdd) that a fully restored cell actually reaches
    #: (restore is never perfect; see Keeth et al.).
    restore_level: float = 1.0

    @property
    def share_factor(self) -> float:
        """Fraction of a cell's deviation from Vdd/2 surviving one share."""
        return 1.0 / (1.0 + self.bitline_to_cell_ratio)

    def frac_residual(self, n_frac: int, initial: float = 1.0) -> float:
        """Ideal cell voltage after ``n_frac`` Frac ops (no noise/weights).

        ``initial`` is the starting cell voltage in [0, 1].
        """
        deviation = initial - 0.5
        return 0.5 + deviation * self.share_factor ** n_frac


@dataclass(frozen=True)
class TimingParams:
    """JEDEC DDR3 timing constraints, expressed in 2.5 ns memory cycles.

    Values follow JEDEC 79-3F for a DDR3-1333 grade clocked down to the
    SoftMC bus rate; the exact magnitudes only matter for the *strict*
    checker and the latency accounting, not for the physics.
    """

    t_rcd: int = 6   #: ACTIVATE -> READ/WRITE
    t_ras: int = 15  #: ACTIVATE -> PRECHARGE (min)
    t_rp: int = 5    #: PRECHARGE -> ACTIVATE (min)
    t_rc: int = 20   #: ACTIVATE -> ACTIVATE same bank (min)
    t_wr: int = 6    #: end of WRITE -> PRECHARGE
    t_rfc: int = 64  #: REFRESH -> next command
    t_refi_ms: float = 64.0 / 8192.0  #: average per-row refresh interval
    retention_window_ms: float = 64.0  #: nominal refresh period per row

    @property
    def row_cycle(self) -> int:
        """Cycles for a full, in-spec, open->close row cycle."""
        return self.t_ras + self.t_rp


@dataclass(frozen=True)
class VariationParams:
    """Distributions of manufacturing variation and measurement noise.

    These are the calibration knobs of the reproduction; per-group values
    live in :mod:`repro.dram.vendor` and were tuned so the headline shapes
    of the paper hold (see DESIGN.md section 4).
    """

    #: Per-column sense-amp threshold offset: N(mean, sigma), in Vdd units.
    sa_offset_mean: float = 0.0
    sa_offset_sigma: float = 0.008
    #: Per-trial thermal noise on the bit-line at decision time (Vdd units).
    read_noise_sigma: float = 0.0002
    #: Extra read noise per degree C above 20 C (fractional increase).
    read_noise_temp_coeff: float = 0.01
    #: Leakage time constants: log-normal main population (seconds).
    tau_log_median_s: float = 11.0  # e^11 s ~ 16.6 h
    tau_log_sigma: float = 1.0
    #: Fraction of "strong" cells with effectively unbounded retention and
    #: their tau multiplier.  Together with the ~50% of columns whose
    #: sense offset is negative, this sets the Fig. 6 "long retention"
    #: category (strong_fraction * 0.5 ~ 0.43, the paper's ~44%).
    strong_cell_fraction: float = 0.85
    strong_cell_tau_multiplier: float = 400.0
    #: Fraction of variable-retention-time cells (Fig. 6 "others").
    vrt_cell_fraction: float = 0.005
    #: VRT cells toggle tau by this multiplicative factor range.
    vrt_tau_span: float = 30.0
    #: Fraction of cells whose slow access transistor barely latches the
    #: shared fractional level during a 1-cycle interrupted activation.
    #: Zero by default (a Frac-immune population would contradict the
    #: near-100% Figure 7 verification); exposed as an ablation knob for
    #: studying how Frac-immune cells would degrade every use case.
    frac_weak_fraction: float = 0.0
    #: Maximum interrupt-coupling of a weak cell (uniform in [0, max]).
    frac_weak_coupling_max: float = 0.15
    #: Per-column primary-row coupling boost: 1 + |N(mean, sigma)|.
    primary_weight_mean: float = 0.10
    primary_weight_sigma: float = 0.10
    #: Per-sub-array shift of the primary boost mean — this is what spreads
    #: F-MAJ stability across *modules* of the same group (Figure 10c).
    primary_weight_module_sigma: float = 0.0
    #: Per-trial jitter of coupling weights (multiplicative sigma).
    weight_jitter_sigma: float = 0.02
    #: Mean bit-line threshold bias during *multi-row* charge sharing; the
    #: sign determines whether a group prefers fractional values above or
    #: below Vdd/2 (Section VI-A.2 "different groups favor different
    #: configurations").
    multirow_bias_mean: float = 0.0
    multirow_bias_sigma: float = 0.004
    #: Per-sub-array shift of the multi-row bias mean (module-to-module
    #: stability spread, Figure 10b/c).
    multirow_bias_module_sigma: float = 0.0
    #: Partial sense amplification reached by the time a *late* interrupt
    #: (PRE two or more cycles after ACT, as in Half-m) disconnects the
    #: cells: per-column strength ~ clipped N(mean, sigma).  Columns with
    #: fast sense amps rail their shared value before the interrupt, which
    #: is why only a minority of columns yield a distinguishable Half value
    #: (~16% in the paper, Section V-C).
    halfm_amp_mean: float = 0.9
    halfm_amp_sigma: float = 0.28


@dataclass(frozen=True)
class GeometryParams:
    """Shape of a simulated chip.

    Default geometry is deliberately small so unit tests run fast;
    experiments scale it up via their configs.  A real DDR3 x8 chip is
    8 banks x (32k rows) x 1 KB rows; a module row is 8 KB across chips.
    """

    n_banks: int = 2
    subarrays_per_bank: int = 2
    rows_per_subarray: int = 32
    columns: int = 256

    def __post_init__(self) -> None:
        if min(self.n_banks, self.subarrays_per_bank,
               self.rows_per_subarray, self.columns) < 1:
            raise ValueError("all geometry dimensions must be >= 1")

    @property
    def rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def total_cells(self) -> int:
        return self.n_banks * self.rows_per_bank * self.columns

    def scaled(self, **overrides: int) -> "GeometryParams":
        """Return a copy with some dimensions overridden."""
        return replace(self, **overrides)


def default_electrical() -> ElectricalParams:
    """The calibrated default electrical model."""
    return ElectricalParams()


def default_timing() -> TimingParams:
    """JEDEC DDR3 defaults at the SoftMC bus rate."""
    return TimingParams()
